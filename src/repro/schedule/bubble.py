"""Analytical pipeline-bubble models (§2.2, §3.2, §3.3).

All formulas are the paper's:

- non-interleaved bubble time:      t_pb = (p - 1) (t_f + t_b)
- non-interleaved bubble fraction:  t_pb / t_id = (p - 1) / m
- interleaved bubble fraction:      (1/v) (p - 1) / m
- bubble vs. data-parallel size:    (n/d - 1) / (b'/d) = (n - d) / b'
  with b' = B / b (§3.3.1, Figure 6).
"""

from __future__ import annotations


def bubble_time(p: int, t_f: float, t_b: float, v: int = 1) -> float:
    """Absolute bubble time ``(p-1)(t_f + t_b)/v`` for one batch."""
    _check_p_m(p, 1)
    if v < 1:
        raise ValueError("v must be >= 1")
    return (p - 1) * (t_f + t_b) / v


def ideal_time(m: int, t_f: float, t_b: float) -> float:
    """Ideal (bubble-free) batch time ``m (t_f + t_b)``."""
    _check_p_m(1, m)
    return m * (t_f + t_b)


def bubble_fraction(p: int, m: int, v: int = 1) -> float:
    """Bubble time over ideal time: ``(1/v) (p - 1)/m``.

    ``v = 1`` gives the GPipe / PipeDream-Flush fraction; ``v > 1`` the
    interleaved schedule's.
    """
    _check_p_m(p, m)
    if v < 1:
        raise ValueError("v must be >= 1")
    return (p - 1) / (m * v)


def bubble_overhead(p: int, m: int, v: int = 1) -> float:
    """Bubble as a fraction of *total* (not ideal) time:
    ``t_pb / (t_pb + t_id)``.  This is what a measured timeline's idle
    fraction equals."""
    f = bubble_fraction(p, m, v)
    return f / (1.0 + f)


def throughput_factor(p: int, m: int, v: int = 1) -> float:
    """Fraction of ideal throughput achieved: ``1 / (1 + bubble)``."""
    return 1.0 / (1.0 + bubble_fraction(p, m, v))


def bubble_fraction_vs_data_parallel(n: int, d: int, b_prime: int) -> float:
    """§3.3.1 / Figure 6: bubble fraction ``(n - d) / b'`` for t = 1.

    ``n`` GPUs, data-parallel size ``d`` (must divide n), and
    ``b' = B / b``.
    """
    if n < 1 or d < 1:
        raise ValueError("n and d must be >= 1")
    if n % d != 0:
        raise ValueError(f"d={d} must divide n={n}")
    if b_prime < 1:
        raise ValueError("b' must be >= 1")
    if b_prime % d != 0:
        raise ValueError(f"d={d} must divide b'={b_prime} (m must be integral)")
    return (n - d) / b_prime


def _check_p_m(p: int, m: int) -> None:
    if p < 1:
        raise ValueError("p must be >= 1")
    if m < 1:
        raise ValueError("m must be >= 1")
