"""ASCII rendering of pipeline timelines (Figures 3 and 4).

Renders a :class:`~repro.schedule.execution.Timeline` as a per-device
character grid: each forward slot prints the microbatch number, each
backward slot prints it in parentheses-free lowercase-style shading
(backwards are wrapped in '[' ']' when width allows), idle time is '.'.
Interleaved chunks are distinguished by a trailing quote mark, matching
the paper's dark/light color coding.
"""

from __future__ import annotations

from .execution import Timeline, simulate_times
from .ir import OpKind, PipelineSchedule


def render_timeline(timeline: Timeline, time_unit: float | None = None) -> str:
    """Render a timeline as one text row per device.

    ``time_unit`` is the width of one character column in time units;
    defaults to the smallest op duration in the timeline.
    """
    if not timeline.ops:
        return ""
    if time_unit is None:
        time_unit = min(t.end - t.start for t in timeline.ops)
    if time_unit <= 0:
        raise ValueError("time_unit must be positive")
    ncols = int(round(timeline.makespan / time_unit))
    rows = []
    for rank in range(timeline.schedule.num_stages):
        row = ["."] * ncols
        for t in timeline.ops:
            if t.rank != rank:
                continue
            c0 = int(round(t.start / time_unit))
            c1 = max(c0 + 1, int(round(t.end / time_unit)))
            label = _op_label(t.op.kind, t.op.microbatch, t.op.chunk)
            cell = (label * ((c1 - c0) // len(label) + 1))[: c1 - c0]
            row[c0:c1] = list(cell.ljust(c1 - c0, label[-1])[: c1 - c0])
        rows.append(f"dev{rank}: " + "".join(row))
    return "\n".join(rows)


def _op_label(kind: OpKind, microbatch: int, chunk: int) -> str:
    tag = str(microbatch + 1)
    if kind is OpKind.BACKWARD:
        tag = tag.translate(_SUBSCRIPTS)
    if chunk % 2 == 1:
        tag = tag + "'"
    return tag


# Backward passes rendered as subscript digits to mirror the paper's
# blue (forward) / green (backward) color coding in plain text.
_SUBSCRIPTS = str.maketrans("0123456789", "₀₁₂₃₄₅₆₇₈₉")


def render_schedule(
    schedule: PipelineSchedule,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
) -> str:
    """Simulate with the figure's convention (backward = 2x forward by
    default) and render."""
    timeline = simulate_times(schedule, t_forward, t_backward)
    header = (
        f"{schedule.describe()}  makespan={timeline.makespan:g}  "
        f"bubble={timeline.bubble_fraction():.3f}"
    )
    return header + "\n" + render_timeline(timeline)
