"""Pipeline-parallel schedules: IR, generators, execution, bubble models."""

from .bubble import (
    bubble_fraction,
    bubble_fraction_vs_data_parallel,
    bubble_overhead,
    bubble_time,
    ideal_time,
    throughput_factor,
)
from .execution import (
    DeadlockError,
    OpInstance,
    TimedOp,
    Timeline,
    completion_order_is_serializable,
    cross_rank_dependencies,
    dependencies,
    execute,
    resolve,
    simulate_times,
    validate,
)
from .generators import (
    gpipe_schedule,
    interleaved_gpipe_schedule,
    interleaved_schedule,
    make_schedule,
    one_f_one_b_schedule,
)
from .ir import OpKind, PipelineSchedule, ScheduleOp
from .visualize import render_schedule, render_timeline

__all__ = [
    "OpKind",
    "PipelineSchedule",
    "ScheduleOp",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "interleaved_schedule",
    "interleaved_gpipe_schedule",
    "make_schedule",
    "DeadlockError",
    "OpInstance",
    "TimedOp",
    "Timeline",
    "dependencies",
    "cross_rank_dependencies",
    "resolve",
    "execute",
    "validate",
    "simulate_times",
    "completion_order_is_serializable",
    "bubble_time",
    "ideal_time",
    "bubble_fraction",
    "bubble_overhead",
    "throughput_factor",
    "bubble_fraction_vs_data_parallel",
    "render_schedule",
    "render_timeline",
]
