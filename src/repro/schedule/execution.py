"""Dependency semantics and execution of pipeline schedules.

Defines *what a schedule op must wait for* (the cross-stage dataflow of
synchronous pipeline training) and two executors over that dataflow:

- :func:`execute` -- run a schedule to completion in dependency order,
  invoking a caller-supplied handler per op.  This is the machinery the
  numerical pipeline-parallel engine drives its real forward/backward
  passes with, and doubles as the validator: an infeasible per-device
  order (one that cannot be interleaved into any legal global order)
  raises :class:`DeadlockError`.
- :func:`simulate_times` -- compute start/finish times for every op
  given forward/backward durations and a p2p latency, i.e. produce the
  Figure 3/4 timelines and measured bubble fractions.

Dependency rules (strict synchronous semantics, §2.2):

- ``F(mb, stage)`` needs ``F(mb, stage-1)`` (activations from the
  previous stage), except for stage 0.
- ``B(mb, stage)`` needs ``F(mb, stage)`` on the same stage (stashed
  activations) and ``B(mb, stage+1)`` (gradient from the next stage),
  except for the last stage which starts the backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.obs.tracer import current_tracer

from .ir import OpKind, PipelineSchedule, ScheduleOp

_PHASE = {OpKind.FORWARD: "forward", OpKind.BACKWARD: "backward"}


class DeadlockError(RuntimeError):
    """The schedule's per-device op orders admit no legal interleaving."""


@dataclass(frozen=True, order=True)
class OpInstance:
    """A schedule op resolved to its global stage (unique per iteration)."""

    kind: OpKind
    microbatch: int
    stage: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}{self.microbatch}@s{self.stage}"


def resolve(schedule: PipelineSchedule, rank: int, op: ScheduleOp) -> OpInstance:
    """Attach the global stage index to a per-rank op."""
    return OpInstance(op.kind, op.microbatch, schedule.global_stage(rank, op.chunk))


def dependencies(
    schedule: PipelineSchedule, inst: OpInstance
) -> tuple[OpInstance, ...]:
    """Ops that must complete before ``inst`` may start."""
    last = schedule.total_stages - 1
    if inst.kind is OpKind.FORWARD:
        if inst.stage == 0:
            return ()
        return (OpInstance(OpKind.FORWARD, inst.microbatch, inst.stage - 1),)
    deps = [OpInstance(OpKind.FORWARD, inst.microbatch, inst.stage)]
    if inst.stage < last:
        deps.append(OpInstance(OpKind.BACKWARD, inst.microbatch, inst.stage + 1))
    return tuple(deps)


def cross_rank_dependencies(
    schedule: PipelineSchedule, inst: OpInstance
) -> tuple[OpInstance, ...]:
    """The subset of dependencies that live on a *different* device and
    therefore require point-to-point communication (the simulator charges
    send/recv time on exactly these edges)."""
    my_rank = inst.stage % schedule.num_stages
    return tuple(
        dep
        for dep in dependencies(schedule, inst)
        if dep.stage % schedule.num_stages != my_rank
    )


Handler = Callable[[int, ScheduleOp], None]


def execute(
    schedule: PipelineSchedule,
    handler: Handler | None = None,
    *,
    span_ranks: Sequence[int] | None = None,
) -> list[tuple[int, ScheduleOp]]:
    """Run every op of ``schedule`` respecting dependencies.

    Repeatedly scans the ranks round-robin, running each rank's next op
    as soon as its dependencies are done (cooperative multitasking of
    the virtual devices).  Returns the global completion order as
    ``(rank, op)`` pairs, calling ``handler(rank, op)`` at each step.

    When a :mod:`repro.obs` tracer is active and a handler is given,
    each handler call runs inside a forward/backward span;
    ``span_ranks`` maps the schedule's local pipeline ranks to the
    global (trace-track) ranks, defaulting to the local indices.

    Raises
    ------
    DeadlockError
        If no rank can make progress but ops remain; the message lists
        each blocked op and its first unmet dependency.
    """
    tracer = current_tracer() if handler is not None else None
    pointers = [0] * schedule.num_stages
    done: set[OpInstance] = set()
    order: list[tuple[int, ScheduleOp]] = []
    total = sum(len(r) for r in schedule.ops)
    while len(order) < total:
        progressed = False
        for rank in range(schedule.num_stages):
            while pointers[rank] < len(schedule.ops[rank]):
                op = schedule.ops[rank][pointers[rank]]
                inst = resolve(schedule, rank, op)
                if any(dep not in done for dep in dependencies(schedule, inst)):
                    break
                if handler is not None:
                    if tracer is not None:
                        track = (
                            span_ranks[rank] if span_ranks is not None else rank
                        )
                        with tracer.span(
                            str(op),
                            phase=_PHASE[op.kind],
                            rank=track,
                            microbatch=op.microbatch,
                            chunk=op.chunk,
                            stage=inst.stage,
                        ):
                            handler(rank, op)
                    else:
                        handler(rank, op)
                done.add(inst)
                order.append((rank, op))
                pointers[rank] += 1
                progressed = True
        if not progressed:
            blocked = []
            for rank in range(schedule.num_stages):
                if pointers[rank] < len(schedule.ops[rank]):
                    op = schedule.ops[rank][pointers[rank]]
                    inst = resolve(schedule, rank, op)
                    missing = [
                        d for d in dependencies(schedule, inst) if d not in done
                    ]
                    blocked.append(f"rank {rank}: {inst} waits on {missing[0]}")
            raise DeadlockError(
                f"schedule {schedule.describe()} deadlocked:\n  "
                + "\n  ".join(blocked)
            )
    return order


def validate(schedule: PipelineSchedule) -> None:
    """Raise if the schedule is incomplete or deadlocks.

    Checks (a) every rank runs exactly one F and one B per
    (microbatch, chunk) -- required for strict optimizer semantics, every
    microbatch's gradient contributes exactly once; and (b) the
    per-device orders admit a legal global interleaving.
    """
    if not schedule.counts_are_complete():
        raise ValueError(
            f"schedule {schedule.describe()} is incomplete: each rank must run "
            "exactly one forward and one backward per (microbatch, chunk)"
        )
    execute(schedule)


@dataclass(frozen=True)
class TimedOp:
    """An op with its simulated execution window."""

    rank: int
    op: ScheduleOp
    start: float
    end: float


@dataclass(frozen=True)
class Timeline:
    """Result of :func:`simulate_times`."""

    schedule: PipelineSchedule
    ops: tuple[TimedOp, ...]
    makespan: float

    def per_rank_busy(self) -> list[float]:
        busy = [0.0] * self.schedule.num_stages
        for t in self.ops:
            busy[t.rank] += t.end - t.start
        return busy

    def bubble_fraction(self) -> float:
        """Average fraction of the makespan each device spends idle.

        With zero communication latency this equals the paper's
        ``t_pb / (t_pb + t_id)`` -- bubble over total -- per device;
        compare with ``(p-1)/m / (1 + (p-1)/m)``.
        """
        busy = self.per_rank_busy()
        idle = [self.makespan - b for b in busy]
        return sum(idle) / (self.makespan * self.schedule.num_stages)


def simulate_times(
    schedule: PipelineSchedule,
    t_forward: float = 1.0,
    t_backward: float = 2.0,
    p2p_latency: float = 0.0,
) -> Timeline:
    """List-schedule the ops with fixed durations.

    ``t_forward``/``t_backward`` are the full-microbatch times ``t_f``
    and ``t_b``; a chunk takes ``t_f / v`` (``t_b / v``) as in §2.2.2.
    ``p2p_latency`` is added on every cross-rank dependency edge.
    Devices execute their op list in order, starting each op as soon as
    the device is free and all dependencies (plus transfer) are done.
    """
    if t_forward <= 0 or t_backward <= 0:
        raise ValueError("durations must be positive")
    v = schedule.num_chunks
    dur = {
        OpKind.FORWARD: t_forward / v,
        OpKind.BACKWARD: t_backward / v,
    }
    finish: dict[OpInstance, float] = {}
    pointers = [0] * schedule.num_stages
    device_free = [0.0] * schedule.num_stages
    timed: list[TimedOp] = []
    total = sum(len(r) for r in schedule.ops)
    while len(timed) < total:
        progressed = False
        for rank in range(schedule.num_stages):
            while pointers[rank] < len(schedule.ops[rank]):
                op = schedule.ops[rank][pointers[rank]]
                inst = resolve(schedule, rank, op)
                deps = dependencies(schedule, inst)
                if any(d not in finish for d in deps):
                    break
                ready = device_free[rank]
                for d in deps:
                    lat = p2p_latency if d.stage % schedule.num_stages != rank else 0.0
                    ready = max(ready, finish[d] + lat)
                end = ready + dur[op.kind]
                finish[inst] = end
                device_free[rank] = end
                timed.append(TimedOp(rank, op, ready, end))
                pointers[rank] += 1
                progressed = True
        if not progressed:
            raise DeadlockError(
                f"schedule {schedule.describe()} deadlocked during timing"
            )
    makespan = max(t.end for t in timed)
    tracer = current_tracer()
    if tracer is not None:
        for t in timed:
            inst = resolve(schedule, t.rank, t.op)
            tracer.add_span(
                str(t.op),
                phase=_PHASE[t.op.kind],
                rank=t.rank,
                start=t.start,
                end=t.end,
                microbatch=t.op.microbatch,
                chunk=t.op.chunk,
                stage=inst.stage,
            )
    return Timeline(schedule=schedule, ops=tuple(timed), makespan=makespan)


def completion_order_is_serializable(
    order: Iterable[tuple[int, ScheduleOp]], schedule: PipelineSchedule
) -> bool:
    """Check an observed completion order respects all dependencies."""
    done: set[OpInstance] = set()
    for rank, op in order:
        inst = resolve(schedule, rank, op)
        if any(d not in done for d in dependencies(schedule, inst)):
            return False
        done.add(inst)
    return True
