"""Schedule intermediate representation.

A *pipeline schedule* is, for each pipeline rank (device), an ordered
list of compute operations, each a forward or backward pass of one
microbatch through one model chunk.  This is the common currency between
the schedule generators (GPipe / 1F1B / interleaved), the dependency
validator, the discrete-event performance simulator, and the numerical
pipeline-parallel engine: all of them consume the same IR, so a schedule
proven correct by the validator is exactly the schedule that is timed
and exactly the schedule that is executed numerically.

Global stage numbering: with ``p`` pipeline ranks and ``v`` model chunks
per rank, there are ``p * v`` pipeline stages; chunk ``c`` on rank ``r``
is global stage ``c * p + r`` (Megatron's interleaved assignment, §2.2.2
-- e.g. device 1 has layers 1,2 and 9,10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpKind(enum.Enum):
    """Forward or backward pass of one microbatch through one chunk."""

    FORWARD = "F"
    BACKWARD = "B"


@dataclass(frozen=True, order=True)
class ScheduleOp:
    """One unit of pipeline work.

    Attributes
    ----------
    kind:
        Forward or backward.
    microbatch:
        Microbatch index in ``[0, m)``.
    chunk:
        Model-chunk index in ``[0, v)`` on this device (0 for
        non-interleaved schedules).
    """

    kind: OpKind
    microbatch: int
    chunk: int = 0

    def __post_init__(self) -> None:
        if self.microbatch < 0:
            raise ValueError(f"microbatch must be >= 0, got {self.microbatch}")
        if self.chunk < 0:
            raise ValueError(f"chunk must be >= 0, got {self.chunk}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f".{self.chunk}" if self.chunk else ""
        return f"{self.kind.value}{self.microbatch}{suffix}"


@dataclass(frozen=True)
class PipelineSchedule:
    """A complete schedule: per-rank ordered op lists.

    Attributes
    ----------
    name:
        Generator label ("gpipe", "1f1b", "interleaved").
    num_stages:
        Pipeline-parallel size ``p`` (number of devices).
    num_microbatches:
        ``m``, microbatches per pipeline per iteration.
    num_chunks:
        ``v``, model chunks per device.
    ops:
        ``ops[r]`` is the ordered op list of pipeline rank ``r``.
    """

    name: str
    num_stages: int
    num_microbatches: int
    num_chunks: int
    ops: tuple[tuple[ScheduleOp, ...], ...] = field(repr=False)

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise ValueError("num_stages must be >= 1")
        if self.num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        if self.num_chunks < 1:
            raise ValueError("num_chunks must be >= 1")
        if len(self.ops) != self.num_stages:
            raise ValueError(
                f"expected {self.num_stages} per-rank op lists, got {len(self.ops)}"
            )

    @property
    def total_stages(self) -> int:
        """Number of global pipeline stages ``p * v``."""
        return self.num_stages * self.num_chunks

    def global_stage(self, rank: int, chunk: int) -> int:
        """Global stage index of ``chunk`` on ``rank`` (Megatron layout)."""
        if not 0 <= rank < self.num_stages:
            raise ValueError(f"rank {rank} out of range")
        if not 0 <= chunk < self.num_chunks:
            raise ValueError(f"chunk {chunk} out of range")
        return chunk * self.num_stages + rank

    def rank_chunk_of_stage(self, stage: int) -> tuple[int, int]:
        """Inverse of :meth:`global_stage`: stage -> (rank, chunk)."""
        if not 0 <= stage < self.total_stages:
            raise ValueError(f"stage {stage} out of range")
        return stage % self.num_stages, stage // self.num_stages

    def ops_for_rank(self, rank: int) -> tuple[ScheduleOp, ...]:
        return self.ops[rank]

    def counts_are_complete(self) -> bool:
        """Every rank runs exactly one F and one B per (microbatch, chunk)."""
        want = {
            (kind, mb, c)
            for kind in OpKind
            for mb in range(self.num_microbatches)
            for c in range(self.num_chunks)
        }
        for rank_ops in self.ops:
            got = {(op.kind, op.microbatch, op.chunk) for op in rank_ops}
            if got != want or len(rank_ops) != len(want):
                return False
        return True

    def max_in_flight_microbatches(self, rank: int) -> int:
        """Peak number of outstanding forward activations on ``rank``.

        This is the §2.2.1 memory argument: GPipe stashes up to ``m``
        microbatches, 1F1B at most ``p``.  Counted as forwards executed
        minus backwards completed, maximized over the op sequence.
        """
        in_flight = peak = 0
        for op in self.ops[rank]:
            if op.kind is OpKind.FORWARD:
                in_flight += 1
            else:
                in_flight -= 1
            peak = max(peak, in_flight)
        return peak

    def describe(self) -> str:
        return (
            f"{self.name}(p={self.num_stages}, m={self.num_microbatches}, "
            f"v={self.num_chunks})"
        )
