"""Schedule generators: GPipe, PipeDream-Flush (1F1B), interleaved 1F1B.

These reproduce §2.2 of the paper:

- :func:`gpipe_schedule` -- all forwards then all backwards (Figure 3);
  bubble (p-1)/m, stashes up to m microbatches of activations.
- :func:`one_f_one_b_schedule` -- PipeDream-Flush (Figure 4 top): a
  warm-up of p-1-rank forwards, a 1F1B steady state, and a cooldown;
  same bubble, but at most p in-flight microbatches.
- :func:`interleaved_schedule` -- the paper's novel contribution
  (Figure 4 bottom): each device hosts v model chunks; the bubble
  shrinks by v at the cost of v times more p2p communication.  Requires
  m to be a multiple of p (§2.2.2).

The interleaved order follows Megatron-LM's
``forward_backward_pipelining_with_interleaving``: virtual microbatches
are processed in groups of ``p`` per chunk, warm-up length is
``2*(p - rank - 1) + (v - 1) * p``.
"""

from __future__ import annotations

from .ir import OpKind, PipelineSchedule, ScheduleOp


def gpipe_schedule(num_stages: int, num_microbatches: int) -> PipelineSchedule:
    """All-forward, all-backward schedule (Figure 3)."""
    _check(num_stages, num_microbatches)
    per_rank = []
    for _rank in range(num_stages):
        ops = [ScheduleOp(OpKind.FORWARD, mb) for mb in range(num_microbatches)]
        ops += [ScheduleOp(OpKind.BACKWARD, mb) for mb in range(num_microbatches)]
        per_rank.append(tuple(ops))
    return PipelineSchedule(
        name="gpipe",
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        num_chunks=1,
        ops=tuple(per_rank),
    )


def one_f_one_b_schedule(num_stages: int, num_microbatches: int) -> PipelineSchedule:
    """PipeDream-Flush / non-interleaved 1F1B schedule (Figure 4, top)."""
    _check(num_stages, num_microbatches)
    p, m = num_stages, num_microbatches
    per_rank = []
    for rank in range(p):
        warmup = min(p - rank - 1, m)
        remaining = m - warmup
        ops: list[ScheduleOp] = []
        # Warm-up: forwards only.
        for mb in range(warmup):
            ops.append(ScheduleOp(OpKind.FORWARD, mb))
        # Steady state: one forward, one backward.
        for i in range(remaining):
            ops.append(ScheduleOp(OpKind.FORWARD, warmup + i))
            ops.append(ScheduleOp(OpKind.BACKWARD, i))
        # Cooldown: drain the in-flight backwards.
        for i in range(remaining, m):
            ops.append(ScheduleOp(OpKind.BACKWARD, i))
        per_rank.append(tuple(ops))
    return PipelineSchedule(
        name="1f1b",
        num_stages=p,
        num_microbatches=m,
        num_chunks=1,
        ops=tuple(per_rank),
    )


def interleaved_schedule(
    num_stages: int, num_microbatches: int, num_chunks: int
) -> PipelineSchedule:
    """Interleaved 1F1B schedule (Figure 4, bottom; §2.2.2).

    Each device runs ``v = num_chunks`` model chunks; virtual
    microbatches cycle through chunks in groups of ``p``.
    """
    _check(num_stages, num_microbatches)
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    if num_chunks == 1:
        return one_f_one_b_schedule(num_stages, num_microbatches)
    p, m, v = num_stages, num_microbatches, num_chunks
    if p < 2:
        raise ValueError("interleaved schedule requires num_stages >= 2")
    if m % p != 0:
        raise ValueError(
            f"interleaved schedule requires num_microbatches ({m}) to be a "
            f"multiple of num_stages ({p})"
        )
    total = m * v  # virtual microbatches per device

    def fwd_op(k: int) -> ScheduleOp:
        chunk = (k // p) % v
        mb = (k // (p * v)) * p + k % p
        return ScheduleOp(OpKind.FORWARD, mb, chunk)

    def bwd_op(k: int) -> ScheduleOp:
        chunk = v - 1 - ((k // p) % v)
        mb = (k // (p * v)) * p + k % p
        return ScheduleOp(OpKind.BACKWARD, mb, chunk)

    per_rank = []
    for rank in range(p):
        if m == p:
            warmup = total
        else:
            warmup = min(2 * (p - rank - 1) + (v - 1) * p, total)
        ops: list[ScheduleOp] = []
        for k in range(warmup):
            ops.append(fwd_op(k))
        # Steady state: 1F1B on virtual microbatches.
        for i in range(total - warmup):
            ops.append(fwd_op(warmup + i))
            ops.append(bwd_op(i))
        # Cooldown.
        for i in range(total - warmup, total):
            ops.append(bwd_op(i))
        per_rank.append(tuple(ops))
    return PipelineSchedule(
        name="interleaved",
        num_stages=p,
        num_microbatches=m,
        num_chunks=v,
        ops=tuple(per_rank),
    )


def interleaved_gpipe_schedule(
    num_stages: int, num_microbatches: int, num_chunks: int
) -> PipelineSchedule:
    """All-forward, all-backward schedule over interleaved model chunks.

    §2.2.2 mentions this variant before rejecting it: it has the
    interleaved schedule's 1/v bubble but "a high memory footprint
    (proportional to m)" -- every (microbatch, chunk) activation stays
    stashed until the backward phase.  Implemented so the memory/bubble
    tradeoff can be measured (see the schedule tests and ablation bench).
    """
    _check(num_stages, num_microbatches)
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    if num_chunks == 1:
        return gpipe_schedule(num_stages, num_microbatches)
    p, m, v = num_stages, num_microbatches, num_chunks
    if p < 2:
        raise ValueError("interleaved schedule requires num_stages >= 2")
    if m % p != 0:
        raise ValueError(
            f"interleaved schedule requires num_microbatches ({m}) to be a "
            f"multiple of num_stages ({p})"
        )
    total = m * v
    per_rank = []
    for _rank in range(p):
        ops: list[ScheduleOp] = []
        for k in range(total):
            chunk = (k // p) % v
            mb = (k // (p * v)) * p + k % p
            ops.append(ScheduleOp(OpKind.FORWARD, mb, chunk))
        for k in range(total):
            chunk = v - 1 - ((k // p) % v)
            mb = (k // (p * v)) * p + k % p
            ops.append(ScheduleOp(OpKind.BACKWARD, mb, chunk))
        per_rank.append(tuple(ops))
    return PipelineSchedule(
        name="interleaved-gpipe",
        num_stages=p,
        num_microbatches=m,
        num_chunks=v,
        ops=tuple(per_rank),
    )


def make_schedule(
    name: str, num_stages: int, num_microbatches: int, num_chunks: int = 1
) -> PipelineSchedule:
    """Dispatch by name: 'gpipe', '1f1b', 'interleaved', or
    'interleaved-gpipe'."""
    if name == "gpipe":
        if num_chunks != 1:
            raise ValueError("gpipe schedule does not support model chunks")
        return gpipe_schedule(num_stages, num_microbatches)
    if name == "1f1b":
        if num_chunks != 1:
            raise ValueError("1f1b schedule does not support model chunks; "
                             "use 'interleaved'")
        return one_f_one_b_schedule(num_stages, num_microbatches)
    if name == "interleaved":
        return interleaved_schedule(num_stages, num_microbatches, num_chunks)
    if name == "interleaved-gpipe":
        return interleaved_gpipe_schedule(num_stages, num_microbatches, num_chunks)
    raise ValueError(f"unknown schedule {name!r}")


def _check(num_stages: int, num_microbatches: int) -> None:
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")
