"""Cross-backend conformance: mp execution vs the coop oracle.

The mp backend's correctness contract (DESIGN.md "Running on real
processes") is *bit*-exactness, not tolerance-exactness: real worker
processes moving bytes through shared memory must produce the same
float64 results as the single-process cooperative oracle because both
execute the identical ring arithmetic in the identical order.  This
module makes that executable over the same stratified random-config
grid the serial-conformance section uses:

- losses per iteration: exact equality (``==``, no tolerance),
- final parameters (serial layout): ``np.array_equal``,
- optimizer state (Adam moments + step count): ``np.array_equal``,
- the :class:`~repro.comm.traffic.TrafficLog`: record-for-record
  equality, so the §3.3.1 byte-volume identities survive the backend
  swap.

ZeRO-3 cases route their all-gather/reduce-scatter through the raw
:class:`~repro.comm.backend.MpBackend` collectives; PTD cases run the
trainer's replica-per-process path.  Every failure carries the case's
seeded repro string.
"""

from __future__ import annotations

import numpy as np

from .conformance import ConformanceCase, model_for_case, sample_cases


def _records(log) -> list[tuple]:
    return [(r.src, r.dst, r.nbytes, r.kind.value, r.tag) for r in log.records]


def _run_ptd_backend(config, case: ConformanceCase, ids, targets, lr,
                     backend: str):
    from repro.comm import TrafficLog
    from repro.config import ParallelConfig
    from repro.parallel import PTDTrainer

    parallel = ParallelConfig(
        pipeline_parallel_size=case.p,
        tensor_parallel_size=case.t,
        data_parallel_size=case.d,
        microbatch_size=case.b,
        global_batch_size=case.global_batch_size,
        num_model_chunks=case.v,
    )
    log = TrafficLog()
    trainer = PTDTrainer(
        config, parallel, schedule=case.schedule, seed=0, lr=lr,
        recompute_activations=case.recompute, log=log, backend=backend,
    )
    try:
        losses = [trainer.train_step(ids, targets)
                  for _ in range(case.iterations)]
        state = trainer.gather_state_dict()
        opt = {
            "step_count": trainer.optimizers[0].step_count,
            "m": [a.copy() for a in trainer.optimizers[0]._m],
            "v": [a.copy() for a in trainer.optimizers[0]._v],
        }
    finally:
        trainer.close()
    return losses, state, opt, _records(log)


def _run_zero_backend(config, case: ConformanceCase, ids, targets, lr,
                      backend: str):
    from repro.comm import TrafficLog
    from repro.nn import GPTModel
    from repro.parallel import Zero3Engine

    model = GPTModel(config, seed=0)
    params = model.parameters()
    log = TrafficLog()
    engine = Zero3Engine(params, case.d, lr=lr, log=log, backend=backend)
    try:
        shard_ids = np.split(ids, case.d)
        shard_tgts = np.split(targets, case.d)
        losses = []
        for _ in range(case.iterations):
            engine.gather_params("fwd")
            replica_grads, step_losses = [], []
            for r in range(case.d):
                model.zero_grad()
                engine.gather_params("bwd")
                loss, caches = model.loss(shard_ids[r], shard_tgts[r])
                model.loss_backward(caches)
                replica_grads.append([p.grad.copy() for p in params])
                step_losses.append(loss)
            engine.reduce_and_step(replica_grads)
            losses.append(float(np.mean(step_losses)))
        engine.gather_params("final")
        state = model.state_dict()
    finally:
        engine.close()
    return losses, state, None, _records(log)


def check_backend_case(case: ConformanceCase) -> list[str]:
    """Run ``case`` under both backends; return bit-exactness failures."""
    config = model_for_case(case)
    rng = np.random.default_rng(case.seed)
    B = case.global_batch_size
    ids = rng.integers(0, config.vocab_size, size=(B, config.seq_length))
    targets = rng.integers(0, config.vocab_size, size=(B, config.seq_length))
    lr = 1e-2
    runner = _run_zero_backend if case.zero else _run_ptd_backend

    coop_losses, coop_state, coop_opt, coop_recs = runner(
        config, case, ids, targets, lr, "coop"
    )
    mp_losses, mp_state, mp_opt, mp_recs = runner(
        config, case, ids, targets, lr, "mp"
    )

    failures: list[str] = []
    for i, (a, b) in enumerate(zip(coop_losses, mp_losses)):
        if a != b:
            failures.append(
                f"iteration {i} loss differs across backends: "
                f"coop {a!r} vs mp {b!r}"
            )
    for name, want in coop_state.items():
        got = mp_state.get(name)
        if got is None:
            failures.append(f"mp state is missing parameter {name}")
        elif not np.array_equal(got, want):
            failures.append(
                f"parameter {name} not bit-identical across backends "
                f"(max |diff|={np.max(np.abs(got - want)):.3e})"
            )
    if coop_opt is not None:
        if coop_opt["step_count"] != mp_opt["step_count"]:
            failures.append("optimizer step_count differs across backends")
        for key in ("m", "v"):
            for i, (a, b) in enumerate(zip(coop_opt[key], mp_opt[key])):
                if not np.array_equal(a, b):
                    failures.append(
                        f"Adam {key}[{i}] not bit-identical across backends"
                    )
                    break
    if coop_recs != mp_recs:
        if len(coop_recs) != len(mp_recs):
            failures.append(
                f"traffic log length differs: coop {len(coop_recs)} "
                f"records vs mp {len(mp_recs)}"
            )
        else:
            idx, a, b = next(
                (i, x, y) for i, (x, y) in enumerate(zip(coop_recs, mp_recs))
                if x != y
            )
            failures.append(
                f"traffic record #{idx} differs: coop {a} vs mp {b}"
            )
    return failures


def backend_cases(fast: bool, num_cases: int | None, seed: int,
                  ) -> list[ConformanceCase]:
    """The cross-backend grid: the standard stratified sample, trimmed
    to keep worker spawn counts reasonable in --fast mode."""
    if num_cases is None:
        num_cases = 4 if fast else 10
    cases = sample_cases(num_cases, seed=seed)
    if fast:
        cases = [
            ConformanceCase(
                p=c.p, t=c.t, d=c.d, v=c.v, b=c.b, m=c.m,
                schedule=c.schedule, recompute=c.recompute, zero=c.zero,
                seed=c.seed, iterations=min(c.iterations, 2),
            )
            for c in cases
        ]
    # Always include one composed multi-replica case: d>1 is where the
    # shared-memory gradient ring actually runs.
    if not any(c.d > 1 and not c.zero for c in cases):
        cases.append(ConformanceCase(p=2, d=2, b=1, m=2, seed=seed,
                                     iterations=2))
    return cases


def run_backend_checks(fast: bool, num_cases: int | None, seed: int,
                       ) -> list[tuple[ConformanceCase, list[str]]]:
    """Run the grid; returns ``(case, failures)`` per case.  Also
    asserts the backends leaked no shared-memory segments."""
    from repro.comm.shm_ring import leaked_dev_shm_segments, live_segment_names

    results = []
    for case in backend_cases(fast, num_cases, seed):
        results.append((case, check_backend_case(case)))
    leaks = live_segment_names() + leaked_dev_shm_segments()
    if leaks:
        results.append((
            ConformanceCase(seed=seed),
            [f"shared-memory segments leaked after backend grid: {leaks}"],
        ))
    return results
