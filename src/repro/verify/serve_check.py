"""Serving conformance: every fast decode path vs the trusted oracle.

The full-recompute :func:`repro.nn.generate.generate` is the slow,
training-numerics-consistent reference.  This section pins the three
fast paths of :mod:`repro.serve` to it:

- **cached decode** (`cached_generate`, paged KV cache + incremental
  ``forward_step``): token streams must be ``np.array_equal`` to the
  oracle across a seeded grid of sampling modes and prompt lengths
  near/over the ``seq_length`` sliding-window boundary -- plus a
  zero-leak check on the block pool after every run.
- **continuous batching** (`ServeEngine` on a Poisson trace sized to
  force preemption): every request's final stream must equal its
  single-request oracle regardless of interleaving/preemption, and a
  second run of the same trace must replay the first bit-exactly
  (streams, metrics, event sequence on the virtual clock).
- **tensor-parallel decode** (`tp_generate` over the coop oracle and,
  in full mode, the real-process mp backend): token streams equal
  single-rank decode record-for-record.
"""

from __future__ import annotations

import io

import numpy as np

from repro.config import tiny_test_model
from repro.nn.generate import generate
from repro.nn.transformer import GPTModel
from repro.obs.runlog import RunLogger


def _grid(fast: bool, seed: int):
    """(prompt_len, max_new, temperature, top_k) differential grid.

    seq_length is 8 for the tiny model: lengths 7/8 sit at the
    sliding-window boundary, 10 starts beyond it.
    """
    points = [
        (3, 4, 0.0, None),   # greedy, well inside the window
        (7, 6, 0.0, None),   # greedy, crosses the boundary mid-decode
        (8, 5, 1.0, 4),      # top-k sampling, starts exactly at window
        (10, 6, 0.8, None),  # temperature sampling, prompt over window
    ]
    if not fast:
        points += [
            (1, 8, 0.0, None),   # minimal prompt
            (5, 7, 1.0, 1),      # top_k=1 (greedy-by-sampling)
            (6, 9, 1.3, 8),
            (12, 8, 0.0, None),  # long prompt, long decode
        ]
    return points


def _check_cached_decode(fast: bool, seed: int) -> list[str]:
    from repro.serve import cached_generate

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    prompt_rng = np.random.default_rng(seed + 1)
    failures = []
    for block_size in (1, 3) if not fast else (3,):
        for pl, mn, temp, top_k in _grid(fast, seed):
            prompt = prompt_rng.integers(0, config.vocab_size, size=pl)
            oracle = generate(
                model, prompt, mn, temperature=temp, top_k=top_k,
                rng=np.random.default_rng(seed),
            )
            cached = cached_generate(
                model, prompt, mn, temperature=temp, top_k=top_k,
                rng=np.random.default_rng(seed), block_size=block_size,
            )
            if not np.array_equal(oracle, cached):
                failures.append(
                    f"cached decode diverged from oracle at prompt_len={pl} "
                    f"max_new={mn} temperature={temp} top_k={top_k} "
                    f"block_size={block_size}: oracle={oracle.tolist()} "
                    f"cached={cached.tolist()}"
                )
        # Stop-token path: cached decode must stop where the oracle stops.
        prompt = prompt_rng.integers(0, config.vocab_size, size=4)
        probe = generate(model, prompt, 6, temperature=0.0)
        stop = {int(probe[len(prompt) + 1])}
        oracle = generate(model, prompt, 6, temperature=0.0, stop_ids=stop)
        cached = cached_generate(
            model, prompt, 6, temperature=0.0, stop_ids=stop,
            block_size=block_size,
        )
        if not np.array_equal(oracle, cached):
            failures.append(
                f"cached decode with stop_ids diverged: "
                f"oracle={oracle.tolist()} cached={cached.tolist()}"
            )
    return failures


def _run_trace(model, trace, num_blocks, block_size):
    """One deterministic engine run; returns (outputs, report, events)."""
    from repro.serve import PagedKVCache, ServeEngine

    cache = PagedKVCache.for_model(
        model, num_blocks=num_blocks, block_size=block_size
    )
    buf = io.StringIO()
    logger = RunLogger(buf, "serve-check", clock=lambda: 0.0)
    logger.start("serve")
    engine = ServeEngine(model, cache, logger=logger)
    report = engine.run(trace)
    cache.assert_empty()
    import json

    events = []
    for line in buf.getvalue().splitlines():
        event = json.loads(line)
        if event["type"] not in ("request", "iteration"):
            continue
        # Wall-clock fields are the only nondeterminism; everything on
        # the virtual clock must replay bit-exactly.
        event.pop("t", None)
        event.pop("seconds", None)
        events.append(event)
    return engine.outputs, report, events


def _check_engine(fast: bool, seed: int) -> list[str]:
    from repro.serve import poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    n = 6 if fast else 12
    trace = poisson_trace(
        n, 0.7, vocab_size=config.vocab_size, seed=seed + 2,
        temperature=1.0, top_k=5,
    )
    failures = []
    # A 4-block pool is deliberately scarce: the trace must preempt.
    outputs, report, events = _run_trace(model, trace, 4, 3)
    if sum(r.preemptions for r in report.requests) == 0:
        failures.append(
            "scarce-capacity trace triggered no preemption -- the "
            "preemption path went unexercised"
        )
    for req in trace:
        oracle = generate(
            model, np.array(req.prompt), req.max_new_tokens,
            temperature=req.temperature, top_k=req.top_k,
            rng=np.random.default_rng(req.seed),
            stop_ids=set(req.stop_ids),
        )
        got = outputs.get(req.request_id)
        if got is None or not np.array_equal(oracle, got):
            failures.append(
                f"engine stream for {req.request_id} != its oracle: "
                f"oracle={oracle.tolist()} "
                f"engine={None if got is None else got.tolist()}"
            )
    # Deterministic replay: same trace, fresh pool -> identical run.
    outputs2, report2, events2 = _run_trace(model, trace, 4, 3)
    for rid, stream in outputs.items():
        if not np.array_equal(stream, outputs2[rid]):
            failures.append(f"replay diverged on {rid}'s token stream")
    if report.to_dict()["requests"] != report2.to_dict()["requests"]:
        failures.append("replay diverged on per-request metrics")
    if events != events2:
        failures.append("replay diverged on the run-log event sequence")
    return failures


def _check_tp(fast: bool, seed: int) -> list[str]:
    from repro.serve import tp_generate

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    prompt_rng = np.random.default_rng(seed + 3)
    failures = []
    cases = [(3, 5, 0.0, None), (6, 6, 1.0, 4)]
    if not fast:
        cases.append((10, 6, 0.0, None))  # over-window TP decode
    for pl, mn, temp, top_k in cases:
        prompt = prompt_rng.integers(0, config.vocab_size, size=pl)
        single = generate(
            model, prompt, mn, temperature=temp, top_k=top_k,
            rng=np.random.default_rng(seed),
        )
        for world in (2, 4):
            tp = tp_generate(
                config, prompt, mn, world=world, seed=seed,
                temperature=temp, top_k=top_k,
                rng=np.random.default_rng(seed),
            )
            if not np.array_equal(single, tp):
                failures.append(
                    f"tp decode (t={world}, coop) != single-rank at "
                    f"prompt_len={pl} max_new={mn} temperature={temp} "
                    f"top_k={top_k}: single={single.tolist()} "
                    f"tp={tp.tolist()}"
                )
    if not fast:
        # One real-process case bounds the spawn cost while still
        # proving backend-invariance of the decoded stream.
        prompt = prompt_rng.integers(0, config.vocab_size, size=4)
        single = generate(model, prompt, 4, temperature=0.0)
        tp = tp_generate(
            config, prompt, 4, world=2, seed=seed, backend="mp",
            temperature=0.0,
        )
        if not np.array_equal(single, tp):
            failures.append(
                f"tp decode (t=2, mp) != single-rank: "
                f"single={single.tolist()} tp={tp.tolist()}"
            )
    return failures


def run_serve_checks(
    fast: bool = False, seed: int = 0
) -> list[tuple[str, list[str]]]:
    """Every serving conformance check; ``(name, failures)`` per check."""
    return [
        ("cached-decode-oracle-grid", _check_cached_decode(fast, seed)),
        ("continuous-batching", _check_engine(fast, seed)),
        ("tensor-parallel-decode", _check_tp(fast, seed)),
    ]
