"""Conservation checks: measured traffic and FLOPs vs §3.2 closed forms.

The performance model (``repro.perf``) predicts throughput from the
paper's analytic communication volumes and eq. (3) FLOP counts.  Those
predictions are only as good as the premise that the *engine* actually
moves those bytes and performs those FLOPs.  This module closes the
loop: it runs one real training iteration with a :class:`TrafficLog`
and :class:`FlopMeter` attached and asserts *exact integer equality*
between the measured totals and the closed forms:

- **DP**: per-parameter ring all-reduce moves ``2 (d-1) * 8 * P_replica``
  bytes per iteration (the §3.3.1 ``(d-1)/d`` ring volume, summed over
  the group's d ranks, fp64 internals).
- **PP**: every microbatch crosses every one of the ``p*v - 1`` stage
  boundaries forward and backward, ``t`` tensor-parallel copies of a
  ``(b, s, h)`` fp64 activation each; tied-embedding sync adds
  ``2 * V * h * 8`` per replica when ``p > 1``.
- **TP**: the §3.2 per-layer g/f all-reduces each move
  ``2 (t-1) * b * s * h * 8`` bytes per call, ``l * m`` calls per
  replica per tag; activation recompute re-runs the forward and exactly
  doubles the g-tag (forward) volume.
- **FLOPs**: the metered GEMM work equals
  ``config.flops_per_iteration(B, with_recompute)`` -- plus exactly one
  extra logit forward (``2 B s V h``) under recompute, whose logits the
  closed form's checkpointing model assumes are not recomputed.

Any discrepancy means either the engine or the performance model has
drifted; the report names the quantity and both values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .conformance import ConformanceCase, model_for_case


@dataclass(frozen=True)
class ConservationItem:
    """One measured-vs-analytic comparison (exact integer equality)."""

    name: str
    measured: int
    expected: int

    @property
    def ok(self) -> bool:
        return self.measured == self.expected

    def describe(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        line = f"{status} {self.name}: measured={self.measured}"
        if not self.ok:
            line += f" expected={self.expected} (diff={self.measured - self.expected:+d})"
        return line


@dataclass
class ConservationReport:
    case: ConformanceCase
    items: list[ConservationItem] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def failures(self) -> list[ConservationItem]:
        return [item for item in self.items if not item.ok]

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        out = f"{status}  conservation {self.case.describe()}"
        for item in self.items:
            if not item.ok:
                out += f"\n      {item.describe()}"
        return out


def default_conservation_configs(fast: bool = False) -> list[ConformanceCase]:
    """A small grid covering each traffic class and their composition."""
    cases = [
        # pure DP: only dp.grad.* all-reduces
        ConformanceCase(d=2, b=1, m=2, seed=11),
        # pure TP: g/f all-reduces, zero DP/PP bytes
        ConformanceCase(t=2, b=2, m=1, seed=12),
        # pure PP: p2p activations + tied-embedding sync
        ConformanceCase(p=2, b=1, m=4, schedule="gpipe", seed=13),
    ]
    if not fast:
        cases += [
            # composed PTD with 1F1B
            ConformanceCase(p=2, t=2, d=2, b=1, m=2, seed=14),
            # interleaved: v model chunks multiply the p2p boundaries
            ConformanceCase(p=2, v=2, b=1, m=2, schedule="interleaved",
                            seed=15),
            # recompute doubles forward TP volume and adds logit FLOPs
            ConformanceCase(p=2, t=2, b=1, m=2, recompute=True, seed=16),
        ]
    return cases


def _expected(case: ConformanceCase, config, trainer) -> dict[str, int]:
    """The §3.2 closed forms, in bytes (fp64 internals) and FLOPs."""
    p, t, d, v, b, m = case.p, case.t, case.d, case.v, case.b, case.m
    s = config.seq_length
    h = config.hidden_size
    l = config.num_layers
    V = config.vocab_size
    B = case.global_batch_size
    act = b * s * h * 8  # one (b, s, h) fp64 activation

    # DP: ring all-reduce of every replica parameter over the d group.
    params_per_replica = sum(
        param.data.size for param in trainer.replicas[0].parameters()
    )
    dp = 2 * (d - 1) * 8 * params_per_replica

    # PP: 2 directions x (p*v - 1) boundaries x m microbatches x t copies,
    # plus the tied-embedding ring all-reduce (2-rank group, t shards).
    pp = d * 2 * (p * v - 1) * m * t * act
    if p > 1:
        pp += d * 2 * V * h * 8

    # TP: one g and one f all-reduce per layer per microbatch per tag
    # family; ring volume 2 (t-1) x activation; recompute re-runs the
    # forward so the g (forward) tags double.
    tp_call = 2 * (t - 1) * act
    fwd_runs = 2 if case.recompute else 1
    tp_tags = {}
    for tag in ("attn.g", "mlp.g"):
        tp_tags[tag] = d * l * m * fwd_runs * tp_call
    for tag in ("attn.f", "mlp.f"):
        tp_tags[tag] = d * l * m * tp_call

    flops = config.flops_per_iteration(B, with_recompute=case.recompute)
    if case.recompute:
        # The engine re-runs the full forward including the logit
        # matmul; the closed form's checkpointing model excludes it.
        flops += 2 * B * s * h * V

    expected = {"dp.bytes": dp, "pp.bytes": pp, "flops": int(flops)}
    for tag, val in tp_tags.items():
        expected[f"tp.bytes[{tag}]"] = val
    return expected


def check_conservation(case: ConformanceCase) -> ConservationReport:
    """Train one iteration of ``case`` and compare measured vs analytic."""
    from repro.comm.traffic import TrafficKind, TrafficLog
    from repro.config import ParallelConfig
    from repro.nn.profiler import count_flops
    from repro.parallel import PTDTrainer

    if case.zero:
        raise ValueError(
            "conservation checks cover the PTD engine; ZeRO volumes are "
            "tested separately (tests/test_zero.py)"
        )
    config = model_for_case(case)
    log = TrafficLog()
    trainer = PTDTrainer(
        config,
        ParallelConfig(
            pipeline_parallel_size=case.p,
            tensor_parallel_size=case.t,
            data_parallel_size=case.d,
            microbatch_size=case.b,
            global_batch_size=case.global_batch_size,
            num_model_chunks=case.v,
        ),
        schedule=case.schedule,
        seed=0,
        recompute_activations=case.recompute,
        log=log,
    )
    rng = np.random.default_rng(case.seed)
    B = case.global_batch_size
    ids = rng.integers(0, config.vocab_size, size=(B, config.seq_length))
    targets = rng.integers(0, config.vocab_size, size=(B, config.seq_length))
    with count_flops() as meter:
        trainer.train_step(ids, targets)

    expected = _expected(case, config, trainer)
    tp_by_tag = log.by_tag(TrafficKind.TENSOR_PARALLEL)
    measured = {
        "dp.bytes": log.total_bytes(TrafficKind.DATA_PARALLEL),
        "pp.bytes": log.total_bytes(TrafficKind.PIPELINE_P2P),
        "flops": int(meter.total_flops),
    }
    for name in expected:
        if name.startswith("tp.bytes["):
            tag = name[len("tp.bytes["):-1]
            measured[name] = tp_by_tag.get(tag, 0)

    items = [
        ConservationItem(name, measured[name], expected[name])
        for name in sorted(expected)
    ]
    return ConservationReport(case=case, items=items)
