"""Correctness-verification subsystem.

Four cooperating pieces that turn the paper's validity argument --
any (data, tensor, pipeline) decomposition preserves strict
synchronous-SGD semantics -- into executable, CI-enforced properties:

- :mod:`repro.verify.schedule_check` -- static validator over the
  schedule IR: dependency races, p2p send/recv matching (real-rank
  deadlocks), in-flight-microbatch memory bounds (§2.2).
- :mod:`repro.verify.sanitizer` -- collective sanitizer hooked into
  :mod:`repro.comm.primitives`: per-rank collective timelines checked
  pairwise for op/group/shape/dtype agreement (the MegaScale lesson).
- :mod:`repro.verify.conformance` -- property harness sampling random
  small-model (d, t, p, v, m, recompute, ZeRO) configs and asserting
  the parallel engine matches the single-rank baseline.
- :mod:`repro.verify.conservation` -- cross-checks measured TrafficLog
  bytes and FlopMeter FLOPs against the §3.2 / eq. (3) closed forms.
- :mod:`repro.verify.chaos_check` -- fault-tolerance conformance: the
  chaos harness's recovery (kill/resume, corrupt/fallback, interrupted
  commits, resharding) must not change what training computes.

``python -m repro verify`` runs all five (see
:mod:`repro.verify.runner`).

This ``__init__`` resolves its public names lazily (PEP 562):
:mod:`repro.comm.primitives` imports the sanitizer hook at module load,
and an eager import of the conformance harness here (which imports
``repro.parallel`` and hence ``repro.comm``) would create a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    # sanitizer (dependency-free; safe for the comm substrate to import)
    "CollectiveEvent": "sanitizer",
    "CollectiveMismatch": "sanitizer",
    "CollectiveSanitizer": "sanitizer",
    "SanitizerError": "sanitizer",
    "current_sanitizer": "sanitizer",
    "record_collective": "sanitizer",
    # schedule validator
    "ScheduleViolation": "schedule_check",
    "ScheduleViolationError": "schedule_check",
    "assert_valid_schedule": "schedule_check",
    "check_all_generators": "schedule_check",
    "in_flight_bound": "schedule_check",
    "schedule_from_json": "schedule_check",
    "schedule_to_json": "schedule_check",
    "validate_schedule": "schedule_check",
    # conformance harness
    "ConformanceCase": "conformance",
    "ConformanceResult": "conformance",
    "parse_case": "conformance",
    "run_case": "conformance",
    "sample_cases": "conformance",
    # chaos / fault-tolerance conformance
    "run_chaos_checks": "chaos_check",
    # conservation checks
    "ConservationItem": "conformance_conservation",
    "ConservationReport": "conformance_conservation",
    "check_conservation": "conformance_conservation",
    "default_conservation_configs": "conformance_conservation",
    # runner
    "VerificationReport": "runner",
    "run_verification": "runner",
}

# conservation lives in conservation.py; the table above maps through a
# distinct key so the module name stays accurate.
_MODULE_ALIASES = {"conformance_conservation": "conservation"}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    if name not in _EXPORTS:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module_key = _EXPORTS[name]
    module_name = _MODULE_ALIASES.get(module_key, module_key)
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
