"""Serving-under-fire conformance: the engine's fault-recovery and
degradation guarantees, checked against injected chaos.

Five checks, one guarantee each:

- **crash-recovery-grid** — decode-step crashes
  (:class:`~repro.resilience.serve_chaos.DecodeCrash`) across a grid of
  plans: every request still completes, every completed stream equals
  its per-request oracle (faults fire before the sampling rng is
  consumed, so recompute-restart replays the exact stream), the cache
  ends with zero live blocks, and per-tick token counts equal the sum
  over terminal requests (token conservation).
- **corruption-checksum** — KV-block corruption against a checksummed
  :class:`~repro.serve.kv_cache.PagedKVCache`: the corruption must be
  *detected* (the victim retries; garbage never feeds a forward pass)
  and the retried streams still equal their oracles.
- **exhaustion-overload** — an allocator-exhaustion storm over an
  overloaded trace with a bounded queue, deadlines and queue TTLs: the
  run terminates (no livelock), the never-admitted queue never exceeds
  ``max_queue``, shedding and expiry produce typed ``rejected`` /
  ``timeout`` outcomes, and token conservation spans those outcomes
  (timed-out partials count, rejected contribute zero).
- **deadline-typing** — deadline semantics at the edge: a deadline
  equal to the arrival step still gets the arrival tick (one-token
  requests complete; longer ones time out with their partial counted).
- **faulted-replay** — a combined crash+corruption+storm run replays
  bit-exactly: token streams, per-request metrics, and the run-log
  event sequence on the virtual clock (faults included).
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.config import tiny_test_model
from repro.nn.generate import generate
from repro.nn.transformer import GPTModel
from repro.obs.runlog import RunLogger
from repro.resilience.serve_chaos import (
    AllocExhaustion,
    DecodeCrash,
    KVCorruption,
    ServeChaosPlan,
)


def _run(model, trace, *, num_blocks, block_size, checksums=False,
         max_steps=None, **engine_kw):
    """One deterministic chaos run; returns (engine, report, events)."""
    from repro.serve import PagedKVCache, ServeEngine

    cache = PagedKVCache.for_model(
        model, num_blocks=num_blocks, block_size=block_size,
        checksums=checksums,
    )
    buf = io.StringIO()
    logger = RunLogger(buf, "serve-chaos-check", clock=lambda: 0.0)
    logger.start("serve")
    engine = ServeEngine(model, cache, logger=logger, **engine_kw)
    report = engine.run(trace, max_steps=max_steps)
    events = []
    for line in buf.getvalue().splitlines():
        event = json.loads(line)
        if event["type"] not in ("request", "iteration", "fault"):
            continue
        event.pop("t", None)
        event.pop("seconds", None)
        events.append(event)
    return engine, report, events


def _oracle(model, req):
    return generate(
        model, np.array(req.prompt), req.max_new_tokens,
        temperature=req.temperature, top_k=req.top_k,
        rng=np.random.default_rng(req.seed), stop_ids=set(req.stop_ids),
    )


def _invariants(label, engine, report, events, trace) -> list[str]:
    """The guarantees every faulted run must keep, whatever the plan."""
    from repro.serve import validate_serve_metrics

    failures = []
    if engine.cache.live_blocks != 0:
        failures.append(
            f"{label}: cache leaked {engine.cache.live_blocks} live "
            f"blocks after the run"
        )
    violations = validate_serve_metrics(report.to_dict())
    for v in violations:
        failures.append(f"{label}: metrics schema violation: {v}")
    ticked = sum(e.get("tokens", 0) for e in events
                 if e["type"] == "iteration")
    settled = sum(r.generated_tokens for r in report.requests)
    if ticked != settled:
        failures.append(
            f"{label}: token conservation broken -- {ticked} tokens "
            f"ticked vs {settled} settled across all terminal outcomes"
        )
    if len(report.requests) != len(trace):
        failures.append(
            f"{label}: {len(report.requests)} terminal requests for a "
            f"{len(trace)}-request trace (requests lost or duplicated)"
        )
    by_id = {r.request_id: r for r in report.requests}
    for req in trace:
        metrics = by_id.get(req.request_id)
        if metrics is None or metrics.outcome != "completed":
            continue
        oracle = _oracle(engine.model, req)
        got = engine.outputs.get(req.request_id)
        if got is None or not np.array_equal(oracle, got):
            failures.append(
                f"{label}: completed stream for {req.request_id} != its "
                f"oracle under injected faults: oracle={oracle.tolist()} "
                f"engine={None if got is None else got.tolist()}"
            )
    return failures


def _check_crash_grid(fast: bool, seed: int) -> list[str]:
    from repro.serve import poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    trace = poisson_trace(
        5 if fast else 8, 0.8, vocab_size=config.vocab_size, seed=seed + 11,
        temperature=1.0, top_k=5,
    )
    plans = [
        ServeChaosPlan(crashes=(DecodeCrash(at_step=0),)),
        ServeChaosPlan(crashes=(
            DecodeCrash(at_step=1, times=2),
            DecodeCrash(at_step=6),
        )),
    ]
    if not fast:
        plans.append(ServeChaosPlan(crashes=(
            DecodeCrash(at_step=0, request_id=trace[0].request_id, times=3),
        )))
    failures = []
    for i, plan in enumerate(plans):
        label = f"crash-plan[{i}]"
        engine, report, events = _run(
            model, trace, num_blocks=6, block_size=3, chaos=plan,
        )
        failures += _invariants(label, engine, report, events, trace)
        agg = report.to_dict()["aggregate"]
        if agg["retries"] == 0:
            failures.append(
                f"{label}: no retries recorded -- the crash never fired"
            )
        if agg["outcomes"]["completed"] != len(trace):
            failures.append(
                f"{label}: {agg['outcomes']} -- every request should "
                f"complete within the retry budget"
            )
    return failures


def _check_corruption(fast: bool, seed: int) -> list[str]:
    from repro.serve import poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    trace = poisson_trace(
        4 if fast else 6, 0.6, vocab_size=config.vocab_size, seed=seed + 12,
        temperature=1.0, top_k=5,
    )
    plan = ServeChaosPlan(corruptions=(
        KVCorruption(at_step=2, times=1 if fast else 2),
    ))
    engine, report, events = _run(
        model, trace, num_blocks=8, block_size=3, checksums=True, chaos=plan,
    )
    failures = _invariants("corruption", engine, report, events, trace)
    agg = report.to_dict()["aggregate"]
    if agg["retries"] == 0:
        failures.append(
            "corruption: no retries -- the checksum never caught the "
            "corrupted block"
        )
    if agg["outcomes"]["completed"] != len(trace):
        failures.append(
            f"corruption: {agg['outcomes']} -- corruption recovery should "
            f"complete every request"
        )
    return failures


def _check_exhaustion_overload(fast: bool, seed: int) -> list[str]:
    from repro.serve import poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    # Deliberate overload: ~3 arrivals per step into a 4-block pool,
    # with a storm seizing the whole pool mid-burst.
    trace = poisson_trace(
        8 if fast else 12, 3.0, vocab_size=config.vocab_size,
        seed=seed + 13, max_new=(3, 8), temperature=1.0, top_k=5,
        deadline_steps=12, queue_ttl=5,
    )
    plan = ServeChaosPlan(exhaustions=(
        AllocExhaustion(at_step=1, steps=8),
    ))
    failures = []
    for policy in ("reject-newest", "edf"):
        label = f"overload[{policy}]"
        engine, report, events = _run(
            model, trace, num_blocks=4, block_size=3, chaos=plan,
            max_queue=3, shed_policy=policy,
        )
        failures += _invariants(label, engine, report, events, trace)
        agg = report.to_dict()["aggregate"]
        if agg["outcomes"]["rejected"] == 0:
            failures.append(
                f"{label}: overload shed nothing -- the bounded queue "
                f"went unexercised"
            )
        if agg["outcomes"]["timeout"] == 0:
            failures.append(
                f"{label}: nothing timed out under a storm with "
                f"deadlines and TTLs set"
            )
        peak_queue = max(
            (e["queued"] for e in events if e["type"] == "iteration"),
            default=0,
        )
        if peak_queue > 3:
            failures.append(
                f"{label}: never-admitted queue reached {peak_queue} "
                f"> max_queue=3 -- admission control leaked"
            )
    return failures


def _check_deadline_typing(fast: bool, seed: int) -> list[str]:
    from repro.serve import TraceRequest

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    rng = np.random.default_rng(seed + 14)
    prompt = tuple(int(t) for t in rng.integers(0, config.vocab_size, size=3))
    trace = [
        # Deadline equal to the arrival step: the request still gets the
        # arrival tick, so one token completes it...
        TraceRequest("edge-one", 0, prompt, 1, seed=1, deadline_steps=0),
        # ...while a longer decode times out next tick, partial counted.
        TraceRequest("edge-many", 0, prompt, 5, seed=2, deadline_steps=0),
        TraceRequest("roomy", 0, prompt, 4, seed=3, deadline_steps=50),
    ]
    engine, report, events = _run(model, trace, num_blocks=8, block_size=3)
    failures = _invariants("deadline-typing", engine, report, events, trace)
    by_id = {r.request_id: r for r in report.requests}
    if by_id["edge-one"].outcome != "completed":
        failures.append(
            f"deadline-typing: edge-one should complete on its arrival "
            f"tick, got {by_id['edge-one'].outcome}"
        )
    timed = by_id["edge-many"]
    if timed.outcome != "timeout":
        failures.append(
            f"deadline-typing: edge-many should time out, got "
            f"{timed.outcome}"
        )
    elif not 1 <= timed.generated_tokens < 5:
        failures.append(
            f"deadline-typing: edge-many generated "
            f"{timed.generated_tokens} tokens; expected a partial stream"
        )
    if by_id["roomy"].outcome != "completed":
        failures.append(
            f"deadline-typing: roomy deadline should not fire, got "
            f"{by_id['roomy'].outcome}"
        )
    return failures


def _check_faulted_replay(fast: bool, seed: int) -> list[str]:
    from repro.serve import poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=seed)
    trace = poisson_trace(
        5 if fast else 8, 0.9, vocab_size=config.vocab_size, seed=seed + 15,
        temperature=1.0, top_k=5, deadline_steps=60,
    )
    plan = ServeChaosPlan(
        crashes=(DecodeCrash(at_step=1, times=2),),
        corruptions=(KVCorruption(at_step=4),),
        exhaustions=(AllocExhaustion(at_step=7, steps=3),),
    )

    def once():
        return _run(model, trace, num_blocks=6, block_size=3,
                    checksums=True, chaos=plan, max_queue=6)

    engine1, report1, events1 = once()
    engine2, report2, events2 = once()
    failures = _invariants("faulted-replay", engine1, report1, events1,
                           trace)
    for rid, stream in engine1.outputs.items():
        if not np.array_equal(stream, engine2.outputs[rid]):
            failures.append(
                f"faulted-replay: replay diverged on {rid}'s token stream"
            )
    if report1.to_dict()["requests"] != report2.to_dict()["requests"]:
        failures.append("faulted-replay: replay diverged on metrics")
    if events1 != events2:
        failures.append(
            "faulted-replay: replay diverged on the run-log event "
            "sequence (faults included)"
        )
    return failures


def run_serve_chaos_checks(
    fast: bool = False, seed: int = 0
) -> list[tuple[str, list[str]]]:
    """Every serving-resilience check; ``(name, failures)`` per check."""
    return [
        ("crash-recovery-grid", _check_crash_grid(fast, seed)),
        ("corruption-checksum", _check_corruption(fast, seed)),
        ("exhaustion-overload", _check_exhaustion_overload(fast, seed)),
        ("deadline-typing", _check_deadline_typing(fast, seed)),
        ("faulted-replay", _check_faulted_replay(fast, seed)),
    ]
