"""``python -m repro verify``: run every verification layer, report, exit.

Seven sections, each independently reportable:

- ``schedules``     -- static validation of every shipped schedule
  generator across a (p, m, v) grid, plus any user-supplied schedule
  JSON fixture (``--schedule-json``).
- ``sanitizer``     -- a real composed (p, t, d) training step under the
  collective sanitizer; any cross-rank timeline divergence fails.
- ``conformance``   -- N sampled random configurations trained against
  the single-rank baseline (``--configs``/``--seed``/``--case``).
- ``backend``       -- cross-backend conformance
  (:mod:`repro.verify.backend_check`): the multi-process shared-memory
  backend must be bit-identical to the cooperative oracle (losses,
  parameters, optimizer state, traffic log) over the same stratified
  config grid, and must leak no ``/dev/shm`` segments.
- ``conservation``  -- measured traffic bytes and FLOPs vs the §3.2 /
  eq. (3) closed forms, exact integer equality.
- ``chaos``         -- fault-tolerance conformance
  (:mod:`repro.verify.chaos_check`): a run killed and recovered by the
  chaos harness must be bit-identical to an uninterrupted run, a
  corrupted newest checkpoint must fall back to an older verified one,
  interrupted commits must never leave ``LATEST`` at an unverifiable
  checkpoint, and a resharded resume must match the single-rank
  reference at fp64 tolerance.
- ``serve``         -- serving conformance
  (:mod:`repro.verify.serve_check`): paged-KV cached decode, the
  continuous-batching engine (including under forced preemption and on
  bit-exact trace replay) and tensor-parallel decode must all produce
  token streams equal to the full-recompute ``generate`` oracle, with
  zero leaked cache blocks.

Mutation self-test (``--inject``): the verifier is itself verified by
injecting one of three known defects and demanding it is caught --
``reorder`` (a backward moved before its forward in a schedule),
``collective-shape`` (one rank posting a differently-shaped collective),
``grad-perturb`` (a silently corrupted gradient in one data-parallel
replica).  An injection that is *not* detected is reported as a failure
of the verifier, so the exit code is non-zero either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

INJECT_MODES = ("reorder", "collective-shape", "grad-perturb")


@dataclass
class SectionResult:
    """Outcome of one verification section."""

    name: str
    checks: int = 0
    failures: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class VerificationReport:
    sections: list[SectionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.sections)

    @property
    def num_failures(self) -> int:
        return sum(len(s.failures) for s in self.sections)

    def describe(self) -> str:
        lines = []
        for s in self.sections:
            status = "ok" if s.ok else "FAIL"
            lines.append(f"[{status}] {s.name}: {s.checks} checks, "
                         f"{len(s.failures)} failures")
            for note in s.notes:
                lines.append(f"    {note}")
            for failure in s.failures:
                for i, fl in enumerate(failure.splitlines()):
                    lines.append(("  - " if i == 0 else "    ") + fl)
        verdict = ("verification PASSED" if self.ok else
                   f"verification FAILED ({self.num_failures} failures)")
        lines.append(verdict)
        return "\n".join(lines)


# -- sections ----------------------------------------------------------------


def _run_schedules(fast: bool, schedule_json: str | None) -> SectionResult:
    from .schedule_check import (
        check_all_generators,
        schedule_from_json,
        validate_schedule,
    )

    section = SectionResult("schedules")
    results = check_all_generators(fast=fast)
    section.checks = len(results)
    for (name, p, m, v), violations in sorted(results.items()):
        for violation in violations:
            section.failures.append(
                f"{name}(p={p}, m={m}, v={v}): {violation.describe()}"
            )
    if schedule_json is not None:
        section.checks += 1
        try:
            schedule = schedule_from_json(schedule_json)
        except ValueError as exc:
            section.failures.append(f"schedule fixture: unparseable: {exc}")
        else:
            for violation in validate_schedule(schedule):
                section.failures.append(
                    f"schedule fixture '{schedule.name}': "
                    f"{violation.describe()}"
                )
    return section


def _run_sanitizer(inject: str | None, seed: int) -> SectionResult:
    import numpy as np

    from repro.config import ParallelConfig, tiny_test_model
    from repro.parallel import PTDTrainer

    from .sanitizer import CollectiveSanitizer

    section = SectionResult("sanitizer")
    config = tiny_test_model(num_layers=2, hidden_size=16,
                             num_attention_heads=4, vocab_size=32,
                             seq_length=8)
    trainer = PTDTrainer(
        config,
        ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                       data_parallel_size=2, microbatch_size=1,
                       global_batch_size=4),
        seed=0,
    )
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, config.vocab_size, size=(4, config.seq_length))
    with CollectiveSanitizer() as sanitizer:
        trainer.train_step(ids, np.roll(ids, -1, axis=1))
        if inject == "collective-shape":
            # One rank posts a differently-shaped buffer for the "same"
            # collective -- silent corruption on real ranks.
            sanitizer.record_rank_event(0, "all_reduce", (0, 1), (5,),
                                        "float64", tag="injected")
            sanitizer.record_rank_event(1, "all_reduce", (0, 1), (4,),
                                        "float64", tag="injected")
    mismatches = sanitizer.check()
    section.checks = sanitizer.num_events
    section.notes.append(
        f"{sanitizer.num_events} collective events across "
        f"{len(sanitizer.timelines)} ranks (p=2, t=2, d=2 train step)"
    )
    for mismatch in mismatches:
        section.failures.append(mismatch.describe())
    return section


def _run_conformance(fast: bool, num_cases: int, seed: int,
                     case, inject: str | None) -> SectionResult:
    from .conformance import run_case, sample_cases

    section = SectionResult("conformance")
    perturb = 1e-6 if inject == "grad-perturb" else 0.0
    if case is not None:
        cases = [case]
    elif inject == "grad-perturb":
        from .conformance import ConformanceCase

        cases = [ConformanceCase(p=2, d=2, b=1, m=2, seed=seed)]
    else:
        cases = sample_cases(num_cases, seed=seed)
    section.checks = len(cases)
    for c in cases:
        result = run_case(c, perturb_gradient=perturb)
        if not result.ok:
            detail = "\n".join(result.failures)
            section.failures.append(
                f"{c.describe()}\n{detail}\nrepro: {c.repro_string}"
            )
    return section


def _run_backend(fast: bool, num_cases: int | None, seed: int) -> SectionResult:
    """Cross-backend conformance: mp (real processes over shared
    memory) must be *bit*-identical to the coop oracle — losses,
    parameters, optimizer state and the traffic log, with no leaked
    ``/dev/shm`` segments."""
    from .backend_check import run_backend_checks

    section = SectionResult("backend")
    results = run_backend_checks(fast, num_cases, seed)
    section.checks = len(results)
    for case, failures in results:
        for failure in failures:
            section.failures.append(
                f"{case.describe()}: {failure}\nrepro: {case.repro_string}"
            )
    section.notes.append(
        f"{len(results)} configs bit-compared coop vs mp "
        "(losses, params, optimizer, traffic)"
    )
    return section


def _run_conservation(fast: bool) -> SectionResult:
    from .conservation import check_conservation, default_conservation_configs

    section = SectionResult("conservation")
    configs = default_conservation_configs(fast=fast)
    section.checks = len(configs)
    for case in configs:
        report = check_conservation(case)
        for item in report.failures:
            section.failures.append(
                f"{case.describe()}: {item.describe()}"
            )
    return section


def _run_chaos(fast: bool, seed: int) -> SectionResult:
    from .chaos_check import run_chaos_checks

    section = SectionResult("chaos")
    results = run_chaos_checks(fast=fast, seed=seed)
    section.checks = len(results)
    for name, failures in results:
        for failure in failures:
            section.failures.append(f"{name}: {failure}")
    section.notes.append(
        "recovery conformance: " + ", ".join(name for name, _ in results)
    )
    return section


def _run_serve(fast: bool, seed: int) -> SectionResult:
    from .serve_check import run_serve_checks

    section = SectionResult("serve")
    results = run_serve_checks(fast=fast, seed=seed)
    section.checks = len(results)
    for name, failures in results:
        for failure in failures:
            section.failures.append(f"{name}: {failure}")
    section.notes.append(
        "decode conformance vs the generate oracle: "
        + ", ".join(name for name, _ in results)
    )
    return section


def _run_serve_chaos(fast: bool, seed: int) -> SectionResult:
    from .serve_chaos_check import run_serve_chaos_checks

    section = SectionResult("serve-chaos")
    results = run_serve_chaos_checks(fast=fast, seed=seed)
    section.checks = len(results)
    for name, failures in results:
        for failure in failures:
            section.failures.append(f"{name}: {failure}")
    section.notes.append(
        "serving under fire: " + ", ".join(name for name, _ in results)
    )
    return section


def _run_injected_reorder(seed: int) -> SectionResult:
    """Mutate a known-good 1F1B schedule (a backward hoisted before its
    forward on rank 0) and demand the static validator flags it."""
    from dataclasses import replace

    from repro.schedule import make_schedule
    from repro.schedule.ir import OpKind

    from .schedule_check import validate_schedule

    section = SectionResult("schedules")
    schedule = make_schedule("1f1b", num_stages=4, num_microbatches=4)
    rank0 = list(schedule.ops[0])
    b_idx = next(i for i, op in enumerate(rank0)
                 if op.kind is OpKind.BACKWARD)
    f_idx = next(i for i, op in enumerate(rank0)
                 if op.kind is OpKind.FORWARD
                 and (op.microbatch, op.chunk) ==
                 (rank0[b_idx].microbatch, rank0[b_idx].chunk))
    rank0[f_idx], rank0[b_idx] = rank0[b_idx], rank0[f_idx]
    mutated = replace(
        schedule, ops=(tuple(rank0),) + schedule.ops[1:]
    )
    section.checks = 1
    for violation in validate_schedule(mutated):
        section.failures.append(
            f"1f1b(p=4, m=4, v=1) [injected reorder]: "
            f"{violation.describe()}\n"
            f"repro: python -m repro verify --inject reorder --seed {seed}"
        )
    return section


# -- entry point -------------------------------------------------------------


def run_verification(
    *,
    fast: bool = False,
    num_cases: int | None = None,
    seed: int = 0,
    schedule_json: str | None = None,
    inject: str | None = None,
    case=None,
    only: str | None = None,
) -> VerificationReport:
    """Run the requested verification sections and return the report.

    Parameters mirror the CLI flags; ``schedule_json`` is the fixture
    *text* (the CLI reads the file), ``case`` a parsed
    :class:`~repro.verify.conformance.ConformanceCase`.
    """
    if inject is not None and inject not in INJECT_MODES:
        raise ValueError(
            f"unknown injection mode {inject!r}; choose from "
            f"{', '.join(INJECT_MODES)}"
        )
    if only is not None and only not in (
        "schedules", "sanitizer", "conformance", "backend", "conservation",
        "chaos", "serve", "serve-chaos",
    ):
        raise ValueError(f"unknown section {only!r}")
    if num_cases is None:
        num_cases = 6 if fast else 25

    report = VerificationReport()

    if inject == "reorder":
        report.sections.append(_run_injected_reorder(seed))
    elif inject == "collective-shape":
        report.sections.append(_run_sanitizer(inject, seed))
    elif inject == "grad-perturb":
        report.sections.append(
            _run_conformance(fast, num_cases, seed, case, inject)
        )
    elif case is not None:
        report.sections.append(
            _run_conformance(fast, num_cases, seed, case, None)
        )
    else:
        if only in (None, "schedules"):
            report.sections.append(_run_schedules(fast, schedule_json))
        if only in (None, "sanitizer"):
            report.sections.append(_run_sanitizer(None, seed))
        if only in (None, "conformance"):
            report.sections.append(
                _run_conformance(fast, num_cases, seed, None, None)
            )
        if only in (None, "backend"):
            report.sections.append(
                _run_backend(fast, num_cases if only == "backend" else None,
                             seed)
            )
        if only in (None, "conservation"):
            report.sections.append(_run_conservation(fast))
        if only in (None, "chaos"):
            report.sections.append(_run_chaos(fast, seed))
        if only in (None, "serve"):
            report.sections.append(_run_serve(fast, seed))
        if only in (None, "serve-chaos"):
            report.sections.append(_run_serve_chaos(fast, seed))

    if inject is not None and report.ok:
        # The injected defect was NOT caught: the verifier itself is
        # broken, which is the worst possible outcome of a self-test.
        report.sections.append(SectionResult(
            name="injection",
            checks=1,
            failures=[
                f"injected defect '{inject}' was NOT detected -- the "
                f"verifier has lost its teeth"
            ],
        ))
    return report
