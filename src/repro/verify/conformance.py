"""Cross-parallelism conformance harness.

The paper's §2/§5 validity argument is that PTD-P "retains strict
optimizer semantics": training under *any* (data, tensor, pipeline,
interleaving) decomposition computes the same losses, gradients, and
parameter updates as serial execution on the same global batch.  This
module makes that claim executable over the whole configuration space
instead of a hand-picked test matrix: it samples random small-model
``(d, t, p, v, b, m, schedule, recompute, ZeRO)`` configurations, trains
a few iterations through the real engine, and compares against the
single-rank baseline at fp64 near-ulp tolerance (the engine is exact;
the only permitted deviation is floating-point summation-order noise
from ring reductions, bounded at rtol 1e-9 for losses and 1e-8 for
parameters -- the same bounds the equivalence tests have always used).

Every failure carries a *seeded repro string*: a ``python -m repro
verify --case ...`` invocation that deterministically reproduces the
exact failing configuration and data.

``hypothesis`` drives the same :func:`run_case` entry point from
``tests/test_verify.py``; this module itself only needs ``random`` so
the CLI works in minimal environments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

import numpy as np

# Tolerances: fp64 exactness up to ring-reduction summation order.
LOSS_RTOL, LOSS_ATOL = 1e-9, 1e-12
PARAM_RTOL, PARAM_ATOL = 1e-8, 1e-11


@dataclass(frozen=True)
class ConformanceCase:
    """One sampled parallel configuration (plus data/weight seed)."""

    p: int = 1
    t: int = 1
    d: int = 1
    v: int = 1
    b: int = 1  # microbatch size
    m: int = 1  # microbatches per pipeline per iteration
    schedule: str = "1f1b"
    recompute: bool = False
    zero: bool = False
    seed: int = 0
    iterations: int = 2

    @property
    def global_batch_size(self) -> int:
        return self.b * self.m * self.d

    def key(self) -> str:
        """Canonical ``k=v,...`` form, accepted by :func:`parse_case`."""
        return (
            f"p={self.p},t={self.t},d={self.d},v={self.v},b={self.b},"
            f"m={self.m},schedule={self.schedule},"
            f"recompute={int(self.recompute)},zero={int(self.zero)},"
            f"seed={self.seed},iterations={self.iterations}"
        )

    @property
    def repro_string(self) -> str:
        return f"python -m repro verify --case {self.key()}"

    def describe(self) -> str:
        extras = []
        if self.recompute:
            extras.append("recompute")
        if self.zero:
            extras.append("zero3")
        suffix = f" [{'+'.join(extras)}]" if extras else ""
        return (
            f"(p={self.p}, t={self.t}, d={self.d}, v={self.v}, b={self.b}, "
            f"m={self.m}, {self.schedule}, seed={self.seed}){suffix}"
        )


def parse_case(text: str) -> ConformanceCase:
    """Parse the ``--case p=2,t=1,...`` CLI form (inverse of ``key``)."""
    bools = {"recompute", "zero"}
    strings = {"schedule"}
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed case entry {part!r}: expected key=value")
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in ConformanceCase.__dataclass_fields__:
            raise ValueError(f"unknown case field {key!r}")
        if key in strings:
            kwargs[key] = value.strip()
        elif key in bools:
            kwargs[key] = bool(int(value))
        else:
            kwargs[key] = int(value)
    case = ConformanceCase(**kwargs)
    _check_case(case)
    return case


def _check_case(case: ConformanceCase) -> None:
    for name in ("p", "t", "d", "v", "b", "m"):
        if getattr(case, name) < 1:
            raise ValueError(f"case field {name} must be >= 1")
    if case.zero and (case.p, case.t, case.v) != (1, 1, 1):
        raise ValueError("ZeRO-3 conformance cases require p=t=v=1")
    if case.v > 1 and case.m % case.p != 0:
        raise ValueError("interleaved cases need m to be a multiple of p")
    if case.iterations < 1:
        raise ValueError("iterations must be >= 1")


def model_for_case(case: ConformanceCase):
    """A tiny GPT whose dimensions satisfy the case's divisibility
    constraints (layers % p*v, heads/ffn/vocab % t)."""
    from repro.config import tiny_test_model

    stages = case.p * case.v
    return tiny_test_model(
        num_layers=max(stages, 2) if max(stages, 2) % stages == 0 else stages,
        hidden_size=16,
        num_attention_heads=4,
        vocab_size=32,
        seq_length=8,
    )


@dataclass
class ConformanceResult:
    case: ConformanceCase
    ok: bool
    failures: list[str] = field(default_factory=list)
    losses_parallel: list[float] = field(default_factory=list)
    losses_baseline: list[float] = field(default_factory=list)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        out = f"{status}  {self.case.describe()}"
        if not self.ok:
            for f in self.failures:
                out += f"\n      {f}"
            out += f"\n      repro: {self.case.repro_string}"
        return out


def _batch(case: ConformanceCase, config) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(case.seed)
    B = case.global_batch_size
    ids = rng.integers(0, config.vocab_size, size=(B, config.seq_length))
    targets = rng.integers(0, config.vocab_size, size=(B, config.seq_length))
    return ids, targets


def _baseline(config, case: ConformanceCase, ids, targets, lr):
    """Single-rank reference: p=t=d=v=1, the whole batch in one
    microbatch -- serial execution in the paper's sense."""
    from repro.config import ParallelConfig
    from repro.parallel import PTDTrainer

    B = case.global_batch_size
    trainer = PTDTrainer(
        config,
        ParallelConfig(microbatch_size=B, global_batch_size=B),
        schedule="1f1b",
        seed=0,
        lr=lr,
    )
    losses = [trainer.train_step(ids, targets) for _ in range(case.iterations)]
    return trainer.gather_state_dict(), losses


def _run_ptd(config, case: ConformanceCase, ids, targets, lr,
             perturb_gradient: float):
    from repro.config import ParallelConfig
    from repro.parallel import PTDTrainer

    parallel = ParallelConfig(
        pipeline_parallel_size=case.p,
        tensor_parallel_size=case.t,
        data_parallel_size=case.d,
        microbatch_size=case.b,
        global_batch_size=case.global_batch_size,
        num_model_chunks=case.v,
    )
    parallel.validate_for_model(config)
    trainer = PTDTrainer(
        config, parallel, schedule=case.schedule, seed=0, lr=lr,
        recompute_activations=case.recompute,
    )
    losses = [trainer.train_step(ids, targets) for _ in range(case.iterations)]
    if perturb_gradient:
        # Model a silently corrupted gradient: the bad update has already
        # landed in one replica's parameters by the time anyone compares.
        p0 = trainer.replicas[0].parameters()[0]
        p0.data.ravel()[0] += perturb_gradient
    replica_params = [r.parameters() for r in trainer.replicas]
    return trainer.gather_state_dict(), losses, replica_params


def _run_zero3(config, case: ConformanceCase, ids, targets, lr):
    """ZeRO-3 run (fully-sharded data parallel; §5.2 baseline)."""
    from repro.nn import GPTModel
    from repro.parallel import Zero3Engine

    model = GPTModel(config, seed=0)
    params = model.parameters()
    engine = Zero3Engine(params, case.d, lr=lr)
    shard_ids = np.split(ids, case.d)
    shard_tgts = np.split(targets, case.d)
    losses = []
    for _ in range(case.iterations):
        engine.gather_params("fwd")
        replica_grads, step_losses = [], []
        for r in range(case.d):
            model.zero_grad()
            engine.gather_params("bwd")
            loss, caches = model.loss(shard_ids[r], shard_tgts[r])
            model.loss_backward(caches)
            replica_grads.append([p.grad.copy() for p in params])
            step_losses.append(loss)
        engine.reduce_and_step(replica_grads)
        losses.append(float(np.mean(step_losses)))
    engine.gather_params("final")
    return model.state_dict(), losses


def run_case(
    case: ConformanceCase, *, perturb_gradient: float = 0.0
) -> ConformanceResult:
    """Train ``case`` and the single-rank baseline; compare everything.

    ``perturb_gradient`` injects a silent gradient corruption into the
    parallel run (mutation testing for the harness itself): a correct
    harness must flag any non-zero perturbation above fp64 noise.
    """
    _check_case(case)
    config = model_for_case(case)
    ids, targets = _batch(case, config)
    lr = 1e-2

    base_state, base_losses = _baseline(config, case, ids, targets, lr)
    replica_params = None
    if case.zero:
        # ZeRO-3 cases use d copies of the global batch per shard split.
        par_state, par_losses = _run_zero3(config, case, ids, targets, lr)
    else:
        par_state, par_losses, replica_params = _run_ptd(
            config, case, ids, targets, lr, perturb_gradient
        )
        if perturb_gradient:
            par_state = None  # regather below, after the perturbation

    failures: list[str] = []

    # 1. per-iteration losses agree with serial execution.
    for i, (got, want) in enumerate(zip(par_losses, base_losses)):
        if not np.isclose(got, want, rtol=LOSS_RTOL, atol=LOSS_ATOL):
            failures.append(
                f"iteration {i} loss {got!r} != baseline {want!r} "
                f"(|diff|={abs(got - want):.3e})"
            )

    # 2. data-parallel replicas hold identical parameters (the averaged
    #    gradient and the optimizer step are shared state).
    if replica_params is not None and len(replica_params) > 1:
        ref = replica_params[0]
        for rep_idx, params in enumerate(replica_params[1:], start=1):
            for p_idx, (a, b) in enumerate(zip(ref, params)):
                if not np.array_equal(a.data, b.data):
                    failures.append(
                        f"replica {rep_idx} parameter #{p_idx} diverged "
                        f"from replica 0 (max "
                        f"|diff|={np.max(np.abs(a.data - b.data)):.3e})"
                    )
                    break
            else:
                continue
            break

    # 3. final parameters match the baseline in serial layout.
    if par_state is None:  # regather after a perturbation landed
        from repro.parallel import PTDTrainer  # noqa: F401  (doc pointer)

        par_state = _regather(config, case, ids, targets, lr,
                              perturb_gradient)
    for name, want in base_state.items():
        if name == "head.tied":
            continue
        got = par_state.get(name)
        if got is None:
            failures.append(f"parallel state is missing parameter {name}")
            continue
        if got.shape != want.shape:
            failures.append(
                f"parameter {name}: shape {got.shape} != {want.shape}"
            )
        elif not np.allclose(got, want, rtol=PARAM_RTOL, atol=PARAM_ATOL):
            failures.append(
                f"parameter {name} deviates from baseline (max "
                f"|diff|={np.max(np.abs(got - want)):.3e})"
            )

    return ConformanceResult(
        case=case,
        ok=not failures,
        failures=failures,
        losses_parallel=[float(x) for x in par_losses],
        losses_baseline=[float(x) for x in base_losses],
    )


def _regather(config, case, ids, targets, lr, perturb_gradient):
    """Re-run the parallel case and gather state *after* perturbation."""
    from repro.config import ParallelConfig
    from repro.parallel import PTDTrainer

    parallel = ParallelConfig(
        pipeline_parallel_size=case.p,
        tensor_parallel_size=case.t,
        data_parallel_size=case.d,
        microbatch_size=case.b,
        global_batch_size=case.global_batch_size,
        num_model_chunks=case.v,
    )
    trainer = PTDTrainer(
        config, parallel, schedule=case.schedule, seed=0, lr=lr,
        recompute_activations=case.recompute,
    )
    for _ in range(case.iterations):
        trainer.train_step(ids, targets)
    p0 = trainer.replicas[0].parameters()[0]
    p0.data.ravel()[0] += perturb_gradient
    return trainer.gather_state_dict()


def sample_cases(n: int, seed: int = 0) -> list[ConformanceCase]:
    """Deterministically sample ``n`` valid configurations.

    Coverage is stratified rather than uniform: every call mixes plain
    DP, TP, PP, interleaved PP, recompute, and ZeRO-3 cases, with the
    composed (p>1, t>1, d>1) corner over-represented -- that corner is
    where scheduling, collectives, and gradient averaging interact.
    """
    rng = random.Random(seed)
    cases: list[ConformanceCase] = []
    while len(cases) < n:
        roll = rng.random()
        if roll < 0.15:
            # ZeRO-3 (fully sharded DP) vs serial.
            case = ConformanceCase(
                d=rng.choice([2, 4]),
                b=rng.choice([1, 2]),
                m=1,
                zero=True,
                schedule="1f1b",
                seed=rng.randrange(10_000),
            )
        else:
            p = rng.choice([1, 2, 2, 4])
            v = rng.choice([1, 2]) if p >= 2 else 1
            t = rng.choice([1, 2])
            d = rng.choice([1, 2])
            if p * t * d > 8:
                continue
            if v > 1:
                schedule = rng.choice(["interleaved", "interleaved-gpipe"])
                m = p * rng.choice([1, 2])
            else:
                schedule = rng.choice(["gpipe", "1f1b", "1f1b"])
                m = rng.choice([1, 2, 4])
            case = ConformanceCase(
                p=p, t=t, d=d, v=v,
                b=rng.choice([1, 2]),
                m=m,
                schedule=schedule,
                recompute=rng.random() < 0.3,
                seed=rng.randrange(10_000),
            )
        cases.append(case)
    return cases
