"""Chaos conformance: recovery must not change what training computes.

The headline guarantee of :mod:`repro.resilience.harness`, made
executable as a ``python -m repro verify`` section:

- **bit-exact resume** -- a run killed at iteration *k* and resumed
  under the same parallel configuration finishes with bit-identical
  per-iteration losses and parameters to an uninterrupted run;
- **corrupted-newest fallback** -- when the newest checkpoint is
  corrupted after commit, recovery falls back to an older verified
  checkpoint and the run is *still* bit-identical (more work re-run,
  same arithmetic);
- **commit safety** -- a save interrupted at any stage (mid-write,
  pre-commit, post-commit) never leaves the ``LATEST`` pointer naming a
  checkpoint that fails integrity verification, and never leaves a
  partial checkpoint at the target path;
- **resharded resume** -- a permanent rank loss reshards onto a
  smaller configuration; the result matches the single-rank reference
  (same trajectory, optimizer reset at the restore point) to fp64
  ring-summation tolerance.

Each check returns a list of human-readable failures (empty = pass)
so the runner can aggregate them like every other section.
"""

from __future__ import annotations

import numpy as np

from .conformance import LOSS_ATOL, LOSS_RTOL, PARAM_ATOL, PARAM_RTOL


def _tiny_model():
    from repro.config import tiny_test_model

    return tiny_test_model(num_layers=2, hidden_size=16,
                           num_attention_heads=4, vocab_size=32,
                           seq_length=8)


def _dp2(batch: int = 4):
    from repro.config import ParallelConfig

    return ParallelConfig(data_parallel_size=2, microbatch_size=1,
                          global_batch_size=batch)


def _compare_bit_exact(report, base_losses, base_state) -> list[str]:
    from repro.resilience import states_bit_equal

    failures = []
    if report.losses != base_losses:
        bad = [i for i, (a, b) in
               enumerate(zip(report.losses, base_losses)) if a != b]
        failures.append(
            f"recovered losses differ from uninterrupted run at "
            f"iterations {bad}"
        )
    if not states_bit_equal(report.final_state, base_state):
        failures.append(
            "recovered final parameters are not bit-identical to the "
            "uninterrupted run"
        )
    return failures


def check_bit_exact_resume(directory: str, *, kill_at: int = 3,
                           total: int = 6, seed: int = 0) -> list[str]:
    """Kill at ``kill_at``; the recovered run must equal the
    uninterrupted run bit for bit."""
    from repro.resilience import (
        ChaosHarness,
        ChaosPlan,
        Kill,
        run_baseline,
    )

    config, parallel = _tiny_model(), _dp2()
    plan = ChaosPlan(kills=(Kill(at_iteration=kill_at),))
    harness = ChaosHarness(
        config, parallel, directory, plan=plan, total_iterations=total,
        checkpoint_every=2, seed=seed, sleep=lambda s: None,
    )
    report = harness.run()
    failures = []
    if report.restarts != 1:
        failures.append(
            f"expected exactly 1 restart, got {report.restarts}"
        )
    base_losses, base_state = run_baseline(
        config, parallel, total_iterations=total, seed=seed
    )
    failures += _compare_bit_exact(report, base_losses, base_state)
    return failures


def check_corrupt_fallback(directory: str, *, corrupt_at: int = 4,
                           kill_at: int = 5, total: int = 8,
                           seed: int = 0) -> list[str]:
    """Corrupt the newest checkpoint, then kill: recovery must skip the
    corrupted snapshot, resume from the older verified one, and still
    finish bit-identical."""
    from repro.parallel.checkpoint import CheckpointStore
    from repro.resilience import (
        ChaosHarness,
        ChaosPlan,
        CorruptCheckpoint,
        Kill,
        run_baseline,
    )

    config, parallel = _tiny_model(), _dp2()
    plan = ChaosPlan(
        kills=(Kill(at_iteration=kill_at),),
        corruptions=(CorruptCheckpoint(at_iteration=corrupt_at),),
    )
    harness = ChaosHarness(
        config, parallel, directory, plan=plan, total_iterations=total,
        checkpoint_every=2, seed=seed, sleep=lambda s: None,
    )
    report = harness.run()
    failures = []
    if report.skipped_checkpoints < 1:
        failures.append(
            "recovery did not skip the corrupted newest checkpoint"
        )
    restored = [r for r in report.records if r.kind == "restore"]
    if not restored or restored[0].at_iteration >= corrupt_at:
        got = restored[0].at_iteration if restored else None
        failures.append(
            f"expected fallback to a checkpoint older than "
            f"{corrupt_at}, restored from {got}"
        )
    base_losses, base_state = run_baseline(
        config, parallel, total_iterations=total, seed=seed
    )
    failures += _compare_bit_exact(report, base_losses, base_state)
    # The store must still resolve LATEST to a verified checkpoint.
    store = CheckpointStore(directory)
    latest = store.latest_iteration()
    if latest is None:
        failures.append("LATEST pointer does not resolve after the run")
    return failures


def check_commit_safety(directory: str, *, seed: int = 0) -> list[str]:
    """Interrupt a commit at every stage; ``LATEST`` must always name a
    checkpoint that passes integrity verification."""
    from repro.config import ParallelConfig
    from repro.parallel import PTDTrainer
    from repro.parallel.checkpoint import (
        CheckpointStore,
        verify_checkpoint,
    )
    from repro.resilience import batch_for_iteration

    config = _tiny_model()
    parallel = ParallelConfig(microbatch_size=2, global_batch_size=4)
    trainer = PTDTrainer(config, parallel, seed=seed, lr=1e-2)

    class _Crash(RuntimeError):
        pass

    crash_stage = {"stage": None}

    def fault(iteration: int, stage: str) -> None:
        if stage == crash_stage["stage"]:
            raise _Crash(stage)

    store = CheckpointStore(directory, keep_last=4, save_fault=fault)
    failures: list[str] = []

    def step() -> None:
        ids, targets = batch_for_iteration(config, 4, seed,
                                           trainer.iteration)
        trainer.train_step(ids, targets)

    step()
    store.save(trainer)  # healthy baseline commit at iteration 1

    for stage in ("write", "pre-commit", "post-commit", "pre-latest"):
        step()
        crash_stage["stage"] = stage
        try:
            store.save(trainer)
        except _Crash:
            pass
        else:
            failures.append(f"injected crash at {stage!r} did not abort")
        crash_stage["stage"] = None
        latest = store.latest_iteration()
        if latest is None:
            failures.append(
                f"crash at {stage!r}: LATEST pointer no longer resolves"
            )
            continue
        try:
            verify_checkpoint(store.path_for(latest))
        except Exception as exc:
            failures.append(
                f"crash at {stage!r}: LATEST names step-{latest} which "
                f"fails verification: {exc}"
            )
        if stage in ("write", "pre-commit"):
            # Nothing may have been published for this iteration.
            import os

            if os.path.exists(store.path_for(trainer.iteration)):
                failures.append(
                    f"crash at {stage!r} left a partial checkpoint at "
                    f"step-{trainer.iteration}"
                )
    return failures


def check_reshard_resume(directory: str, *, kill_at: int = 3,
                         total: int = 6, seed: int = 0) -> list[str]:
    """Permanent rank loss: the resharded resume must match the
    single-rank reference (optimizer reset at the restore point) to
    fp64 tolerance."""
    from repro.resilience import (
        ChaosHarness,
        ChaosPlan,
        Kill,
        run_reset_reference,
    )

    config, parallel = _tiny_model(), _dp2()
    plan = ChaosPlan(kills=(Kill(at_iteration=kill_at, permanent=True),))
    harness = ChaosHarness(
        config, parallel, directory, plan=plan, total_iterations=total,
        checkpoint_every=2, seed=seed, sleep=lambda s: None,
    )
    report = harness.run()
    failures = []
    if not report.resharded:
        failures.append("permanent rank loss did not trigger a reshard")
        return failures
    world = (report.final_parallel.pipeline_parallel_size
             * report.final_parallel.tensor_parallel_size
             * report.final_parallel.data_parallel_size)
    if world >= 2:
        failures.append(
            f"reshard did not shrink the world: still {world} ranks"
        )
    restored = [r for r in report.records if r.kind == "restore"]
    reset_at = restored[0].at_iteration if restored else 0
    ref_losses, ref_state = run_reset_reference(
        config, parallel.global_batch_size, total_iterations=total,
        reset_at=reset_at, seed=seed,
    )
    for i in range(reset_at, total):
        if not np.isclose(report.losses[i], ref_losses[i],
                          rtol=LOSS_RTOL, atol=LOSS_ATOL):
            failures.append(
                f"iteration {i} loss {report.losses[i]!r} deviates from "
                f"the serial-reset reference {ref_losses[i]!r}"
            )
    for name, want in ref_state.items():
        if name == "head.tied":
            continue
        got = report.final_state.get(name)
        if got is None:
            failures.append(f"resharded state is missing {name}")
        elif not np.allclose(got, want, rtol=PARAM_RTOL, atol=PARAM_ATOL):
            failures.append(
                f"parameter {name} deviates from the serial-reset "
                f"reference (max |diff|={np.max(np.abs(got - want)):.3e})"
            )
    return failures


CHAOS_CHECKS = (
    ("bit-exact-resume", check_bit_exact_resume),
    ("corrupt-fallback", check_corrupt_fallback),
    ("commit-safety", check_commit_safety),
    ("reshard-resume", check_reshard_resume),
)


def run_chaos_checks(*, fast: bool = False,
                     seed: int = 0) -> list[tuple[str, list[str]]]:
    """Run every chaos conformance check in its own temp checkpoint
    root; returns ``(name, failures)`` pairs.

    ``fast`` keeps only the two checks the CI smoke needs end-to-end
    coverage from (kill+resume and corrupt+fallback exercise the whole
    recovery path); the full run adds commit-safety and resharding.
    """
    import tempfile

    checks = CHAOS_CHECKS[:2] if fast else CHAOS_CHECKS
    results = []
    for name, check in checks:
        with tempfile.TemporaryDirectory(prefix=f"chaos-{name}-") as tmp:
            results.append((name, check(tmp, seed=seed)))
    return results
