"""Collective sanitizer: cross-rank consistency checking for comm ops.

MegaScale (Jiang et al., 2024) reports that silently mismatched
collectives -- two ranks disagreeing on which collective comes next, or
on its shape/dtype -- are among the costliest failures to debug at
scale, because NCCL either deadlocks or corrupts data without naming
the offending call site.  This module is the executable form of that
lesson for the virtual-rank engine: while a :class:`CollectiveSanitizer`
is active, every primitive in :mod:`repro.comm.primitives` records one
event per participating rank (op name, process group, buffer shape,
dtype), and :meth:`CollectiveSanitizer.check` replays the per-rank
timelines against each other.

The core invariant (the one real NCCL requires for progress) is
*pairwise order consistency*: for any two ranks a and b, the
subsequence of operations whose group contains both a and b must be
identical -- same ops, same groups, same shapes, same dtypes, in the
same order -- on a's timeline and on b's.  A divergence means a would
post a collective b never matches: a deadlock (order/op mismatch) or
silent corruption (shape/dtype mismatch) on real ranks.

The hook follows the :mod:`repro.obs.tracer` pattern: a process-global
stack of active sanitizers, a module-level :func:`record_collective`
entry point that is a no-op (one truthiness check) when no sanitizer is
active, so the instrumented primitives stay effectively free.

This module intentionally imports nothing from the rest of ``repro`` so
the comm substrate can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CollectiveEvent:
    """One rank's view of one collective (or p2p) call."""

    op: str
    group: tuple[int, ...]
    shape: tuple[int, ...]
    dtype: str
    tag: str = ""

    def describe(self) -> str:
        return (
            f"{self.op}(group={list(self.group)}, shape={self.shape}, "
            f"dtype={self.dtype}{', tag=' + self.tag if self.tag else ''})"
        )


@dataclass(frozen=True)
class CollectiveMismatch:
    """A cross-rank disagreement found by :meth:`CollectiveSanitizer.check`.

    ``position`` is the index into the *projected* (common-group)
    subsequence of the two ranks at which they first diverge.
    """

    rank_a: int
    rank_b: int
    position: int
    event_a: CollectiveEvent | None
    event_b: CollectiveEvent | None
    reason: str

    def describe(self) -> str:
        a = self.event_a.describe() if self.event_a else "<nothing>"
        b = self.event_b.describe() if self.event_b else "<nothing>"
        return (
            f"ranks {self.rank_a}/{self.rank_b} diverge at shared call "
            f"#{self.position} ({self.reason}):\n"
            f"    rank {self.rank_a} posts {a}\n"
            f"    rank {self.rank_b} posts {b}"
        )


class SanitizerError(RuntimeError):
    """Raised by :meth:`CollectiveSanitizer.assert_clean` on mismatches."""


@dataclass
class CollectiveSanitizer:
    """Records per-rank collective timelines and checks consistency.

    Use as a context manager::

        with CollectiveSanitizer() as san:
            trainer.train_step(ids, targets)
        san.assert_clean()

    While active, the engine's group-invoked collectives record one
    identical event per participating rank.  Tests (and the mutation
    injector in ``python -m repro verify``) can additionally call
    :meth:`record_rank_event` to model a *single* rank going out of
    step, which is exactly the failure mode the checker must flag.
    """

    timelines: dict[int, list[CollectiveEvent]] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------
    def record(self, op: str, ranks, shape, dtype, tag: str = "") -> None:
        """Record one group-wide call: every rank sees the same event."""
        event = CollectiveEvent(
            op=op,
            group=tuple(int(r) for r in ranks),
            shape=tuple(int(s) for s in shape),
            dtype=str(dtype),
            tag=tag,
        )
        for r in event.group:
            self.timelines.setdefault(r, []).append(event)

    def record_rank_event(
        self, rank: int, op: str, ranks, shape, dtype, tag: str = ""
    ) -> None:
        """Record one *single-rank* view of a call (fault injection)."""
        event = CollectiveEvent(
            op=op,
            group=tuple(int(r) for r in ranks),
            shape=tuple(int(s) for s in shape),
            dtype=str(dtype),
            tag=tag,
        )
        self.timelines.setdefault(int(rank), []).append(event)

    # -- checking -----------------------------------------------------------
    def check(self) -> list[CollectiveMismatch]:
        """Pairwise order/shape/dtype consistency over all rank pairs."""
        mismatches: list[CollectiveMismatch] = []
        ranks = sorted(self.timelines)
        for i, a in enumerate(ranks):
            for b in ranks[i + 1 :]:
                mm = self._check_pair(a, b)
                if mm is not None:
                    mismatches.append(mm)
        return mismatches

    def _projected(self, rank: int, other: int) -> list[CollectiveEvent]:
        """``rank``'s timeline restricted to calls whose group contains
        ``other`` too -- the calls the pair must agree on."""
        return [e for e in self.timelines.get(rank, []) if other in e.group]

    def _check_pair(self, a: int, b: int) -> CollectiveMismatch | None:
        seq_a = self._projected(a, b)
        seq_b = self._projected(b, a)
        for pos, (ea, eb) in enumerate(zip(seq_a, seq_b)):
            if ea == eb:
                continue
            if ea.op != eb.op or ea.group != eb.group:
                reason = "op/group order mismatch (deadlock on real ranks)"
            elif ea.shape != eb.shape:
                reason = "shape mismatch (silent corruption on real ranks)"
            elif ea.dtype != eb.dtype:
                reason = "dtype mismatch (silent corruption on real ranks)"
            else:
                reason = "tag mismatch"
            return CollectiveMismatch(a, b, pos, ea, eb, reason)
        if len(seq_a) != len(seq_b):
            pos = min(len(seq_a), len(seq_b))
            ea = seq_a[pos] if pos < len(seq_a) else None
            eb = seq_b[pos] if pos < len(seq_b) else None
            return CollectiveMismatch(
                a, b, pos, ea, eb,
                "unmatched collective (one rank blocks forever)",
            )
        return None

    def assert_clean(self) -> None:
        mismatches = self.check()
        if mismatches:
            raise SanitizerError(
                "collective sanitizer found cross-rank mismatches:\n  "
                + "\n  ".join(m.describe() for m in mismatches)
            )

    @property
    def num_events(self) -> int:
        return sum(len(t) for t in self.timelines.values())

    # -- activation ---------------------------------------------------------
    def __enter__(self) -> "CollectiveSanitizer":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> None:
        # Pop by identity (same rationale as the tracer/FlopMeter stacks:
        # two empty sanitizers compare equal as dataclasses).
        for i in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[i] is self:
                del _ACTIVE[i]
                break


_ACTIVE: list[CollectiveSanitizer] = []


def current_sanitizer() -> CollectiveSanitizer | None:
    """Innermost active sanitizer (None when sanitizing is off)."""
    return _ACTIVE[-1] if _ACTIVE else None


def record_collective(op: str, ranks, shape, dtype, tag: str = "") -> None:
    """Report one group collective to every active sanitizer.

    This is the hook :mod:`repro.comm.primitives` calls; a single
    truthiness check when no sanitizer is active.
    """
    if not _ACTIVE:
        return
    for san in _ACTIVE:
        san.record(op, ranks, shape, dtype, tag)
