"""Static validation of pipeline schedules (races, deadlocks, memory).

The schedule IR is the repo's load-bearing artifact: the same per-rank
op lists are executed numerically, timed by the simulator, and argued
about analytically.  This module checks, *before* anything runs, that a
schedule is safe on real ranks:

- **completeness** -- every rank runs exactly one F and one B per
  (microbatch, chunk); anything else breaks strict optimizer semantics
  (a microbatch's gradient contributing zero or twice).
- **local races** -- a backward op placed before its own forward on the
  same rank consumes activations that were never stashed.
- **global deadlock** -- the per-rank orders admit no legal
  interleaving under the §2.2 cross-stage dataflow.
- **p2p matching** -- per directed rank pair, the order in which the
  sender emits stage-boundary tensors must equal the order in which the
  receiver consumes them.  The cooperative executor tolerates
  out-of-order channels (its inbox is keyed by (microbatch, stage)),
  but real blocking send/recv pairs posted out of order deadlock -- the
  dominant MegaScale failure mode this subsystem exists to catch.
- **memory bound** -- peak in-flight microbatches per rank must respect
  the schedule family's §2.2.1/§2.2.2 activation-memory argument
  (GPipe: m per chunk; 1F1B: p; interleaved 1F1B: warmup + 1).

All checks return :class:`ScheduleViolation` records instead of raising
so ``python -m repro verify`` can print a structured report;
:func:`assert_valid_schedule` wraps them for call sites that want an
exception.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.schedule import OpKind, PipelineSchedule, ScheduleOp
from repro.schedule.execution import OpInstance, dependencies, resolve


@dataclass(frozen=True)
class ScheduleViolation:
    """One rule violation found in a schedule."""

    check: str  # "completeness" | "race" | "deadlock" | "p2p" | "memory"
    rank: int  # offending pipeline rank (-1 for schedule-wide)
    message: str

    def describe(self) -> str:
        where = f"rank {self.rank}" if self.rank >= 0 else "schedule"
        return f"[{self.check}] {where}: {self.message}"


class ScheduleViolationError(ValueError):
    """Raised by :func:`assert_valid_schedule`."""

    def __init__(self, schedule: PipelineSchedule,
                 violations: list[ScheduleViolation]):
        self.violations = violations
        super().__init__(
            f"schedule {schedule.describe()} failed validation:\n  "
            + "\n  ".join(v.describe() for v in violations)
        )


# -- individual checks -------------------------------------------------------

def check_completeness(schedule: PipelineSchedule) -> list[ScheduleViolation]:
    """Exactly one F and one B per (microbatch, chunk) on every rank."""
    out: list[ScheduleViolation] = []
    want = {
        (kind, mb, c)
        for kind in OpKind
        for mb in range(schedule.num_microbatches)
        for c in range(schedule.num_chunks)
    }
    for rank, rank_ops in enumerate(schedule.ops):
        seen: dict[tuple, int] = {}
        for op in rank_ops:
            key = (op.kind, op.microbatch, op.chunk)
            seen[key] = seen.get(key, 0) + 1
        for key, n in seen.items():
            if n > 1:
                kind, mb, c = key
                out.append(ScheduleViolation(
                    "completeness", rank,
                    f"{kind.value}{mb}.{c} appears {n} times",
                ))
            if key not in want:
                kind, mb, c = key
                out.append(ScheduleViolation(
                    "completeness", rank,
                    f"{kind.value}{mb}.{c} is outside the (m={schedule.num_microbatches}, "
                    f"v={schedule.num_chunks}) iteration",
                ))
        for key in sorted(want - set(seen), key=lambda k: (k[1], k[2], k[0].value)):
            kind, mb, c = key
            out.append(ScheduleViolation(
                "completeness", rank, f"missing {kind.value}{mb}.{c}",
            ))
    return out


def check_local_races(schedule: PipelineSchedule) -> list[ScheduleViolation]:
    """A backward before its own forward consumes unstashed activations."""
    out: list[ScheduleViolation] = []
    for rank, rank_ops in enumerate(schedule.ops):
        forwarded: set[tuple[int, int]] = set()
        for pos, op in enumerate(rank_ops):
            key = (op.microbatch, op.chunk)
            if op.kind is OpKind.FORWARD:
                forwarded.add(key)
            elif key not in forwarded:
                out.append(ScheduleViolation(
                    "race", rank,
                    f"op #{pos} ({op}) consumes activations of microbatch "
                    f"{op.microbatch} chunk {op.chunk} before its forward ran",
                ))
    return out


def check_deadlock(schedule: PipelineSchedule) -> list[ScheduleViolation]:
    """Cooperative pointer-scan: per-rank orders must admit a legal
    global interleaving of the §2.2 dataflow."""
    pointers = [0] * schedule.num_stages
    done: set[OpInstance] = set()
    total = sum(len(r) for r in schedule.ops)
    completed = 0
    while completed < total:
        progressed = False
        for rank in range(schedule.num_stages):
            while pointers[rank] < len(schedule.ops[rank]):
                op = schedule.ops[rank][pointers[rank]]
                inst = resolve(schedule, rank, op)
                if any(dep not in done for dep in dependencies(schedule, inst)):
                    break
                done.add(inst)
                pointers[rank] += 1
                completed += 1
                progressed = True
        if not progressed:
            out = []
            for rank in range(schedule.num_stages):
                if pointers[rank] < len(schedule.ops[rank]):
                    op = schedule.ops[rank][pointers[rank]]
                    inst = resolve(schedule, rank, op)
                    missing = [
                        d for d in dependencies(schedule, inst)
                        if d not in done
                    ]
                    out.append(ScheduleViolation(
                        "deadlock", rank,
                        f"{inst} blocked forever waiting on {missing[0]}",
                    ))
            return out
    return []


def _p2p_messages(
    schedule: PipelineSchedule,
) -> dict[tuple[int, int], tuple[list[tuple], list[tuple]]]:
    """Per directed channel (src_rank, dst_rank): (send order, recv order).

    A message is identified by the dependency edge it carries:
    ``("act", mb, producer_stage)`` for a forward activation,
    ``("grad", mb, producer_stage)`` for a backward input-gradient.
    Sends are emitted in the producer rank's program order, recvs are
    posted in the consumer rank's program order -- exactly how an SPMD
    runtime with blocking per-pair channels would order them.
    """
    p = schedule.num_stages
    channels: dict[tuple[int, int], tuple[list[tuple], list[tuple]]] = {}

    def channel(src: int, dst: int) -> tuple[list[tuple], list[tuple]]:
        return channels.setdefault((src, dst), ([], []))

    last = schedule.total_stages - 1
    for rank in range(p):
        for op in schedule.ops[rank]:
            stage = schedule.global_stage(rank, op.chunk)
            if op.kind is OpKind.FORWARD:
                # Send activations to the next stage's rank.
                if stage < last and (stage + 1) % p != rank:
                    channel(rank, (stage + 1) % p)[0].append(
                        ("act", op.microbatch, stage)
                    )
                # Receive activations from the previous stage's rank.
                if stage > 0 and (stage - 1) % p != rank:
                    channel((stage - 1) % p, rank)[1].append(
                        ("act", op.microbatch, stage - 1)
                    )
            else:
                # Send input-gradients to the previous stage's rank.
                if stage > 0 and (stage - 1) % p != rank:
                    channel(rank, (stage - 1) % p)[0].append(
                        ("grad", op.microbatch, stage)
                    )
                # Receive gradients from the next stage's rank.
                if stage < last and (stage + 1) % p != rank:
                    channel((stage + 1) % p, rank)[1].append(
                        ("grad", op.microbatch, stage + 1)
                    )
    return channels


def check_p2p_matching(schedule: PipelineSchedule) -> list[ScheduleViolation]:
    """Send/recv sequences must match per directed rank pair.

    An unmatched message (sent but never received, or awaited but never
    sent) blocks one endpoint forever; a reordered pair deadlocks
    blocking channels.  Both are reported with the first offending
    message.
    """
    out: list[ScheduleViolation] = []
    for (src, dst), (sends, recvs) in sorted(_p2p_messages(schedule).items()):
        for pos, (s, r) in enumerate(zip(sends, recvs)):
            if s != r:
                out.append(ScheduleViolation(
                    "p2p", src,
                    f"channel {src}->{dst} message #{pos}: sender posts "
                    f"{s} but receiver expects {r} (blocking p2p deadlock)",
                ))
                break
        else:
            if len(sends) != len(recvs):
                pos = min(len(sends), len(recvs))
                if len(sends) > len(recvs):
                    msg = (f"channel {src}->{dst}: send #{pos} {sends[pos]} "
                           "is never received")
                else:
                    msg = (f"channel {src}->{dst}: recv #{pos} {recvs[pos]} "
                           "is never sent")
                out.append(ScheduleViolation("p2p", src, msg))
    return out


def in_flight_bound(schedule: PipelineSchedule, rank: int) -> int:
    """Analytic peak-in-flight-microbatch bound for ``rank`` (§2.2).

    GPipe families stash every (microbatch, chunk) activation: bound
    ``m * v``.  1F1B admits at most its warm-up depth plus the one
    microbatch in flight during steady state: ``min(p - rank, m)``
    non-interleaved, ``min(2(p-rank-1) + (v-1)p + 1, m v)`` interleaved
    (the §2.2.2 warm-up length).  Unknown schedule families fall back
    to the universal ``m * v`` (only that many forwards exist).
    """
    p, m, v = schedule.num_stages, schedule.num_microbatches, schedule.num_chunks
    if schedule.name == "1f1b":
        return min(p - rank, m)
    if schedule.name == "interleaved":
        if m == p:
            return m * v  # all-warm-up degenerate case
        return min(2 * (p - rank - 1) + (v - 1) * p + 1, m * v)
    return m * v


def check_memory_bound(schedule: PipelineSchedule) -> list[ScheduleViolation]:
    """Peak stashed activations per rank <= the schedule family's bound."""
    out: list[ScheduleViolation] = []
    for rank in range(schedule.num_stages):
        peak = schedule.max_in_flight_microbatches(rank)
        bound = in_flight_bound(schedule, rank)
        if peak > bound:
            out.append(ScheduleViolation(
                "memory", rank,
                f"peak in-flight microbatches {peak} exceeds the "
                f"{schedule.name} bound {bound}",
            ))
    return out


# -- aggregation -------------------------------------------------------------

def validate_schedule(schedule: PipelineSchedule) -> list[ScheduleViolation]:
    """Run every static check; empty list means the schedule is valid.

    Dependency-order checks (deadlock, p2p) only run on complete,
    race-free schedules -- an incomplete schedule produces misleading
    downstream diagnostics otherwise.
    """
    violations = check_completeness(schedule) + check_local_races(schedule)
    violations += check_memory_bound(schedule)
    if not violations:
        violations += check_deadlock(schedule)
        violations += check_p2p_matching(schedule)
    return violations


def assert_valid_schedule(schedule: PipelineSchedule) -> None:
    violations = validate_schedule(schedule)
    if violations:
        raise ScheduleViolationError(schedule, violations)


def generator_grid(fast: bool = False) -> list[tuple[str, int, int, int]]:
    """(name, p, m, v) combinations covering every shipped generator."""
    if fast:
        grid = [
            ("gpipe", 2, 4, 1),
            ("1f1b", 4, 8, 1),
            ("interleaved", 2, 4, 2),
            ("interleaved-gpipe", 2, 4, 2),
        ]
    else:
        grid = [("gpipe", p, m, 1)
                for p in (1, 2, 4) for m in (1, 2, 4, 8)]
        grid += [("1f1b", p, m, 1)
                 for p in (1, 2, 4, 8) for m in (1, 2, 4, 8, 16)]
        grid += [("interleaved", p, m, v)
                 for p in (2, 4) for mult in (1, 2, 4) for v in (2, 3)
                 for m in (p * mult,)]
        grid += [("interleaved-gpipe", p, m, v)
                 for p in (2, 4) for mult in (1, 2) for v in (2, 3)
                 for m in (p * mult,)]
    return grid


def check_all_generators(
    fast: bool = False,
) -> dict[tuple[str, int, int, int], list[ScheduleViolation]]:
    """Validate every shipped generator across a (p, m, v) grid.

    Returns violations per configuration (all empty when healthy).
    """
    from repro.schedule import make_schedule

    out: dict[tuple[str, int, int, int], list[ScheduleViolation]] = {}
    for name, p, m, v in generator_grid(fast):
        schedule = make_schedule(name, p, m, v)
        out[(name, p, m, v)] = validate_schedule(schedule)
    return out


# -- JSON (de)serialization for fixtures -------------------------------------

def schedule_to_json(schedule: PipelineSchedule) -> str:
    """Serialize a schedule for on-disk fixtures (CI corpus, CLI input)."""
    return json.dumps({
        "name": schedule.name,
        "num_stages": schedule.num_stages,
        "num_microbatches": schedule.num_microbatches,
        "num_chunks": schedule.num_chunks,
        "ops": [
            [[op.kind.value, op.microbatch, op.chunk] for op in rank_ops]
            for rank_ops in schedule.ops
        ],
    })


def schedule_from_json(text: str) -> PipelineSchedule:
    """Inverse of :func:`schedule_to_json`; raises ``ValueError`` on
    malformed input (the CLI maps that to a clean ``error:`` message)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"schedule JSON is not valid JSON: {exc}") from exc
    try:
        kinds = {k.value: k for k in OpKind}
        ops = tuple(
            tuple(
                ScheduleOp(kinds[kind], int(mb), int(chunk))
                for kind, mb, chunk in rank_ops
            )
            for rank_ops in data["ops"]
        )
        return PipelineSchedule(
            name=str(data["name"]),
            num_stages=int(data["num_stages"]),
            num_microbatches=int(data["num_microbatches"]),
            num_chunks=int(data["num_chunks"]),
            ops=ops,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed schedule JSON: {exc}") from exc
