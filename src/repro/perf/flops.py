"""FLOP and training-time arithmetic (eqs. 2-4, §5.1, appendix)."""

from __future__ import annotations

from repro.config import GPTConfig

SECONDS_PER_DAY = 86400.0


def parameters(config: GPTConfig) -> int:
    """Eq. (2) parameter count."""
    return config.num_parameters()


def flops_per_iteration(config: GPTConfig, batch_size: int, *,
                        with_recompute: bool = True) -> int:
    """Eq. (3) FLOPs per training iteration."""
    return config.flops_per_iteration(batch_size, with_recompute=with_recompute)


def iterations_for_tokens(tokens: float, batch_size: int, seq_length: int) -> float:
    """§5.1: ``I = T / (B s)``."""
    if tokens <= 0 or batch_size < 1 or seq_length < 1:
        raise ValueError("tokens, batch_size, seq_length must be positive")
    return tokens / (batch_size * seq_length)


def training_time_days(
    num_parameters: float,
    tokens: float,
    num_gpus: int,
    achieved_flops_per_gpu: float,
) -> float:
    """Eq. (4): end-to-end training time ~= 8 T P / (n X), in days.

    The approximation holds when 6h >> s, 16lh >> V + s, 12lh >> V
    (true for all Table-1 configurations).
    """
    if num_parameters <= 0 or tokens <= 0:
        raise ValueError("num_parameters and tokens must be positive")
    if num_gpus < 1 or achieved_flops_per_gpu <= 0:
        raise ValueError("num_gpus and achieved_flops_per_gpu must be positive")
    seconds = 8 * tokens * num_parameters / (num_gpus * achieved_flops_per_gpu)
    return seconds / SECONDS_PER_DAY


def training_time_days_exact(
    config: GPTConfig,
    tokens: float,
    batch_size: int,
    num_gpus: int,
    achieved_flops_per_gpu: float,
) -> float:
    """Training time from the exact eq. (3) FLOPs instead of eq. (4)."""
    iters = iterations_for_tokens(tokens, batch_size, config.seq_length)
    per_iter = config.flops_per_iteration(batch_size)
    seconds = iters * per_iter / (num_gpus * achieved_flops_per_gpu)
    return seconds / SECONDS_PER_DAY
