"""Analytical performance models: FLOPs, memory, microbatch, heuristics."""

from .flops import (
    flops_per_iteration,
    iterations_for_tokens,
    parameters,
    training_time_days,
    training_time_days_exact,
)
from .analytic_time import AnalyticEstimate, estimate_iteration
from .autotune import ScoredConfig, autotune, enumerate_configs, heuristic_gap
from .heuristics import suggest_parallel_config
from .layer_costs import (
    LayerCost,
    StageCost,
    embedding_cost,
    logit_layer_cost,
    stage_compute_cost,
    transformer_layer_cost,
    transformer_layer_elementwise,
    transformer_layer_gemms,
)
from .memory import (
    MODEL_STATE_BYTES_PER_PARAM,
    MemoryFootprint,
    activation_bytes_per_layer,
    checkpointed_memory,
    fits_in_memory,
    in_flight_microbatches,
    memory_footprint,
    optimal_checkpoint_count,
    parameters_per_rank,
    stage_input_bytes,
)
from .microbatch import (
    MicrobatchPoint,
    batch_time_eq1,
    microbatch_times,
    optimal_microbatch_size,
    sweep_microbatch_sizes,
)

__all__ = [
    "parameters",
    "flops_per_iteration",
    "iterations_for_tokens",
    "training_time_days",
    "training_time_days_exact",
    "suggest_parallel_config",
    "AnalyticEstimate",
    "estimate_iteration",
    "ScoredConfig",
    "autotune",
    "enumerate_configs",
    "heuristic_gap",
    "LayerCost",
    "StageCost",
    "transformer_layer_gemms",
    "transformer_layer_elementwise",
    "transformer_layer_cost",
    "logit_layer_cost",
    "embedding_cost",
    "stage_compute_cost",
    "MODEL_STATE_BYTES_PER_PARAM",
    "MemoryFootprint",
    "activation_bytes_per_layer",
    "stage_input_bytes",
    "in_flight_microbatches",
    "memory_footprint",
    "fits_in_memory",
    "parameters_per_rank",
    "optimal_checkpoint_count",
    "checkpointed_memory",
    "MicrobatchPoint",
    "batch_time_eq1",
    "microbatch_times",
    "sweep_microbatch_sizes",
    "optimal_microbatch_size",
]
