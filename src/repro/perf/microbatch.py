"""Microbatch-size analysis (§3.4, Figures 7, 8, 16; Takeaway #3).

Equation (1): for a parallel configuration (p, t, d) and per-replica
batch ``b' = B/d``, the batch processing time (ignoring communication)
is

    ( b'/b + p - 1 ) * ( t_f(b) + t_b(b) )

``t_f``/``t_b`` come from the roofline kernel model, so the tension the
paper describes -- larger b raises arithmetic intensity but shrinks the
number of microbatches m and inflates the pipeline bubble -- emerges
from the same machinery the simulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPTConfig
from repro.hardware import ComputeModel

from .layer_costs import stage_compute_cost


def microbatch_times(
    compute: ComputeModel,
    config: GPTConfig,
    b: int,
    *,
    tensor_parallel_size: int = 1,
    layers: int | None = None,
    fused: bool = True,
    recompute: bool = True,
) -> tuple[float, float]:
    """(t_f(b), t_b(b)) for one pipeline stage of ``layers`` layers."""
    layers = layers if layers is not None else config.num_layers
    cost = stage_compute_cost(
        compute, config, layers, b, tensor_parallel_size,
        fused=fused, recompute=recompute,
    )
    return cost.forward, cost.backward


def batch_time_eq1(
    b: int, b_prime: int, p: int, t_f: float, t_b: float
) -> float:
    """Equation (1): ``(b'/b + p - 1)(t_f + t_b)``."""
    if b < 1 or b_prime < 1 or p < 1:
        raise ValueError("b, b', p must be >= 1")
    if b_prime % b != 0:
        raise ValueError(f"b={b} must divide b'={b_prime}")
    return (b_prime / b + p - 1) * (t_f + t_b)


@dataclass(frozen=True)
class MicrobatchPoint:
    """One candidate microbatch size and its estimated performance."""

    microbatch_size: int
    batch_time: float
    throughput: float  # sequences / second
    t_f: float
    t_b: float


def sweep_microbatch_sizes(
    compute: ComputeModel,
    config: GPTConfig,
    *,
    p: int,
    t: int = 1,
    b_prime: int,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16),
    fused: bool = True,
    recompute: bool = True,
) -> list[MicrobatchPoint]:
    """Evaluate eq. (1) over candidate microbatch sizes.

    ``t_f``/``t_b`` are per-stage times: the whole model's forward /
    backward time divided by p (eq. (1) does not require an integral
    number of layers per stage -- the paper applies it to a 4-layer
    model with p = 8 in Figure 8).
    """
    points = []
    for b in candidates:
        if b_prime % b != 0:
            continue
        t_f_model, t_b_model = microbatch_times(
            compute, config, b, tensor_parallel_size=t,
            layers=config.num_layers, fused=fused, recompute=recompute,
        )
        t_f, t_b = t_f_model / p, t_b_model / p
        bt = batch_time_eq1(b, b_prime, p, t_f, t_b)
        points.append(
            MicrobatchPoint(
                microbatch_size=b,
                batch_time=bt,
                throughput=b_prime / bt,
                t_f=t_f,
                t_b=t_b,
            )
        )
    if not points:
        raise ValueError("no candidate microbatch size divides b'")
    return points


def optimal_microbatch_size(
    compute: ComputeModel,
    config: GPTConfig,
    *,
    p: int,
    t: int = 1,
    b_prime: int,
    candidates: tuple[int, ...] = (1, 2, 4, 8, 16),
    fused: bool = True,
    recompute: bool = True,
) -> MicrobatchPoint:
    """The highest-throughput candidate (Takeaway #3's recommendation)."""
    points = sweep_microbatch_sizes(
        compute, config, p=p, t=t, b_prime=b_prime,
        candidates=candidates, fused=fused, recompute=recompute,
    )
    return max(points, key=lambda pt: pt.throughput)
