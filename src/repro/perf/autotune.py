"""Exhaustive parallel-configuration search over the simulator.

The paper explicitly does *not* auto-explore the parallelism search
space ("we suggest heuristics that we found work well in practice",
§1), deferring to FlexFlow/PipeDream/DAPPLE-style planners.  This module
implements that deferred planner as an extension: enumerate every valid
(t, p, d, b, schedule, v) for a model and GPU budget, filter by the
memory model, time each candidate with the discrete-event simulator, and
rank by throughput.

It doubles as validation of the paper's Takeaways: the ablation bench
(`benchmarks/bench_autotune.py`) checks that the Takeaway-based
heuristic configuration lands within a few percent of the exhaustive
optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.config import GPTConfig, ParallelConfig
from repro.hardware import NodeSpec, dgx_a100

from .memory import fits_in_memory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import SimOptions, SimulationResult
else:  # repro.sim imports repro.perf.layer_costs; import it lazily to
    # avoid a package-initialization cycle.
    SimOptions = SimulationResult = None


@dataclass(frozen=True)
class ScoredConfig:
    """One candidate configuration with its simulated performance."""

    parallel: ParallelConfig
    options: "SimOptions"
    result: "SimulationResult"

    @property
    def tflops_per_gpu(self) -> float:
        return self.result.tflops_per_gpu

    def describe(self) -> str:
        return (
            f"{self.parallel.describe()} sched={self.options.schedule_name} "
            f"-> {self.tflops_per_gpu:.1f} Tflop/s/GPU"
        )


def _divisors(n: int) -> list[int]:
    return [x for x in range(1, n + 1) if n % x == 0]


def enumerate_configs(
    model: GPTConfig,
    num_gpus: int,
    global_batch_size: int,
    *,
    node: NodeSpec | None = None,
    microbatch_candidates: tuple[int, ...] = (1, 2, 4, 8),
    chunk_candidates: tuple[int, ...] = (1, 2),
    max_tensor_parallel: int | None = None,
    recompute: bool = True,
) -> Iterator[tuple[ParallelConfig, "SimOptions"]]:
    """Yield every valid, memory-feasible candidate configuration."""
    from repro.sim import SimOptions

    node = node or dgx_a100()
    t_cap = max_tensor_parallel or num_gpus
    for t in _divisors(num_gpus):
        if t > t_cap:
            continue
        if (
            model.num_attention_heads % t
            or model.ffn_hidden_size % t
            or model.vocab_size % t
        ):
            continue
        for p in _divisors(num_gpus // t):
            d = num_gpus // (t * p)
            if global_batch_size % d:
                continue
            for v in chunk_candidates:
                if model.num_layers % (p * v):
                    continue
                if v > 1 and p < 2:
                    continue
                for b in microbatch_candidates:
                    b_prime = global_batch_size // d
                    if b_prime % b:
                        continue
                    m = b_prime // b
                    if v > 1 and m % p:
                        continue
                    try:
                        parallel = ParallelConfig(
                            pipeline_parallel_size=p,
                            tensor_parallel_size=t,
                            data_parallel_size=d,
                            microbatch_size=b,
                            global_batch_size=global_batch_size,
                            num_model_chunks=v,
                        )
                    except ValueError:
                        continue
                    schedule = "interleaved" if v > 1 else "1f1b"
                    if not fits_in_memory(
                        model, parallel, node.device,
                        schedule_name=schedule, recompute=recompute,
                    ):
                        continue
                    yield parallel, SimOptions(
                        schedule_name=schedule,
                        recompute_activations=recompute,
                    )


def autotune(
    model: GPTConfig,
    num_gpus: int,
    global_batch_size: int,
    *,
    node: NodeSpec | None = None,
    top_k: int = 5,
    **enumerate_kwargs,
) -> list[ScoredConfig]:
    """Search every feasible configuration; return the best ``top_k``.

    Raises ``ValueError`` if nothing fits device memory.
    """
    from repro.sim import simulate_iteration

    node = node or dgx_a100()
    scored: list[ScoredConfig] = []
    for parallel, options in enumerate_configs(
        model, num_gpus, global_batch_size, node=node, **enumerate_kwargs
    ):
        result = simulate_iteration(model, parallel, options=options, node=node)
        scored.append(ScoredConfig(parallel, options, result))
    if not scored:
        raise ValueError(
            f"no feasible configuration of {num_gpus} GPUs for "
            f"{model.name or 'the model'}"
        )
    scored.sort(key=lambda s: s.tflops_per_gpu, reverse=True)
    return scored[:top_k]


def heuristic_gap(
    model: GPTConfig,
    num_gpus: int,
    global_batch_size: int,
    *,
    node: NodeSpec | None = None,
    **enumerate_kwargs,
) -> tuple[float, ScoredConfig, "SimulationResult"]:
    """How far the Takeaway heuristic is from the exhaustive optimum.

    Returns (relative gap in [0, ...), best scored config, heuristic's
    simulation result).  Gap 0.05 means the heuristic achieves 95% of
    the exhaustive best throughput.
    """
    from repro.sim import SimOptions, simulate_iteration

    from .heuristics import suggest_parallel_config

    node = node or dgx_a100()
    best = autotune(
        model, num_gpus, global_batch_size, node=node, top_k=1,
        **enumerate_kwargs,
    )[0]
    heuristic = suggest_parallel_config(
        model, num_gpus, global_batch_size, node=node
    )
    h_result = simulate_iteration(
        model, heuristic, options=SimOptions(), node=node
    )
    gap = 1.0 - h_result.tflops_per_gpu / best.tflops_per_gpu
    return gap, best, h_result
