"""GPU memory-footprint model (§3.3 Takeaway #2, §3.5, Figure 17).

Accounts, per GPU, for:

- **model state**: fp16 weights + fp32 master weights + fp32 Adam
  moments + gradients, for the parameters of this rank's model shard
  (``~P / (p t)`` of the model);
- **activations**: stashed per in-flight microbatch per layer.  Without
  recomputation a transformer layer stores
  ``s b h (10 + 24/t) + 5 a s^2 b / t`` bytes at fp16 (LayerNorm
  outputs, QKV, attention scores/probabilities, GeLU input, etc.);
  with full recomputation only the ``2 s b h`` stage-input bytes
  persist, at the cost of the extra forward pass;
- the in-flight microbatch count, which is a property of the pipeline
  schedule (``m`` for GPipe, ``min(p, m)`` for 1F1B, §2.2.1).

Also implements §3.5's optimal checkpoint count
``c* = sqrt(l (A_int / A_inp))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import GPTConfig, ParallelConfig
from repro.hardware import DeviceSpec


#: bytes per parameter of optimizer+weight state with mixed precision:
#: fp16 weight (2) + fp16 grad (2) + fp32 master (4) + Adam m, v (4+4).
MODEL_STATE_BYTES_PER_PARAM = 16


def activation_bytes_per_layer(
    b: int, s: int, h: int, a: int, t: int = 1, *, dtype_size: int = 2,
    sequence_parallel: bool = False,
) -> int:
    """Stashed activation bytes for one microbatch through one layer.

    The ``s b h (10 + 24/t) + 5 a s^2 b / t`` accounting (at fp16) from
    the Megatron line of work: input/LN outputs and residuals are
    replicated across tensor ranks (the ``10``), QKV/GeLU intermediates
    are sharded (the ``24/t``), attention score/probability matrices are
    sharded by head (the ``5 a s^2 b / t``, which contains dropout masks
    at 1 byte -- folded into the coefficient).

    ``sequence_parallel`` models the activation-partitioning extension
    §3.5 points to (ZeRO's activation partitioning / Megatron's later
    sequence parallelism): the replicated ``10 s b h`` term is sharded
    along the sequence dimension across the ``t`` tensor ranks, making
    the whole footprint ``~(34/t) s b h + 5 a s^2 b / t``.
    """
    if min(b, s, h, a, t) < 1:
        raise ValueError("all dimensions must be >= 1")
    replicated = 10 * s * b * h
    if sequence_parallel:
        replicated //= t
    sharded = 24 * s * b * h // t
    attention = 5 * a * s * s * b // t
    return (replicated + sharded + attention) * dtype_size // 2


def stage_input_bytes(b: int, s: int, h: int, *, dtype_size: int = 2) -> int:
    """Bytes of one stashed stage input (what recomputation keeps)."""
    return b * s * h * dtype_size


def in_flight_microbatches(schedule_name: str, p: int, m: int, v: int = 1) -> int:
    """Peak stashed microbatches for the named schedule (§2.2.1).

    Expressed in full-microbatch units; the interleaved schedule's
    warm-up overhead adds ``(p-1)/v`` chunk-activations' worth.
    """
    if p < 1 or m < 1 or v < 1:
        raise ValueError("p, m, v must be >= 1")
    if schedule_name in ("gpipe", "interleaved-gpipe"):
        return m
    if schedule_name == "1f1b":
        return min(p, m)
    if schedule_name == "interleaved":
        if m == p:
            return m  # warm-up covers everything
        chunks = min(p * v + p - 1, m * v)
        return math.ceil(chunks / v)
    raise ValueError(f"unknown schedule {schedule_name!r}")


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-GPU memory breakdown, bytes."""

    model_state: int
    activations: int
    stage_inputs: int

    @property
    def total(self) -> int:
        return self.model_state + self.activations + self.stage_inputs


def parameters_per_rank(config: GPTConfig, parallel: ParallelConfig) -> int:
    """Trainable parameters held by one GPU.

    Transformer-layer parameters divide by ``p * t`` (sharded both
    ways); the first stage also holds the vocab-sharded embedding and
    the replicated position embedding.
    """
    h = config.hidden_size
    per_layer = 12 * h * h + 13 * h
    layer_share = config.num_layers * per_layer // (parallel.p * parallel.t)
    embedding = config.vocab_size * h // parallel.t + config.seq_length * h
    # The heaviest rank is a first-stage rank: layers + embeddings.
    return layer_share + embedding


def memory_footprint(
    config: GPTConfig,
    parallel: ParallelConfig,
    *,
    schedule_name: str = "1f1b",
    recompute: bool = False,
    dtype_size: int = 2,
    sequence_parallel: bool = False,
) -> MemoryFootprint:
    """Peak per-GPU memory for training ``config`` under ``parallel``."""
    P_rank = parameters_per_rank(config, parallel)
    model_state = P_rank * MODEL_STATE_BYTES_PER_PARAM
    layers_per_stage = config.num_layers // (parallel.p * parallel.v)
    s, h, a = config.seq_length, config.hidden_size, config.num_attention_heads
    n_inflight = in_flight_microbatches(
        schedule_name, parallel.p, parallel.num_microbatches, parallel.v
    )
    inputs = n_inflight * parallel.v * stage_input_bytes(
        parallel.b, s, h, dtype_size=dtype_size
    )
    if recompute:
        # Only one layer's working set is live during recompute.
        working = activation_bytes_per_layer(
            parallel.b, s, h, a, parallel.t, dtype_size=dtype_size,
            sequence_parallel=sequence_parallel,
        )
        return MemoryFootprint(
            model_state=model_state, activations=working, stage_inputs=inputs
        )
    acts = (
        n_inflight
        * parallel.v
        * layers_per_stage
        * activation_bytes_per_layer(
            parallel.b, s, h, a, parallel.t, dtype_size=dtype_size,
            sequence_parallel=sequence_parallel,
        )
    )
    return MemoryFootprint(
        model_state=model_state, activations=acts, stage_inputs=inputs
    )


def fits_in_memory(
    config: GPTConfig,
    parallel: ParallelConfig,
    device: DeviceSpec,
    *,
    schedule_name: str = "1f1b",
    recompute: bool = False,
    reserve_fraction: float = 0.1,
    sequence_parallel: bool = False,
) -> bool:
    """Whether training fits in device memory (with a CUDA/fragmentation
    reserve)."""
    if not 0 <= reserve_fraction < 1:
        raise ValueError("reserve_fraction must be in [0, 1)")
    fp = memory_footprint(
        config, parallel, schedule_name=schedule_name, recompute=recompute,
        sequence_parallel=sequence_parallel,
    )
    return fp.total <= device.memory_capacity * (1 - reserve_fraction)


def optimal_checkpoint_count(
    num_layers: int, a_input: float, a_intermediate: float
) -> float:
    """§3.5: minimize ``c A_input + (l/c) A_intermediate`` over c:
    ``c* = sqrt(l A_int / A_inp)``."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if a_input <= 0 or a_intermediate <= 0:
        raise ValueError("activation sizes must be positive")
    return math.sqrt(num_layers * a_intermediate / a_input)


def checkpointed_memory(
    num_checkpoints: float, num_layers: int, a_input: float, a_intermediate: float
) -> float:
    """Total activation memory with ``c`` checkpoints (§3.5 formula)."""
    if num_checkpoints <= 0:
        raise ValueError("num_checkpoints must be positive")
    return num_checkpoints * a_input + num_layers / num_checkpoints * a_intermediate
