"""Kernel-level cost enumeration for one transformer layer.

Lists every GEMM and every memory-bound elementwise kernel one
tensor-parallel rank executes for one microbatch, in the paper's
sharding (§2.3), and prices them on a
:class:`~repro.hardware.roofline.ComputeModel`.  This is the compute
half of the performance simulator: stage forward/backward durations are
sums of these per-layer costs.

The ``fused`` flag reproduces §4.2's operator-fusion optimizations:

- bias + GeLU fused (one pass instead of two),
- bias + dropout + add fused (one pass instead of three),
- scale + mask + softmax fused (one pass instead of three).

Backward GEMM FLOPs are 2x forward (gradients w.r.t. both input and
weights -- paper appendix); elementwise backward traffic ~= forward.
Activation recomputation (§3.5) adds one extra forward before the
backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPTConfig
from repro.hardware import ComputeModel, GemmShape


@dataclass(frozen=True)
class LayerCost:
    """Time breakdown (seconds) for one microbatch through one layer."""

    gemm_time: float
    elementwise_time: float
    gemm_flops: int

    @property
    def total(self) -> float:
        return self.gemm_time + self.elementwise_time


def transformer_layer_gemms(
    b: int, s: int, h: int, a: int, t: int = 1, ffn: int | None = None
) -> list[GemmShape]:
    """Per-rank forward GEMMs of one transformer layer under t-way
    tensor parallelism (§2.3 sharding: QKV/fc1 column-split, proj/fc2
    row-split, attention batched over the rank's a/t heads)."""
    if a % t or h % t:
        raise ValueError(f"h={h}, a={a} must be divisible by t={t}")
    ffn = ffn or 4 * h
    if ffn % t:
        raise ValueError(f"ffn={ffn} must be divisible by t={t}")
    dk = h // a
    heads = a // t
    return [
        GemmShape(m=b * s, k=h, n=3 * h // t),          # QKV projection
        GemmShape(m=s, k=dk, n=s, batch=b * heads),     # Q K^T
        GemmShape(m=s, k=s, n=dk, batch=b * heads),     # scores @ V
        GemmShape(m=b * s, k=h // t, n=h),              # attention output
        GemmShape(m=b * s, k=h, n=ffn // t),            # MLP fc1
        GemmShape(m=b * s, k=ffn // t, n=h),            # MLP fc2
    ]


def transformer_layer_elementwise(
    b: int, s: int, h: int, a: int, t: int = 1, ffn: int | None = None,
    fused: bool = True,
) -> list[tuple[int, float]]:
    """Per-rank forward elementwise kernels as (num_elements, passes).

    ``passes`` counts HBM traversals (read + write = 2 for a simple
    unary kernel); fusion reduces the pass count, which is the §5.8
    effect.
    """
    ffn = ffn or 4 * h
    bsh = b * s * h
    scores = b * (a // t) * s * s
    ops: list[tuple[int, float]] = []
    ops.append((bsh, 3.0))  # LayerNorm 1 (stats pass + normalize pass)
    ops.append((bsh, 3.0))  # LayerNorm 2
    if fused:
        ops.append((b * s * ffn // t, 2.0))  # bias+GeLU fused
        ops.append((scores, 2.0))            # scale+mask+softmax fused
        ops.append((scores, 2.0))            # attention dropout
        ops.append((bsh, 2.5))               # bias+dropout+add fused (attn)
        ops.append((bsh, 2.5))               # bias+dropout+add fused (MLP)
    else:
        # Unfused baseline: separate kernels materialize intermediates
        # in fp32 with up/down casts (the pre-fusion Megatron behavior),
        # doubling the traffic of each pass.
        ops.append((b * s * ffn // t, 4.0))  # bias add
        ops.append((b * s * ffn // t, 4.0))  # GeLU
        ops.append((scores, 4.0))            # scale
        ops.append((scores, 4.0))            # mask
        ops.append((scores, 6.0))            # softmax (max+sum+norm)
        ops.append((scores, 4.0))            # attention dropout
        for _ in range(2):                   # attn-out and MLP-out paths
            ops.append((bsh, 4.0))           # bias add
            ops.append((bsh, 4.0))           # dropout
            ops.append((bsh, 6.0))           # residual add (read x2 + write)
    return ops


def transformer_layer_cost(
    model: ComputeModel,
    b: int,
    s: int,
    h: int,
    a: int,
    t: int = 1,
    ffn: int | None = None,
    *,
    fused: bool = True,
) -> LayerCost:
    """Forward-pass cost of one layer for one microbatch on one rank."""
    gemms = transformer_layer_gemms(b, s, h, a, t, ffn)
    gemm_time = sum(model.gemm_time(g) for g in gemms)
    gemm_flops = sum(g.flops for g in gemms)
    ew = transformer_layer_elementwise(b, s, h, a, t, ffn, fused)
    ew_time = sum(model.elementwise_time(n, p) for n, p in ew)
    return LayerCost(gemm_time=gemm_time, elementwise_time=ew_time,
                     gemm_flops=gemm_flops)


def logit_layer_cost(
    model: ComputeModel, b: int, s: int, h: int, vocab: int, t: int = 1
) -> LayerCost:
    """Output-head cost: final LayerNorm + the (b s, h, V/t) logit GEMM
    + vocab-parallel cross entropy (memory-bound over the logits)."""
    if vocab % t:
        raise ValueError(f"vocab={vocab} must be divisible by t={t}")
    g = GemmShape(m=b * s, k=h, n=vocab // t)
    gemm_time = model.gemm_time(g)
    ew = [
        (b * s * h, 3.0),            # final LayerNorm
        (b * s * (vocab // t), 3.0), # softmax statistics + loss
    ]
    ew_time = sum(model.elementwise_time(n, p) for n, p in ew)
    return LayerCost(gemm_time=gemm_time, elementwise_time=ew_time,
                     gemm_flops=g.flops)


def embedding_cost(model: ComputeModel, b: int, s: int, h: int) -> LayerCost:
    """Embedding lookup + position add + dropout: pure memory traffic."""
    ew_time = model.elementwise_time(b * s * h, 4.0)
    return LayerCost(gemm_time=0.0, elementwise_time=ew_time, gemm_flops=0)


@dataclass(frozen=True)
class StageCost:
    """Per-microbatch forward/backward compute time of a pipeline stage."""

    forward: float
    backward: float
    forward_flops: int
    backward_flops: int

    @property
    def total(self) -> float:
        return self.forward + self.backward


def stage_compute_cost(
    model: ComputeModel,
    config: GPTConfig,
    layers_in_stage: int,
    b: int,
    t: int = 1,
    *,
    is_first: bool = False,
    is_last: bool = False,
    fused: bool = True,
    recompute: bool = True,
) -> StageCost:
    """Compute-only (no communication) cost of one stage, one microbatch.

    Backward = 2x forward GEMM work (+ the recomputation forward when
    enabled, §3.5); elementwise backward ~= forward's traffic.
    """
    if layers_in_stage < 0:
        raise ValueError("layers_in_stage must be >= 0")
    s, h, a = config.seq_length, config.hidden_size, config.num_attention_heads
    layer = transformer_layer_cost(
        model, b, s, h, a, t, config.ffn_hidden_size, fused=fused
    )
    fwd = layers_in_stage * layer.total
    fwd_flops = layers_in_stage * layer.gemm_flops
    bwd = layers_in_stage * (2 * layer.gemm_time + layer.elementwise_time)
    bwd_flops = 2 * fwd_flops
    if recompute:
        bwd += fwd
        bwd_flops += fwd_flops
    if is_first:
        emb = embedding_cost(model, b, s, h)
        fwd += emb.total
        bwd += emb.total  # scatter-add back into the embedding
    if is_last:
        logit = logit_layer_cost(model, b, s, h, config.vocab_size, t)
        fwd += logit.total
        bwd += 2 * logit.gemm_time + logit.elementwise_time
        fwd_flops += logit.gemm_flops
        bwd_flops += 2 * logit.gemm_flops
    return StageCost(
        forward=fwd, backward=bwd,
        forward_flops=fwd_flops, backward_flops=bwd_flops,
    )
