"""Closed-form iteration-time estimator (no event simulation).

The paper's §3 analysis composes into a closed form for one iteration:

    t_pipeline = (m + (p-1)/v) * (t_f + t_b + t_comm_per_mb)
    t_iter     = t_pipeline + t_dp_allreduce + t_optimizer

where t_f/t_b are per-stage compute times (including serialized
tensor-parallel all-reduces) and t_comm_per_mb the per-microbatch p2p
cost charged on the critical path.  This estimator is O(1) rather than
O(p * m) like the event simulator -- useful inside search loops -- and
its agreement with the simulator (within a few percent across
configurations; see tests) validates both: the simulator has no hidden
scheduling pathology, and the closed form captures the §3 structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm import CommCostModel, ProcessGroups
from repro.config import GPTConfig, ParallelConfig
from repro.hardware import ComputeModel, NodeSpec, cluster_for_gpus, dgx_a100

from .layer_costs import stage_compute_cost
from .memory import MODEL_STATE_BYTES_PER_PARAM, parameters_per_rank


@dataclass(frozen=True)
class AnalyticEstimate:
    """Closed-form timing of one training iteration."""

    iteration_time: float
    pipeline_time: float
    bubble_time: float
    per_microbatch_time: float
    data_parallel_time: float
    optimizer_time: float
    model_flops: int
    num_gpus: int

    @property
    def tflops_per_gpu(self) -> float:
        return self.model_flops / self.num_gpus / self.iteration_time / 1e12


def estimate_iteration(
    config: GPTConfig,
    parallel: ParallelConfig,
    *,
    node: NodeSpec | None = None,
    fused: bool = True,
    recompute: bool = True,
    scatter_gather: bool = True,
    tp_channels: int = 2,
    grad_dtype_size: int = 2,
    activation_dtype_size: int = 2,
) -> AnalyticEstimate:
    """Closed-form analogue of :func:`repro.sim.simulate_iteration`.

    Uses the mean per-stage compute time (stages differ only by the
    embedding/logit extras on the first/last stage, amortized here),
    the paper's bubble formula (1/v)(p-1) extra microbatch slots, and
    the same communication cost models as the simulator.
    """
    node = node or dgx_a100()
    parallel.validate_for_model(config)
    p, t, d, v = parallel.p, parallel.t, parallel.d, parallel.v
    m = parallel.num_microbatches
    b, s, h = parallel.b, config.seq_length, config.hidden_size
    topo = cluster_for_gpus(parallel.world_size, node)
    compute = ComputeModel(device=node.device)
    comm = CommCostModel(topo)
    groups = ProcessGroups(parallel)

    layers_per_stage = config.num_layers // (p * v)
    boundary_bytes = b * s * h * activation_dtype_size
    tp_ranks = groups.tensor_group(pp=0, dp=0)
    tp_ar = (
        comm.all_reduce_time(tp_ranks, boundary_bytes, channels=tp_channels)
        if t > 1
        else 0.0
    )
    # Mean per-chunk compute: interior stages + amortized first/last extras.
    total_stages = p * v
    interior = stage_compute_cost(
        compute, config, layers_per_stage, b, t, fused=fused, recompute=recompute
    )
    first = stage_compute_cost(
        compute, config, layers_per_stage, b, t,
        is_first=True, fused=fused, recompute=recompute,
    )
    last = stage_compute_cost(
        compute, config, layers_per_stage, b, t,
        is_last=True, fused=fused, recompute=recompute,
    )
    extras = (first.total - interior.total) + (last.total - interior.total)
    ars_per_chunk = (2 + 2 + (2 if recompute else 0)) * layers_per_stage * tp_ar
    chunk_time = interior.total + ars_per_chunk + extras / total_stages

    # Pipeline p2p charged per chunk boundary (send + recv, as the
    # simulator does); v chunks => v boundaries per direction per mb.
    pipe_ranks = groups.pipeline_group(dp=0, tp=0)
    if p > 1:
        hop = comm.pipeline_p2p_time(
            pipe_ranks[0], pipe_ranks[1], boundary_bytes, t,
            scatter_gather=scatter_gather,
        )
        p2p_per_mb = 2 * 2 * v * hop  # fwd+bwd, send+recv
    else:
        p2p_per_mb = 0.0

    per_mb = v * chunk_time + p2p_per_mb  # all chunks of one microbatch
    slots = m + (p - 1) / v
    pipeline_time = slots * per_mb
    bubble_time = ((p - 1) / v) * per_mb

    params_rank = parameters_per_rank(config, parallel)
    dp_time = 0.0
    if d > 1:
        dp_time = comm.all_reduce_time(
            groups.data_group(pp=0, tp=0), params_rank * grad_dtype_size
        )
    if p > 1:
        emb_bytes = config.vocab_size // t * h * grad_dtype_size
        dp_time += comm.all_reduce_time([pipe_ranks[0], pipe_ranks[-1]], emb_bytes)
    opt_time = compute.memory_time(params_rank * MODEL_STATE_BYTES_PER_PARAM)

    flops = config.flops_per_iteration(
        parallel.global_batch_size, with_recompute=recompute
    )
    return AnalyticEstimate(
        iteration_time=pipeline_time + dp_time + opt_time,
        pipeline_time=pipeline_time,
        bubble_time=bubble_time,
        per_microbatch_time=per_mb,
        data_parallel_time=dp_time,
        optimizer_time=opt_time,
        model_flops=flops,
        num_gpus=parallel.world_size,
    )
