"""Configuration heuristics implementing the paper's Takeaways.

Given a model, a GPU budget and a global batch size, pick (t, p, d, b):

- **Takeaway #1**: use tensor parallelism up to the node size ``g``
  (8 for DGX A100) before resorting to pipeline parallelism;
- **Takeaway #2**: make the total model-parallel size ``M = t p`` just
  large enough that the model (parameters + metadata + activation
  working set) fits in GPU memory, and spend the rest on data
  parallelism;
- **Takeaway #3**: choose the microbatch size by the eq. (1) sweep.
"""

from __future__ import annotations

from repro.config import GPTConfig, ParallelConfig
from repro.hardware import ComputeModel, NodeSpec, dgx_a100

from .memory import fits_in_memory
from .microbatch import optimal_microbatch_size


def _divisors_up_to(value: int, cap: int) -> list[int]:
    return [x for x in range(1, cap + 1) if value % x == 0]


def suggest_parallel_config(
    config: GPTConfig,
    num_gpus: int,
    global_batch_size: int,
    *,
    node: NodeSpec | None = None,
    schedule_name: str = "1f1b",
    recompute: bool = True,
    microbatch_candidates: tuple[int, ...] = (1, 2, 4, 8),
) -> ParallelConfig:
    """Pick (t, p, d, b) for ``config`` on ``num_gpus`` GPUs.

    Searches the smallest model-parallel size M = t*p (with t maximal up
    to the node size, Takeaway #1) whose memory footprint fits, assigns
    the remaining GPUs to data parallelism (Takeaway #2), and sweeps the
    microbatch size (Takeaway #3).

    Raises ``ValueError`` if no valid configuration fits device memory.
    """
    node = node or dgx_a100()
    g = node.gpus_per_node
    compute = ComputeModel(device=node.device)
    t_candidates = [
        t
        for t in _divisors_up_to(min(g, num_gpus), min(g, num_gpus))
        if config.num_attention_heads % t == 0
        and config.ffn_hidden_size % t == 0
        and config.vocab_size % t == 0
    ]
    best: ParallelConfig | None = None
    # Grow the model-parallel size M until something fits; prefer larger
    # t at equal M (Takeaway #1: tensor parallelism first, intra-node).
    for M in range(1, num_gpus + 1):
        if num_gpus % M != 0:
            continue
        for t in sorted(t_candidates, reverse=True):
            if M % t != 0:
                continue
            p = M // t
            if config.num_layers % p != 0:
                continue
            d = num_gpus // M
            if global_batch_size % d != 0:
                continue
            candidate = ParallelConfig(
                pipeline_parallel_size=p,
                tensor_parallel_size=t,
                data_parallel_size=d,
                microbatch_size=1,
                global_batch_size=global_batch_size,
            )
            if fits_in_memory(
                config, candidate, node.device,
                schedule_name=schedule_name, recompute=recompute,
            ):
                best = candidate
                break
        if best is not None:
            break
    if best is None:
        raise ValueError(
            f"no (t, p, d) configuration of {num_gpus} GPUs fits "
            f"{config.name or 'the model'} in {node.device.memory_capacity/1e9:.0f} GB"
        )
    # Takeaway #3: sweep the microbatch size.
    b_prime = global_batch_size // best.data_parallel_size
    feasible_bs = []
    for b in microbatch_candidates:
        if b_prime % b != 0:
            continue
        cand = ParallelConfig(
            pipeline_parallel_size=best.p,
            tensor_parallel_size=best.t,
            data_parallel_size=best.d,
            microbatch_size=b,
            global_batch_size=global_batch_size,
        )
        if fits_in_memory(
            config, cand, node.device,
            schedule_name=schedule_name, recompute=recompute,
        ):
            feasible_bs.append(b)
    if not feasible_bs:
        return best
    point = optimal_microbatch_size(
        compute, config, p=best.p, t=best.t, b_prime=b_prime,
        candidates=tuple(feasible_bs), recompute=recompute,
    )
    return ParallelConfig(
        pipeline_parallel_size=best.p,
        tensor_parallel_size=best.t,
        data_parallel_size=best.d,
        microbatch_size=point.microbatch_size,
        global_batch_size=global_batch_size,
    )
