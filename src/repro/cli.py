"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``simulate``  — time one training iteration of a model under a given
  (p, t, d, b, B, v, schedule) on the modelled cluster;
- ``suggest``   — apply the paper's Takeaway heuristics to pick a
  configuration for a model / GPU budget / batch size;
- ``autotune``  — exhaustively search all feasible configurations with
  the simulator and print the top results;
- ``schedule``  — render a pipeline-schedule timeline (Figures 3/4);
- ``trace``     — run one traced training iteration (numeric engine or
  simulator) and write a Chrome-trace JSON + phase summary
  (:mod:`repro.obs`);
- ``experiments`` — alias for ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import GPTConfig, ParallelConfig


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--layers", type=int, required=True, help="transformer layers (l)")
    p.add_argument("--hidden", type=int, required=True, help="hidden size (h)")
    p.add_argument("--heads", type=int, required=True, help="attention heads (a)")
    p.add_argument("--vocab", type=int, default=51200, help="vocabulary size (V)")
    p.add_argument("--seq", type=int, default=2048, help="sequence length (s)")


def _model_from(args) -> GPTConfig:
    return GPTConfig(
        num_layers=args.layers,
        hidden_size=args.hidden,
        num_attention_heads=args.heads,
        vocab_size=args.vocab,
        seq_length=args.seq,
    )


def _cmd_simulate(args) -> int:
    from repro.sim import SimOptions, simulate_iteration

    model = _model_from(args)
    parallel = ParallelConfig(
        pipeline_parallel_size=args.p,
        tensor_parallel_size=args.t,
        data_parallel_size=args.d,
        microbatch_size=args.b,
        global_batch_size=args.batch,
        num_model_chunks=args.chunks,
    )
    options = SimOptions(
        schedule_name=args.schedule,
        recompute_activations=not args.no_recompute,
        scatter_gather=not args.no_scatter_gather,
        fused_kernels=not args.no_fusion,
    )
    res = simulate_iteration(model, parallel, options=options)
    print(f"model: {model}")
    print(f"parallel: {parallel.describe()}  schedule={args.schedule}")
    print(f"iteration time    : {res.iteration_time:.3f} s")
    print(f"per-GPU throughput: {res.tflops_per_gpu:.1f} Tflop/s "
          f"({res.peak_fraction*100:.0f}% of peak)")
    print(f"aggregate         : {res.aggregate_pflops:.1f} Pflop/s")
    print(f"pipeline bubble   : {res.bubble_fraction*100:.1f} %")
    print(f"sequences/second  : {res.sequences_per_second:.2f}")
    return 0


def _cmd_suggest(args) -> int:
    from repro.hardware import a100_80gb
    from repro.perf import fits_in_memory, memory_footprint, suggest_parallel_config

    model = _model_from(args)
    parallel = suggest_parallel_config(model, args.gpus, args.batch)
    print(f"model: {model}")
    print(f"suggested: {parallel.describe()}")
    fp = memory_footprint(model, parallel, recompute=True)
    print(f"per-GPU memory: {fp.total/1e9:.1f} GB "
          f"(fits={fits_in_memory(model, parallel, a100_80gb(), recompute=True)})")
    return 0


def _cmd_autotune(args) -> int:
    from repro.perf import autotune

    model = _model_from(args)
    best = autotune(model, args.gpus, args.batch, top_k=args.top)
    print(f"model: {model};  {args.gpus} GPUs, batch {args.batch}")
    for i, s in enumerate(best, 1):
        print(f"{i}. {s.describe()}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.schedule import make_schedule, render_schedule

    chunks = args.chunks if args.name.startswith("interleaved") else 1
    sched = make_schedule(args.name, args.p, args.m, chunks)
    print(render_schedule(sched))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import phase_summary, trace, write_chrome_trace, write_metrics

    model = _model_from(args)
    parallel = ParallelConfig(
        pipeline_parallel_size=args.p,
        tensor_parallel_size=args.t,
        data_parallel_size=args.d,
        microbatch_size=args.b,
        global_batch_size=args.batch,
        num_model_chunks=args.chunks,
    )
    parallel.validate_for_model(model)
    if args.mode == "sim":
        from repro.sim import SimOptions, simulate_iteration

        with trace() as tracer:
            res = simulate_iteration(
                model, parallel, options=SimOptions(schedule_name=args.schedule)
            )
        print(f"model: {model}")
        print(f"parallel: {parallel.describe()}  schedule={args.schedule}")
        print(f"simulated iteration: {res.iteration_time:.3f} s "
              f"({res.tflops_per_gpu:.1f} Tflop/s per GPU)")
    else:
        import numpy as np

        from repro.nn.profiler import count_flops
        from repro.parallel import PTDTrainer

        rng = np.random.default_rng(args.seed)
        shape = (parallel.global_batch_size, model.seq_length)
        ids = rng.integers(0, model.vocab_size, size=shape)
        targets = rng.integers(0, model.vocab_size, size=shape)
        with trace() as tracer, count_flops() as meter:
            trainer = PTDTrainer(model, parallel, schedule=args.schedule)
            loss = trainer.train_step(ids, targets)
        span_bytes = int(tracer.counter_total("bytes"))
        log_bytes = trainer.log.total_bytes()
        span_flops = int(tracer.counter_total("flops"))
        print(f"model: {model}")
        print(f"parallel: {parallel.describe()}  schedule={args.schedule}")
        print(f"loss: {loss:.4f}")
        print(f"bytes: spans={span_bytes}  traffic-log={log_bytes}  "
              f"match={span_bytes == log_bytes}")
        print(f"flops: spans={span_flops}  flop-meter={meter.total_flops}  "
              f"match={span_flops == meter.total_flops}")
        if span_bytes != log_bytes or span_flops != meter.total_flops:
            print("error: trace disagrees with ground-truth meters",
                  file=sys.stderr)
            return 1
    print()
    print(phase_summary(tracer))
    write_chrome_trace(tracer, args.out)
    print(f"\nwrote {args.out} ({len(tracer)} spans; open in Perfetto or "
          "chrome://tracing)")
    if args.metrics:
        write_metrics(tracer, args.metrics)
        print(f"wrote {args.metrics}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Megatron-LM PTD-P (SC '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate one training iteration")
    _add_model_args(p_sim)
    p_sim.add_argument("-p", type=int, default=1, help="pipeline-parallel size")
    p_sim.add_argument("-t", type=int, default=1, help="tensor-parallel size")
    p_sim.add_argument("-d", type=int, default=1, help="data-parallel size")
    p_sim.add_argument("-b", type=int, default=1, help="microbatch size")
    p_sim.add_argument("--batch", type=int, required=True, help="global batch size")
    p_sim.add_argument("--chunks", type=int, default=1, help="model chunks (v)")
    p_sim.add_argument(
        "--schedule", default="1f1b",
        choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"],
    )
    p_sim.add_argument("--no-recompute", action="store_true")
    p_sim.add_argument("--no-scatter-gather", action="store_true")
    p_sim.add_argument("--no-fusion", action="store_true")
    p_sim.set_defaults(func=_cmd_simulate)

    p_sug = sub.add_parser("suggest", help="Takeaway-heuristic configuration")
    _add_model_args(p_sug)
    p_sug.add_argument("--gpus", type=int, required=True)
    p_sug.add_argument("--batch", type=int, required=True)
    p_sug.set_defaults(func=_cmd_suggest)

    p_auto = sub.add_parser("autotune", help="exhaustive configuration search")
    _add_model_args(p_auto)
    p_auto.add_argument("--gpus", type=int, required=True)
    p_auto.add_argument("--batch", type=int, required=True)
    p_auto.add_argument("--top", type=int, default=5)
    p_auto.set_defaults(func=_cmd_autotune)

    p_trace = sub.add_parser(
        "trace", help="trace one training iteration (Chrome-trace output)"
    )
    _add_model_args(p_trace)
    p_trace.add_argument("-p", type=int, default=1, help="pipeline-parallel size")
    p_trace.add_argument("-t", type=int, default=1, help="tensor-parallel size")
    p_trace.add_argument("-d", type=int, default=1, help="data-parallel size")
    p_trace.add_argument("-b", type=int, default=1, help="microbatch size")
    p_trace.add_argument("--batch", type=int, required=True, help="global batch size")
    p_trace.add_argument("--chunks", type=int, default=1, help="model chunks (v)")
    p_trace.add_argument(
        "--schedule", default="1f1b",
        choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"],
    )
    p_trace.add_argument(
        "--mode", default="engine", choices=["engine", "sim"],
        help="engine: run the numeric trainer (real bytes/FLOPs); "
             "sim: modelled timings from the discrete-event simulator",
    )
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome-trace output path")
    p_trace.add_argument("--metrics", default=None,
                         help="also dump the metrics registry as JSON")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.set_defaults(func=_cmd_trace)

    p_sched = sub.add_parser("schedule", help="render a schedule timeline")
    p_sched.add_argument(
        "name", choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"]
    )
    p_sched.add_argument("-p", type=int, default=4)
    p_sched.add_argument("-m", type=int, default=8)
    p_sched.add_argument("--chunks", type=int, default=2)
    p_sched.set_defaults(func=_cmd_schedule)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
