"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

- ``simulate``  — time one training iteration of a model under a given
  (p, t, d, b, B, v, schedule) on the modelled cluster;
- ``suggest``   — apply the paper's Takeaway heuristics to pick a
  configuration for a model / GPU budget / batch size;
- ``autotune``  — exhaustively search all feasible configurations with
  the simulator and print the top results;
- ``schedule``  — render a pipeline-schedule timeline (Figures 3/4);
- ``trace``     — run one traced training iteration (numeric engine or
  simulator) and write a Chrome-trace JSON + phase summary
  (:mod:`repro.obs`);
- ``goodput``   — sweep checkpoint intervals for a preset model +
  cluster, report the optimum vs. the analytic Young/Daly interval,
  and replay a failure trace through the goodput simulator
  (:mod:`repro.resilience`);
- ``verify``    — run the correctness-verification suite: schedule
  validator, collective sanitizer, cross-parallelism conformance,
  traffic/FLOP conservation, and chaos-recovery conformance; exits 1
  on violations (:mod:`repro.verify`);
- ``chaos``     — run the tiny model through the supervised
  fault-tolerance harness under live injected failures (kills,
  checkpoint corruption, transient save errors), recover
  automatically, and prove the recovered run matches the uninterrupted
  reference (:mod:`repro.resilience.harness`);
- ``bench``     — the performance observatory's unified benchmark
  runner: steady-state timing of the registered micro/macro scenarios
  (and optionally the ``benchmarks/bench_*.py`` pytest suites) into a
  schema-versioned ``BENCH_<label>.json``, plus the noise-aware
  regression gate ``--compare OLD NEW`` (:mod:`repro.obs.bench`);
- ``report``    — render the perf trajectory recorded by one or more
  BENCH files as a TTY or ``--html`` dashboard (:mod:`repro.obs.report`);
- ``serve``     — continuous-batching inference over the paged KV
  cache: drive a seeded Poisson (or replayed JSON) request trace
  through :class:`repro.serve.ServeEngine`, print per-request
  TTFT/latency and aggregate throughput, and optionally gate on the
  SLO-metrics schema + the ``generate`` oracle (``--smoke``);
- ``monitor``   — mission control for registered run logs
  (:mod:`repro.obs.runlog`): TTY dashboard with sparklines / per-rank
  health / alert feed, ``--follow`` live tailing, ``--list``/``--gc``
  registry management, and a ``--check`` batch gate that exits
  non-zero on unacknowledged critical alerts
  (:mod:`repro.obs.monitor`);
- ``experiments`` — alias for ``python -m repro.experiments``.

Output conventions: every tracing-capable subcommand (``trace``,
``goodput``, ``chaos``, ``bench``) accepts ``--metrics-out PATH``
writing the same metrics-JSON schema
(:meth:`repro.obs.MetricsRegistry.as_dict`).

Configuration errors (bad model shapes, infeasible parallel configs,
unwritable output paths) are mapped onto a clean ``error: ...`` message
and exit code 2 — no tracebacks for user input.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import GPTConfig, ParallelConfig


def _add_model_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--layers", type=int, required=True, help="transformer layers (l)")
    p.add_argument("--hidden", type=int, required=True, help="hidden size (h)")
    p.add_argument("--heads", type=int, required=True, help="attention heads (a)")
    p.add_argument("--vocab", type=int, default=51200, help="vocabulary size (V)")
    p.add_argument("--seq", type=int, default=2048, help="sequence length (s)")


def _model_from(args) -> GPTConfig:
    return GPTConfig(
        num_layers=args.layers,
        hidden_size=args.hidden,
        num_attention_heads=args.heads,
        vocab_size=args.vocab,
        seq_length=args.seq,
    )


def _cmd_simulate(args) -> int:
    from repro.sim import SimOptions, simulate_iteration

    model = _model_from(args)
    parallel = ParallelConfig(
        pipeline_parallel_size=args.p,
        tensor_parallel_size=args.t,
        data_parallel_size=args.d,
        microbatch_size=args.b,
        global_batch_size=args.batch,
        num_model_chunks=args.chunks,
    )
    options = SimOptions(
        schedule_name=args.schedule,
        recompute_activations=not args.no_recompute,
        scatter_gather=not args.no_scatter_gather,
        fused_kernels=not args.no_fusion,
    )
    res = simulate_iteration(model, parallel, options=options)
    print(f"model: {model}")
    print(f"parallel: {parallel.describe()}  schedule={args.schedule}")
    print(f"iteration time    : {res.iteration_time:.3f} s")
    print(f"per-GPU throughput: {res.tflops_per_gpu:.1f} Tflop/s "
          f"({res.peak_fraction*100:.0f}% of peak)")
    print(f"aggregate         : {res.aggregate_pflops:.1f} Pflop/s")
    print(f"pipeline bubble   : {res.bubble_fraction*100:.1f} %")
    print(f"sequences/second  : {res.sequences_per_second:.2f}")
    return 0


def _cmd_suggest(args) -> int:
    from repro.hardware import a100_80gb
    from repro.perf import fits_in_memory, memory_footprint, suggest_parallel_config

    model = _model_from(args)
    parallel = suggest_parallel_config(model, args.gpus, args.batch)
    print(f"model: {model}")
    print(f"suggested: {parallel.describe()}")
    fp = memory_footprint(model, parallel, recompute=True)
    print(f"per-GPU memory: {fp.total/1e9:.1f} GB "
          f"(fits={fits_in_memory(model, parallel, a100_80gb(), recompute=True)})")
    return 0


def _cmd_autotune(args) -> int:
    from repro.perf import autotune

    model = _model_from(args)
    best = autotune(model, args.gpus, args.batch, top_k=args.top)
    print(f"model: {model};  {args.gpus} GPUs, batch {args.batch}")
    for i, s in enumerate(best, 1):
        print(f"{i}. {s.describe()}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.schedule import make_schedule, render_schedule

    chunks = args.chunks if args.name.startswith("interleaved") else 1
    sched = make_schedule(args.name, args.p, args.m, chunks)
    print(render_schedule(sched))
    return 0


def _cmd_trace(args) -> int:
    import contextlib

    from repro.obs import phase_summary, trace, write_chrome_trace, write_metrics

    model = _model_from(args)
    parallel = ParallelConfig(
        pipeline_parallel_size=args.p,
        tensor_parallel_size=args.t,
        data_parallel_size=args.d,
        microbatch_size=args.b,
        global_batch_size=args.batch,
        num_model_chunks=args.chunks,
    )
    parallel.validate_for_model(model)
    with contextlib.ExitStack() as stack:
        logger = None
        if args.runlog:
            from repro.obs.runlog import RunRegistry, run_logging

            registry = RunRegistry(args.runlog)
            logger, log_fh = registry.create(args.mode)
            stack.enter_context(contextlib.closing(log_fh))
            logger.start(
                args.mode,
                model={"layers": model.num_layers,
                       "hidden": model.hidden_size,
                       "heads": model.num_attention_heads,
                       "vocab": model.vocab_size,
                       "seq": model.seq_length},
                parallel={"p": parallel.pipeline_parallel_size,
                          "t": parallel.tensor_parallel_size,
                          "d": parallel.data_parallel_size,
                          "B": parallel.global_batch_size},
            )
            stack.enter_context(run_logging(logger))
        rc = _run_trace(args, model, parallel)
        if logger is not None:
            logger.end("completed" if rc == 0 else "failed")
            print(f"run log: {registry.events_path(logger.run_id)}")
    return rc


def _run_trace(args, model, parallel) -> int:
    from repro.obs import phase_summary, trace, write_chrome_trace, write_metrics

    if args.mode == "sim":
        from repro.sim import SimOptions, simulate_iteration

        with trace() as tracer:
            res = simulate_iteration(
                model, parallel, options=SimOptions(schedule_name=args.schedule)
            )
        print(f"model: {model}")
        print(f"parallel: {parallel.describe()}  schedule={args.schedule}")
        print(f"simulated iteration: {res.iteration_time:.3f} s "
              f"({res.tflops_per_gpu:.1f} Tflop/s per GPU)")
    else:
        import numpy as np

        from repro.nn.profiler import count_flops
        from repro.parallel import PTDTrainer

        rng = np.random.default_rng(args.seed)
        shape = (parallel.global_batch_size, model.seq_length)
        ids = rng.integers(0, model.vocab_size, size=shape)
        targets = rng.integers(0, model.vocab_size, size=shape)
        with trace() as tracer, count_flops() as meter:
            trainer = PTDTrainer(model, parallel, schedule=args.schedule)
            loss = trainer.train_step(ids, targets)
        span_bytes = int(tracer.counter_total("bytes"))
        log_bytes = trainer.log.total_bytes()
        span_flops = int(tracer.counter_total("flops"))
        print(f"model: {model}")
        print(f"parallel: {parallel.describe()}  schedule={args.schedule}")
        print(f"loss: {loss:.4f}")
        print(f"bytes: spans={span_bytes}  traffic-log={log_bytes}  "
              f"match={span_bytes == log_bytes}")
        print(f"flops: spans={span_flops}  flop-meter={meter.total_flops}  "
              f"match={span_flops == meter.total_flops}")
        if span_bytes != log_bytes or span_flops != meter.total_flops:
            print("error: trace disagrees with ground-truth meters",
                  file=sys.stderr)
            return 1
    print()
    print(phase_summary(tracer))
    if args.profile or args.folded:
        from repro.obs import profile_tracer, write_folded

        profile = profile_tracer(tracer)
        if args.profile:
            print()
            print(profile.hot_table(args.top))
            for rank in sorted(profile.ranks):
                rp = profile.ranks[rank]
                assert rp.self_sum_ns == rp.wall_ns  # exact attribution
        if args.folded:
            write_folded(profile, args.folded)
            print(f"\nwrote {args.folded} ({len(profile.folded)} stacks; "
                  "feed to flamegraph.pl or speedscope)")
    write_chrome_trace(tracer, args.out)
    print(f"\nwrote {args.out} ({len(tracer)} spans; open in Perfetto or "
          "chrome://tracing)")
    if args.metrics_out:
        write_metrics(tracer, args.metrics_out)
        print(f"wrote {args.metrics_out}")
    return 0


def _cmd_goodput(args) -> int:
    from repro.obs import trace, write_chrome_trace
    from repro.resilience import (
        FaultPlan,
        RankFailure,
        RestartPolicy,
        goodput_scenarios,
        log_spaced_intervals,
        simulate_goodput,
        sweep_checkpoint_interval,
    )
    from repro.sim import simulate_iteration

    scenario = goodput_scenarios()[args.preset]
    if args.node_mtbf_hours is not None:
        if args.node_mtbf_hours <= 0:
            raise ValueError(
                f"--node-mtbf-hours must be > 0, got {args.node_mtbf_hours}"
            )
        from dataclasses import replace

        scenario = replace(scenario, node_mtbf_hours=args.node_mtbf_hours)
    model, parallel = scenario.model, scenario.parallel
    mtbf = scenario.cluster_mtbf_seconds

    res = simulate_iteration(model, parallel)
    iter_time = res.iteration_time
    policy = RestartPolicy.from_io_model(model, parallel, scenario.num_nodes)
    detect = policy.detector.expected_latency()
    print(f"scenario: {args.preset}  {model}")
    print(f"parallel: {parallel.describe()}  nodes={scenario.num_nodes}")
    print(f"iteration time   : {iter_time:.3f} s (simulated)")
    print(f"checkpoint save  : {policy.save_seconds:.1f} s   "
          f"load: {policy.load_seconds:.1f} s")
    print(f"cluster MTBF     : {mtbf:.0f} s "
          f"({scenario.node_mtbf_hours:g} h node MTBF / "
          f"{scenario.num_nodes} nodes)")
    print(f"detection latency: {detect:.1f} s expected")

    lo = args.min_interval or 2 * policy.save_seconds
    hi = args.max_interval or mtbf
    sweep = sweep_checkpoint_interval(
        log_spaced_intervals(lo, hi, args.points),
        mtbf_seconds=mtbf,
        save_seconds=policy.save_seconds,
        load_seconds=policy.load_seconds,
        detection_seconds=detect,
    )
    print()
    print(f"{'interval (s)':>14} {'goodput':>9} {'overhead':>9}")
    for i, pt in enumerate(sweep.points):
        marker = "  <-- optimum" if i == sweep.best_index else ""
        print(f"{pt.interval_seconds:>14.1f} {pt.goodput:>9.4f} "
              f"{pt.overhead_rate:>9.4f}{marker}")
    print()
    print(f"sweep optimum    : {sweep.best.interval_seconds:.1f} s "
          f"(goodput {sweep.best.goodput:.4f})")
    print(f"Young/Daly       : {sweep.analytic_interval_seconds:.1f} s")
    print(f"agreement        : within one sweep step: "
          f"{sweep.agrees_within_one_step}")

    # -- replay a concrete failure trace at the optimal interval ------------
    interval_iters = max(1, round(sweep.best.interval_seconds / iter_time))
    if args.failures:
        failure_iters = [int(x) for x in args.failures.split(",")]
    else:
        # One failure per cluster-MTBF of useful time, four MTBFs deep.
        step = max(1, round(mtbf / iter_time))
        failure_iters = [step * (i + 1) for i in range(4)]
    total = args.iterations or (max(failure_iters) + interval_iters)
    plan = FaultPlan(
        failures=tuple(
            RankFailure(at_iteration=k) for k in failure_iters if k < total
        )
    )
    print()
    print(f"failure trace    : rank failures at iterations "
          f"{[f.at_iteration for f in plan.failures]} of {total} "
          f"(checkpoint every {interval_iters} iterations)")
    if args.out or args.metrics_out:
        with trace() as tracer:
            report = simulate_goodput(
                iter_time, total, interval_iters, policy, plan
            )
        if args.metrics_out:
            from repro.obs import write_metrics

            write_metrics(tracer, args.metrics_out)
            print(f"wrote {args.metrics_out}")
        if not args.out:
            print(report.describe())
            return 0
        write_chrome_trace(tracer, args.out)
        # Each resilience span carries its modelled duration in a
        # ``seconds`` counter; summing counters reproduces the report's
        # accumulation order bit-for-bit (span start/end live on a large
        # wall-clock offset, so ``end - start`` alone rounds in the last
        # ulp).
        sums = {
            phase: tracer.counter_total("seconds", phase=f"resilience.{phase}")
            for phase in ("checkpoint", "detect", "load", "lost-work")
        }
        expected = {
            "checkpoint": report.checkpoint_seconds,
            "detect": report.detection_seconds,
            "load": report.load_seconds,
            "lost-work": report.lost_work_seconds,
        }
        match = all(sums[k] == expected[k] for k in expected)
        print(report.describe())
        print(f"wrote {args.out} ({len(tracer)} spans)")
        print(f"span/report overhead accounting match={match}")
        if not match:
            print("error: trace spans disagree with the goodput report",
                  file=sys.stderr)
            return 1
    else:
        report = simulate_goodput(iter_time, total, interval_iters, policy, plan)
        print(report.describe())
    return 0


def _parse_int_list(text: str, flag: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise ValueError(
            f"{flag} expects comma-separated integers, got {text!r}"
        ) from None


def _chaos_plan_from_args(args):
    from repro.resilience import (
        ChaosPlan,
        CorruptCheckpoint,
        Kill,
        LossSpike,
        SaveFailure,
        Stall,
    )

    if args.plan is not None:
        with open(args.plan, "r", encoding="utf-8") as fh:
            return ChaosPlan.from_json(fh.read())
    kills = tuple(
        Kill(at_iteration=k, rank=args.rank, permanent=args.permanent)
        for k in _parse_int_list(args.kill_at or "", "--kill-at")
    )
    corruptions = tuple(
        CorruptCheckpoint(at_iteration=k, file=args.corrupt_file,
                          mode=args.corrupt_mode)
        for k in _parse_int_list(args.corrupt or "", "--corrupt")
    )
    save_failures = []
    for spec in (args.save_fail or "").split(","):
        spec = spec.strip()
        if not spec:
            continue
        at, _, times = spec.partition(":")
        try:
            save_failures.append(SaveFailure(
                at_iteration=int(at), times=int(times) if times else 1
            ))
        except ValueError as exc:
            raise ValueError(f"bad --save-fail entry {spec!r}: {exc}")
    loss_spikes = tuple(
        LossSpike(at_iteration=k)
        for k in _parse_int_list(args.loss_spike or "", "--loss-spike")
    )
    stalls = []
    for spec in (args.stall or "").split(","):
        spec = spec.strip()
        if not spec:
            continue
        at, _, rank = spec.partition(":")
        try:
            stalls.append(Stall(
                at_iteration=int(at), seconds=args.stall_seconds,
                rank=int(rank) if rank else None,
            ))
        except ValueError as exc:
            raise ValueError(f"bad --stall entry {spec!r}: {exc}")
    return ChaosPlan(kills=kills, corruptions=corruptions,
                     save_failures=tuple(save_failures),
                     loss_spikes=loss_spikes, stalls=tuple(stalls))


def _cmd_chaos(args) -> int:
    import contextlib
    import tempfile

    import numpy as np

    from repro.config import tiny_test_model
    from repro.obs import phase_summary, trace, write_chrome_trace
    from repro.resilience import (
        ChaosHarness,
        run_baseline,
        run_reset_reference,
        states_bit_equal,
    )

    if args.fast and not (args.plan or args.kill_at or args.corrupt
                          or args.save_fail or args.loss_spike
                          or args.stall):
        # The CI smoke: one of everything on the default tiny run.
        args.kill_at, args.corrupt, args.save_fail = "5", "4", "2:1"
    plan = _chaos_plan_from_args(args)
    config = tiny_test_model(num_layers=2, hidden_size=16,
                             num_attention_heads=4, vocab_size=32,
                             seq_length=8)
    parallel = ParallelConfig(
        pipeline_parallel_size=args.p,
        tensor_parallel_size=args.t,
        data_parallel_size=args.d,
        microbatch_size=args.b,
        global_batch_size=args.batch,
    )
    parallel.validate_for_model(config)

    with contextlib.ExitStack() as stack:
        directory = args.dir or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-chaos-")
        )
        harness = ChaosHarness(
            config, parallel, directory, plan=plan,
            total_iterations=args.iterations,
            checkpoint_every=args.every,
            keep_last=args.keep_last,
            schedule=args.schedule,
            seed=args.seed,
            backoff_base=args.backoff,
            backend=args.backend,
        )
        print(f"model: {config}")
        print(f"parallel: {parallel.describe()}  schedule={args.schedule}  "
              f"backend={args.backend}")
        summary = (f"chaos plan: {len(plan.kills)} kills, "
                   f"{len(plan.corruptions)} corruptions, "
                   f"{len(plan.save_failures)} transient save failures")
        if plan.loss_spikes or plan.stalls:
            summary += (f", {len(plan.loss_spikes)} loss spikes, "
                        f"{len(plan.stalls)} stalls")
        print(summary)
        print(f"checkpoints: every {args.every} iterations, "
              f"keep last {args.keep_last}, under {directory}")
        print()
        logger = None
        runlog_ctx = contextlib.nullcontext()
        if args.monitor and not args.runlog:
            raise ValueError("--monitor needs --runlog DIR (the run log is "
                             "what the detectors watch)")
        if args.runlog:
            from repro.obs.runlog import RunRegistry, run_logging

            registry = RunRegistry(args.runlog)
            logger, log_fh = registry.create("chaos")
            stack.enter_context(contextlib.closing(log_fh))
            logger.start(
                "chaos",
                model={"layers": config.num_layers,
                       "hidden": config.hidden_size,
                       "heads": config.num_attention_heads,
                       "vocab": config.vocab_size,
                       "seq": config.seq_length},
                parallel={"p": parallel.pipeline_parallel_size,
                          "t": parallel.tensor_parallel_size,
                          "d": parallel.data_parallel_size,
                          "B": parallel.global_batch_size},
            )
            runlog_ctx = run_logging(logger)
        try:
            with trace() as tracer, runlog_ctx:
                report = harness.run()
        except Exception:
            if logger is not None and not logger.closed:
                logger.end("failed")
            raise
        if logger is not None:
            logger.end("completed")
            events_path = registry.events_path(logger.run_id)
            print(f"run log: {events_path} "
                  f"(tail with `python -m repro monitor --runs "
                  f"{args.runlog}`)")
        print(report.describe())
        if args.monitor:
            from repro.obs.monitor import run_monitor, score_run
            from repro.obs.runlog import read_events

            events = read_events(events_path)
            monitor = run_monitor(events)
            print()
            for alert in monitor.alerts:
                print(alert.describe())
            board = score_run(events, monitor.alerts)
            print()
            print(board.describe())
            if args.metrics_out:
                board.publish(tracer.metrics)
        if args.out:
            write_chrome_trace(tracer, args.out)
            print(f"\nwrote {args.out} ({len(tracer)} spans; recovery "
                  "phases are chaos.*)")
            print()
            print(phase_summary(tracer))
        if args.metrics_out:
            from repro.obs import write_metrics

            write_metrics(tracer, args.metrics_out)
            print(f"wrote {args.metrics_out}")

    if args.no_verify:
        return 0
    print()
    if not report.resharded:
        base_losses, base_state = run_baseline(
            config, parallel, total_iterations=args.iterations,
            schedule=args.schedule, seed=args.seed,
        )
        loss_ok = report.losses == base_losses
        state_ok = states_bit_equal(report.final_state, base_state)
        print(f"bit-exact vs uninterrupted run: losses={loss_ok}  "
              f"parameters={state_ok}")
        if not (loss_ok and state_ok):
            print("error: recovered run deviates from the uninterrupted "
                  "reference", file=sys.stderr)
            return 1
    else:
        restored = [r for r in report.records if r.kind == "restore"]
        reset_at = restored[0].at_iteration if restored else 0
        ref_losses, ref_state = run_reset_reference(
            config, args.batch, total_iterations=args.iterations,
            reset_at=reset_at, seed=args.seed,
        )
        loss_ok = bool(np.allclose(
            report.losses[reset_at:], ref_losses[reset_at:],
            rtol=1e-9, atol=1e-12,
        ))
        state_ok = all(
            np.allclose(report.final_state[k], ref_state[k],
                        rtol=1e-8, atol=1e-11)
            for k in ref_state if k != "head.tied"
        )
        print(f"resharded resume vs single-rank reference "
              f"(optimizer reset at {reset_at}): losses={loss_ok}  "
              f"parameters={state_ok}")
        if not (loss_ok and state_ok):
            print("error: resharded resume deviates from the single-rank "
                  "reference", file=sys.stderr)
            return 1
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.bench import (
        SCENARIOS,
        bench_metrics_registry,
        compare_reports,
        discover_suites,
        load_report,
        run_bench,
        write_report,
    )

    if args.compare:
        old_path, new_path = args.compare
        old, new = load_report(old_path), load_report(new_path)
        if old.env.as_dict() != new.env.as_dict():
            print("note: environment fingerprints differ between reports")
        result = compare_reports(old, new, min_rel=args.threshold)
        print(f"compare {old.label} ({old_path}) -> {new.label} ({new_path})")
        print(result.describe())
        return 0 if result.ok else 1

    if args.list:
        print("scenarios:")
        for name in sorted(SCENARIOS):
            sc = SCENARIOS[name]
            fast = "" if sc.fast else "  (skipped by --fast)"
            print(f"  {name}  [{sc.kind}]{fast}")
        suites = discover_suites()
        print(f"suites ({len(suites)} discovered, run with --suites):")
        for path in suites:
            print(f"  {path.name}")
        return 0

    report = run_bench(
        fast=args.fast,
        repeats=args.repeats,
        warmup=args.warmup,
        seed=args.seed,
        label=args.label,
        filter_substr=args.filter,
        suites=args.suites,
        backend=args.backend,
        progress=print,
    )
    if not report.records:
        print("error: no scenarios matched", file=sys.stderr)
        return 2
    print()
    header = (f"{'scenario':<32} {'median':>11} {'mad':>10} "
              f"{'ci95':>23} {'runs':>5}")
    print(header)
    print("-" * len(header))
    for rec in report.records:
        s = rec.stats
        ci = f"[{s.ci_low:.6f}, {s.ci_high:.6f}]"
        print(f"{rec.name:<32} {s.median:>11.6f} {s.mad:>10.6f} "
              f"{ci:>23} {len(s.samples):>5}")
        if rec.metrics:
            pairs = "  ".join(
                f"{k}={v:.6g}" for k, v in sorted(rec.metrics.items())
            )
            print(f"{'':<32} {pairs}")
    print("-" * len(header))
    env = report.env
    print(f"env: python={env.python} numpy={env.numpy} git={env.git_sha} "
          f"cpus={env.cpu_count} ({env.platform})")
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out} (schema v{report.schema_version}, "
              f"{len(report.records)} records)")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(bench_metrics_registry(report).to_json())
        print(f"wrote {args.metrics_out}")
    failed = [r for r in report.records
              if r.kind == "suite" and r.metrics.get("exit_code", 0) != 0]
    for rec in failed:
        print(f"error: suite {rec.name} exited non-zero", file=sys.stderr)
    return 1 if failed else 0


def _cmd_report(args) -> int:
    from repro.obs.bench import load_report
    from repro.obs.report import discover_reports, render_html, render_text

    if not args.files:
        # No explicit files: pick up every root-level BENCH_*.json,
        # ordered by creation time (shell glob order is lexicographic,
        # which scrambles the trajectory).
        reports = discover_reports(".")
        if not reports:
            print("no BENCH files given and none found in the current "
                  "directory -- nothing to report.")
            print("produce one with `python -m repro bench --fast "
                  "--out BENCH_baseline.json`, then render the "
                  "trajectory with `python -m repro report` (it "
                  "discovers BENCH_*.json, oldest first).")
            return 0
        print(f"discovered {len(reports)} BENCH files (ordered by "
              "creation time)")
    else:
        reports = [load_report(path) for path in args.files]
    print(render_text(reports))
    if len(reports) == 1:
        print()
        print("note: single report -- trend arrows appear once two or "
              "more BENCH files are given, oldest first.")
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(reports))
        print(f"\nwrote {args.html}")
    return 0


def _follow_monitor(path: str, acks: set[str], poll: float) -> int:
    """Live-tail one run log, re-rendering the dashboard per batch of
    events, until the run ends (``run-end`` observed)."""
    import time as _time

    from repro.obs.monitor import Monitor, render_dashboard
    from repro.obs.runlog import parse_events

    monitor = Monitor()
    pending = ""
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read()
            if chunk:
                pending += chunk
                lines = pending.split("\n")
                pending = lines.pop()  # hold back a partial tail line
                for event in parse_events(lines):
                    monitor.observe(event)
                # Clear + home, then the refreshed dashboard.
                print("\x1b[2J\x1b[H" + render_dashboard(monitor),
                      flush=True)
            if monitor.status != "running":
                break
            _time.sleep(poll)
    unack = monitor.unacknowledged_critical(acks)
    return 1 if unack else 0


def _cmd_monitor(args) -> int:
    from repro.obs.monitor import render_dashboard, run_monitor, score_run
    from repro.obs.runlog import RunRegistry, read_events

    registry = RunRegistry(args.runs)
    if args.list:
        infos = registry.list()
        if not infos:
            print(f"no runs under {args.runs}")
            return 0
        for info in infos:
            print(info.describe())
        latest = registry.latest()
        if latest is not None:
            print(f"LATEST -> {latest}")
        return 0
    if args.gc is not None:
        dropped = registry.gc(args.gc)
        if dropped:
            print(f"dropped {len(dropped)} runs: {', '.join(dropped)}")
        else:
            print("nothing to drop")
        return 0
    run_id = args.run or registry.latest()
    if run_id is None:
        raise ValueError(
            f"no runs under {args.runs} (and no RUN given); start one "
            "with `python -m repro chaos --fast --runlog "
            f"{args.runs}`"
        )
    path = registry.events_path(run_id)
    acks = set(args.ack or ())
    if args.follow:
        return _follow_monitor(path, acks, args.poll)
    events = read_events(path)
    monitor = run_monitor(events)
    if args.check:
        unack = monitor.unacknowledged_critical(acks)
        print(f"run {run_id}: {monitor.events_seen} events, "
              f"{len(monitor.alerts)} alerts, {len(unack)} critical "
              f"unacknowledged")
        for alert in monitor.alerts:
            suffix = ""
            if (alert.severity == "critical"
                    and monitor.acknowledged(alert, acks)):
                suffix = "  [ack]"
            print("  " + alert.describe() + suffix)
        if unack:
            print("error: unacknowledged critical alerts "
                  "(acknowledge with --ack DETECTOR)", file=sys.stderr)
            return 1
        return 0
    print(render_dashboard(monitor))
    if args.score or args.metrics_out:
        board = score_run(events, monitor.alerts)
        if args.score:
            print()
            print(board.describe())
        if args.metrics_out:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
            board.publish(metrics)
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(metrics.to_json())
            print(f"wrote {args.metrics_out}")
    return 0


def _cmd_serve(args) -> int:
    import contextlib
    import json

    import numpy as np

    from repro.config import tiny_test_model
    from repro.nn.generate import generate
    from repro.nn.transformer import GPTModel
    from repro.serve import (
        PagedKVCache,
        ServeEngine,
        load_trace,
        poisson_trace,
        save_trace,
        validate_serve_metrics,
    )

    config = tiny_test_model()
    model = GPTModel(config, seed=args.seed)
    if args.trace:
        trace = load_trace(args.trace)
    else:
        trace = poisson_trace(
            args.requests, args.rate, vocab_size=config.vocab_size,
            seed=args.seed, temperature=args.temperature, top_k=args.top_k,
            deadline_steps=args.deadline, queue_ttl=args.ttl,
        )
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"wrote {args.save_trace} ({len(trace)} requests)")
    plan = None
    if args.chaos_plan:
        from repro.resilience import ServeChaosPlan

        try:
            with open(args.chaos_plan, "r", encoding="utf-8") as fh:
                plan = ServeChaosPlan.from_json(fh.read())
        except (OSError, ValueError) as exc:
            print(f"error: --chaos-plan: {exc}", file=sys.stderr)
            return 2
    elif args.chaos:
        from repro.resilience import (
            AllocExhaustion,
            DecodeCrash,
            KVCorruption,
            ServeChaosPlan,
        )

        # Default storm: one of each fault class, early enough that the
        # tiny trace is still in flight when they land.
        plan = ServeChaosPlan(
            crashes=(DecodeCrash(at_step=1),),
            corruptions=(KVCorruption(at_step=4),),
            exhaustions=(AllocExhaustion(at_step=6, steps=3),),
        )
    checksums = plan is not None and bool(plan.corruptions)
    cache = PagedKVCache.for_model(
        model, num_blocks=args.blocks, block_size=args.block_size,
        checksums=checksums,
    )
    with contextlib.ExitStack() as stack:
        logger = None
        if args.runlog:
            from repro.obs.runlog import RunRegistry

            registry = RunRegistry(args.runlog)
            logger, log_fh = registry.create("serve")
            stack.enter_context(contextlib.closing(log_fh))
            logger.start(
                "serve",
                model={"layers": config.num_layers,
                       "hidden": config.hidden_size,
                       "heads": config.num_attention_heads,
                       "vocab": config.vocab_size,
                       "seq": config.seq_length},
                parallel={"p": 1, "t": 1, "d": 1, "B": 1},
                requests=len(trace),
            )
        engine = ServeEngine(
            model, cache, logger=logger, chaos=plan,
            max_queue=args.max_queue, shed_policy=args.shed,
        )
        report = engine.run(trace)
        if logger is not None:
            logger.end("completed")
            print(f"run log: {registry.events_path(logger.run_id)}")
    cache.assert_empty()
    metrics = report.to_dict()
    agg = metrics["aggregate"]
    print(f"model: {config}")
    print(f"cache: {args.blocks} blocks x {args.block_size} positions; "
          f"trace: {len(trace)} requests (rate {args.rate}/step, "
          f"seed {args.seed})")
    if plan is not None:
        print(f"chaos: {len(plan.crashes)} crashes, "
              f"{len(plan.corruptions)} corruptions, "
              f"{len(plan.exhaustions)} exhaustion storms"
              + ("; per-block checksums on" if checksums else ""))
    print()
    header = (f"{'request':<10} {'prompt':>6} {'gen':>4} {'ttft':>5} "
              f"{'latency':>8} {'preempt':>8} {'retry':>6}  outcome")
    print(header)
    print("-" * len(header))
    for req in report.requests:
        detail = req.outcome
        if req.outcome == "completed" and req.finish_reason:
            detail = f"completed ({req.finish_reason})"
        print(f"{req.request_id:<10} {req.prompt_tokens:>6} "
              f"{req.generated_tokens:>4} {str(req.ttft_steps):>5} "
              f"{str(req.latency_steps):>8} {req.preemptions:>8} "
              f"{req.retries:>6}  {detail}")
    print("-" * len(header))
    outcomes = agg["outcomes"]
    outcome_line = "  ".join(
        f"{name}={count}" for name, count in sorted(outcomes.items())
        if count
    )
    print(f"steps={agg['engine_steps']}  "
          f"generated={agg['total_generated_tokens']} tokens  "
          f"throughput={agg['tokens_per_s']:.1f} tok/s  "
          f"ttft p95={agg['ttft_steps_p95']}  "
          f"latency p95={agg['latency_steps_p95']}  "
          f"preemptions={agg['preemptions']}  "
          f"retries={agg['retries']}")
    print(f"outcomes: {outcome_line}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(metrics, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")
    failures = [f"metrics schema: {v}" for v in validate_serve_metrics(metrics)]
    if args.smoke:
        # Differential gate: every *completed* engine stream must equal
        # its single-request full-recompute oracle, token for token.
        # Typed degradation outcomes (timeout/rejected/cancelled/failed)
        # have no full stream to compare.
        completed = {r.request_id for r in report.requests
                     if r.outcome == "completed"}
        for req in trace:
            if req.request_id not in completed:
                continue
            oracle = generate(
                model, np.array(req.prompt), req.max_new_tokens,
                temperature=req.temperature, top_k=req.top_k,
                rng=np.random.default_rng(req.seed),
                stop_ids=set(req.stop_ids),
            )
            got = engine.outputs.get(req.request_id)
            if got is None or not np.array_equal(oracle, got):
                failures.append(
                    f"{req.request_id}: engine stream != generate oracle"
                )
        print(f"smoke: {len(completed)} completed streams checked "
              f"against the oracle, {len(failures)} violations")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_verify(args) -> int:
    from repro.verify import parse_case
    from repro.verify.runner import INJECT_MODES, run_verification

    schedule_json = None
    if args.schedule_json is not None:
        with open(args.schedule_json, "r", encoding="utf-8") as fh:
            schedule_json = fh.read()
    case = parse_case(args.case) if args.case else None
    report = run_verification(
        fast=args.fast,
        num_cases=args.configs,
        seed=args.seed,
        schedule_json=schedule_json,
        inject=args.inject,
        case=case,
        only=args.only,
    )
    print(report.describe())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Megatron-LM PTD-P (SC '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate one training iteration")
    _add_model_args(p_sim)
    p_sim.add_argument("-p", type=int, default=1, help="pipeline-parallel size")
    p_sim.add_argument("-t", type=int, default=1, help="tensor-parallel size")
    p_sim.add_argument("-d", type=int, default=1, help="data-parallel size")
    p_sim.add_argument("-b", type=int, default=1, help="microbatch size")
    p_sim.add_argument("--batch", type=int, required=True, help="global batch size")
    p_sim.add_argument("--chunks", type=int, default=1, help="model chunks (v)")
    p_sim.add_argument(
        "--schedule", default="1f1b",
        choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"],
    )
    p_sim.add_argument("--no-recompute", action="store_true")
    p_sim.add_argument("--no-scatter-gather", action="store_true")
    p_sim.add_argument("--no-fusion", action="store_true")
    p_sim.set_defaults(func=_cmd_simulate)

    p_sug = sub.add_parser("suggest", help="Takeaway-heuristic configuration")
    _add_model_args(p_sug)
    p_sug.add_argument("--gpus", type=int, required=True)
    p_sug.add_argument("--batch", type=int, required=True)
    p_sug.set_defaults(func=_cmd_suggest)

    p_auto = sub.add_parser("autotune", help="exhaustive configuration search")
    _add_model_args(p_auto)
    p_auto.add_argument("--gpus", type=int, required=True)
    p_auto.add_argument("--batch", type=int, required=True)
    p_auto.add_argument("--top", type=int, default=5)
    p_auto.set_defaults(func=_cmd_autotune)

    p_trace = sub.add_parser(
        "trace", help="trace one training iteration (Chrome-trace output)"
    )
    _add_model_args(p_trace)
    p_trace.add_argument("-p", type=int, default=1, help="pipeline-parallel size")
    p_trace.add_argument("-t", type=int, default=1, help="tensor-parallel size")
    p_trace.add_argument("-d", type=int, default=1, help="data-parallel size")
    p_trace.add_argument("-b", type=int, default=1, help="microbatch size")
    p_trace.add_argument("--batch", type=int, required=True, help="global batch size")
    p_trace.add_argument("--chunks", type=int, default=1, help="model chunks (v)")
    p_trace.add_argument(
        "--schedule", default="1f1b",
        choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"],
    )
    p_trace.add_argument(
        "--mode", default="engine", choices=["engine", "sim"],
        help="engine: run the numeric trainer (real bytes/FLOPs); "
             "sim: modelled timings from the discrete-event simulator",
    )
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome-trace output path")
    p_trace.add_argument("--metrics-out", "--metrics", dest="metrics_out",
                         default=None,
                         help="also dump the metrics registry as JSON "
                              "(shared schema across subcommands)")
    p_trace.add_argument("--profile", action="store_true",
                         help="print the span profiler's self/total "
                              "hot-path table")
    p_trace.add_argument("--top", type=int, default=10,
                         help="rows in the --profile table")
    p_trace.add_argument("--folded", default=None,
                         help="write folded stacks (flamegraph collapse "
                              "format) to this path")
    p_trace.add_argument(
        "--runlog", default=None, metavar="DIR",
        help="register the traced run under DIR and stream run-log "
             "events (iterations, heartbeats) into it",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.set_defaults(func=_cmd_trace)

    p_good = sub.add_parser(
        "goodput",
        help="checkpoint-interval sweep + goodput under a failure trace",
    )
    p_good.add_argument(
        "--preset", default="1t", choices=["1t", "530b", "175b"],
        help="model + cluster scenario (Table 1 flagship configs)",
    )
    p_good.add_argument(
        "--node-mtbf-hours", type=float, default=None,
        help="override the scenario's per-node MTBF",
    )
    p_good.add_argument("--points", type=int, default=25,
                        help="sweep points (log-spaced)")
    p_good.add_argument("--min-interval", type=float, default=None,
                        help="sweep lower bound, seconds (default 2x save)")
    p_good.add_argument("--max-interval", type=float, default=None,
                        help="sweep upper bound, seconds (default MTBF)")
    p_good.add_argument(
        "--failures", default=None,
        help="comma-separated failure iterations for the replayed trace "
             "(default: one per cluster-MTBF of useful time)",
    )
    p_good.add_argument("--iterations", type=int, default=None,
                        help="length of the replayed run, iterations")
    p_good.add_argument("--out", default=None,
                        help="write a Chrome trace of the replayed run")
    p_good.add_argument("--metrics-out", dest="metrics_out", default=None,
                        help="dump the replay's metrics registry as JSON "
                             "(shared schema across subcommands)")
    p_good.set_defaults(func=_cmd_goodput)

    p_bench = sub.add_parser(
        "bench",
        help="unified benchmark runner: BENCH_*.json trajectory + "
             "noise-aware regression gate",
    )
    p_bench.add_argument(
        "--fast", action="store_true",
        help="CI smoke: fewer repeats, fast-marked scenarios only",
    )
    p_bench.add_argument("--out", default=None,
                         help="write the BENCH_<label>.json report here")
    p_bench.add_argument("--label", default="run",
                         help="report label (baseline, pr, ...)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="steady-state samples per scenario "
                              "(default 7, or 3 with --fast)")
    p_bench.add_argument("--warmup", type=int, default=None,
                         help="trimmed warmup runs per scenario "
                              "(default 2, or 1 with --fast)")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="bootstrap resampling seed")
    p_bench.add_argument("--filter", default=None,
                         help="run only scenarios whose name contains this")
    p_bench.add_argument(
        "--suites", default=None, metavar="GLOB",
        help="also execute matching benchmarks/bench_*.py pytest suites "
             "as timed subprocess smoke runs ('*' for all)",
    )
    p_bench.add_argument("--list", action="store_true",
                         help="list scenarios and discovered suites, "
                              "then exit")
    p_bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="noise-aware regression gate between two BENCH files; "
             "exits 1 on regression",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative regression floor for --compare (default 0.10)",
    )
    p_bench.add_argument("--metrics-out", dest="metrics_out", default=None,
                         help="dump bench results in the shared "
                              "metrics-JSON schema")
    p_bench.add_argument(
        "--backend", default="coop", choices=["coop", "mp"],
        help="execution backend for the engine scenarios: coop "
             "(single-process cooperative oracle) or mp (real worker "
             "processes over shared memory)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_rep = sub.add_parser(
        "report",
        help="render the perf trajectory of one or more BENCH files",
    )
    p_rep.add_argument("files", nargs="*",
                       help="BENCH_*.json files, oldest first")
    p_rep.add_argument("--html", default=None,
                       help="also write a static HTML dashboard")
    p_rep.set_defaults(func=_cmd_report)

    p_ver = sub.add_parser(
        "verify",
        help="run the correctness-verification suite (exit 1 on violations)",
    )
    p_ver.add_argument(
        "--fast", action="store_true",
        help="reduced grids: 4 schedule configs, 6 conformance cases",
    )
    p_ver.add_argument(
        "--configs", type=int, default=None,
        help="number of sampled conformance configurations "
             "(default 25, or 6 with --fast)",
    )
    p_ver.add_argument("--seed", type=int, default=0,
                       help="seed for configuration sampling")
    p_ver.add_argument(
        "--schedule-json", default=None,
        help="also validate a schedule fixture (JSON, see "
             "repro.verify.schedule_to_json)",
    )
    p_ver.add_argument(
        "--only", default=None,
        choices=["schedules", "sanitizer", "conformance", "backend",
                 "conservation", "chaos", "serve", "serve-chaos"],
        help="run a single verification section",
    )
    p_ver.add_argument(
        "--case", default=None,
        help="run one conformance case, e.g. "
             "p=2,t=1,d=2,v=1,b=1,m=2,schedule=1f1b,recompute=0,zero=0,"
             "seed=5 (the format of printed repro strings)",
    )
    p_ver.add_argument(
        "--inject", default=None,
        choices=["reorder", "collective-shape", "grad-perturb"],
        help="self-test: inject a known defect and demand the verifier "
             "catches it (exits non-zero either way)",
    )
    p_ver.set_defaults(func=_cmd_verify)

    p_chaos = sub.add_parser(
        "chaos",
        help="supervised fault-tolerant training of the tiny model under "
             "live injected failures",
    )
    p_chaos.add_argument("-p", type=int, default=1, help="pipeline-parallel size")
    p_chaos.add_argument("-t", type=int, default=1, help="tensor-parallel size")
    p_chaos.add_argument("-d", type=int, default=2, help="data-parallel size")
    p_chaos.add_argument("-b", type=int, default=1, help="microbatch size")
    p_chaos.add_argument("--batch", type=int, default=4,
                         help="global batch size")
    p_chaos.add_argument(
        "--schedule", default="1f1b",
        choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"],
    )
    p_chaos.add_argument("--iterations", type=int, default=8,
                         help="iterations of real training")
    p_chaos.add_argument("--every", type=int, default=2,
                         help="checkpoint interval, iterations")
    p_chaos.add_argument("--keep-last", type=int, default=3,
                         help="checkpoint retention (last k snapshots)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="weights + per-iteration data seed")
    p_chaos.add_argument(
        "--plan", default=None,
        help="chaos plan JSON (kills/corruptions/save_failures); "
             "overrides the individual fault flags",
    )
    p_chaos.add_argument(
        "--kill-at", default=None,
        help="comma-separated iterations at which a rank failure is "
             "raised inside the live engine",
    )
    p_chaos.add_argument("--rank", type=int, default=0,
                         help="rank label for injected failures")
    p_chaos.add_argument(
        "--permanent", action="store_true",
        help="killed ranks are lost for good: recovery reshards onto a "
             "smaller parallel configuration",
    )
    p_chaos.add_argument(
        "--corrupt", default=None,
        help="comma-separated iterations whose committed checkpoint is "
             "damaged on disk after commit",
    )
    p_chaos.add_argument("--corrupt-file", default="model.npz",
                         help="which checkpoint file to damage")
    p_chaos.add_argument("--corrupt-mode", default="flip",
                         choices=["flip", "truncate", "delete"])
    p_chaos.add_argument(
        "--save-fail", default=None,
        help="comma-separated k[:times] entries: the checkpoint save at "
             "iteration k fails transiently `times` times",
    )
    p_chaos.add_argument(
        "--loss-spike", default=None,
        help="comma-separated iterations whose *reported* loss is blown "
             "up (telemetry-layer fault; training is untouched)",
    )
    p_chaos.add_argument(
        "--stall", default=None,
        help="comma-separated k[:rank] entries: stall the reported "
             "telemetry at iteration k -- whole-job without :rank "
             "(throughput collapse), one replica with it (straggler)",
    )
    p_chaos.add_argument("--stall-seconds", type=float, default=5.0,
                         help="reported stall duration per --stall entry")
    p_chaos.add_argument(
        "--runlog", default=None, metavar="DIR",
        help="register this run under DIR (runs/<id>/events.jsonl + "
             "LATEST pointer) and stream run-log events into it",
    )
    p_chaos.add_argument(
        "--monitor", action="store_true",
        help="after the run, replay its run log through the anomaly "
             "detectors and print the alert feed + detector scoreboard "
             "(precision/recall/latency vs the injected ground truth); "
             "needs --runlog",
    )
    p_chaos.add_argument("--backoff", type=float, default=0.05,
                         help="base save-retry backoff, seconds (doubles "
                              "per attempt, capped)")
    p_chaos.add_argument(
        "--backend", default="coop", choices=["coop", "mp"],
        help="execution backend for the trained model: coop (in-process "
             "oracle) or mp (real worker processes; the harness closes "
             "and re-spawns them across kills, leaking no /dev/shm "
             "segments)",
    )
    p_chaos.add_argument("--dir", default=None,
                         help="checkpoint root (default: a temp dir)")
    p_chaos.add_argument("--out", default=None,
                         help="write a Chrome trace of the run, including "
                              "failure/recovery spans")
    p_chaos.add_argument("--metrics-out", dest="metrics_out", default=None,
                         help="dump the run's metrics registry as JSON "
                              "(shared schema across subcommands)")
    p_chaos.add_argument(
        "--fast", action="store_true",
        help="CI smoke: inject one kill + one corruption + one transient "
             "save failure unless faults are given explicitly",
    )
    p_chaos.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-exactness comparison against the "
             "uninterrupted reference run",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="continuous-batching inference on the tiny model: paged KV "
             "cache, FIFO admission, preemption, SLO metrics",
    )
    p_serve.add_argument("--requests", type=int, default=8,
                         help="requests in the generated Poisson trace")
    p_serve.add_argument("--rate", type=float, default=0.7,
                         help="mean arrivals per engine step")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="weights + trace + per-request sampling seed")
    p_serve.add_argument("--temperature", type=float, default=0.0,
                         help="sampling temperature (0 = greedy)")
    p_serve.add_argument("--top-k", type=int, default=None,
                         help="top-k sampling cutoff")
    p_serve.add_argument("--blocks", type=int, default=4,
                         help="KV-cache pool size, blocks (small values "
                              "force preemption)")
    p_serve.add_argument("--block-size", type=int, default=3,
                         help="token positions per cache block")
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="replay a saved trace JSON instead of "
                              "generating one")
    p_serve.add_argument("--save-trace", default=None, metavar="PATH",
                         help="write the generated trace JSON (replay it "
                              "with --trace)")
    p_serve.add_argument("--metrics-out", dest="metrics_out", default=None,
                         help="write the per-request TTFT/latency/"
                              "throughput metrics JSON")
    p_serve.add_argument(
        "--runlog", default=None, metavar="DIR",
        help="register the run under DIR and stream request lifecycle + "
             "iteration events into it",
    )
    p_serve.add_argument(
        "--deadline", type=int, default=None, metavar="STEPS",
        help="per-request deadline in engine steps past arrival; "
             "overdue requests finish with outcome=timeout",
    )
    p_serve.add_argument(
        "--ttl", type=int, default=None, metavar="STEPS",
        help="queue TTL: requests never admitted within STEPS of "
             "arrival time out in the queue",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="bound the never-admitted waiting queue at N; overflow is "
             "shed per --shed with outcome=rejected",
    )
    p_serve.add_argument(
        "--shed", default="reject-newest",
        choices=["reject-newest", "edf"],
        help="shedding policy for a full queue: drop the newcomer, or "
             "the entry with the latest deadline (earliest-deadline-"
             "first keeps the tightest SLOs)",
    )
    p_serve.add_argument(
        "--chaos", action="store_true",
        help="inject the default fault storm (decode crash + KV-block "
             "corruption + allocator-exhaustion storm) with supervised "
             "recovery; enables per-block cache checksums",
    )
    p_serve.add_argument(
        "--chaos-plan", default=None, metavar="PATH",
        help="inject a ServeChaosPlan JSON (crashes/corruptions/"
             "exhaustions) instead of the default storm",
    )
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="CI gate: validate the SLO-metrics schema and check every "
             "completed engine stream against the generate oracle; exit "
             "non-zero on any violation",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_mon = sub.add_parser(
        "monitor",
        help="mission control: dashboard / batch health check over a "
             "registered run log",
    )
    p_mon.add_argument(
        "run", nargs="?", default=None,
        help="run id under --runs (default: the LATEST pointer)",
    )
    p_mon.add_argument("--runs", default="runs",
                       help="run registry root (default: runs/)")
    p_mon.add_argument("--list", action="store_true",
                       help="list registered runs and exit")
    p_mon.add_argument("--gc", type=int, default=None, metavar="KEEP",
                       help="drop all but the newest KEEP runs and exit")
    p_mon.add_argument(
        "--check", action="store_true",
        help="batch mode: print the alert feed and exit 1 if any "
             "critical alert is unacknowledged (CI gate)",
    )
    p_mon.add_argument(
        "--ack", action="append", default=None, metavar="DETECTOR",
        help="acknowledge every alert from this detector (repeatable); "
             "in-log `ack` events count too",
    )
    p_mon.add_argument(
        "--follow", action="store_true",
        help="live-tail the run log, re-rendering the dashboard until "
             "the run ends",
    )
    p_mon.add_argument("--poll", type=float, default=0.5,
                       help="--follow poll interval, seconds")
    p_mon.add_argument(
        "--score", action="store_true",
        help="print the detector scoreboard (needs injected ground "
             "truth, i.e. a chaos run log)",
    )
    p_mon.add_argument("--metrics-out", dest="metrics_out", default=None,
                       help="dump the scoreboard in the shared "
                            "metrics-JSON schema")
    p_mon.set_defaults(func=_cmd_monitor)

    p_sched = sub.add_parser("schedule", help="render a schedule timeline")
    p_sched.add_argument(
        "name", choices=["gpipe", "1f1b", "interleaved", "interleaved-gpipe"]
    )
    p_sched.add_argument("-p", type=int, default=4)
    p_sched.add_argument("-m", type=int, default=8)
    p_sched.add_argument("--chunks", type=int, default=2)
    p_sched.set_defaults(func=_cmd_schedule)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
