"""Timing model for ZeRO-3 training (§5.2, Table 2, Figure 10).

ZeRO-3 without model parallelism: ``d = n`` data-parallel ranks, each
holding 1/d of every parameter.  Per iteration each rank

- all-gathers parameters for the forward pass,
- all-gathers them again for the recomputation+backward pass,
- reduce-scatters gradients,

a per-rank volume of ``3 (d-1)/d * 2P`` bytes (fp16), essentially all of
it crossing nodes.  DeepSpeed overlaps prefetches with compute; we model
a fixed overlappable fraction.  The §5.2 dynamics follow: at the minimum
GPU count the compute time still hides most communication, but doubling
GPUs halves per-rank compute while the gather volume stays ~constant,
so ZeRO-3's throughput per GPU collapses while PTD-P's does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm import CommCostModel
from repro.config import GPTConfig
from repro.hardware import (
    ComputeModel,
    NodeSpec,
    cluster_for_gpus,
    dgx_a100,
)
from repro.perf.layer_costs import stage_compute_cost
from repro.perf.memory import MODEL_STATE_BYTES_PER_PARAM


@dataclass(frozen=True)
class ZeroSimResult:
    """Timing of one ZeRO-3 iteration."""

    iteration_time: float
    compute_time: float
    comm_time_exposed: float
    comm_time_total: float
    model_flops: int
    num_gpus: int
    global_batch_size: int
    seq_length: int
    peak_flops: float

    @property
    def tflops_per_gpu(self) -> float:
        return self.model_flops / self.num_gpus / self.iteration_time / 1e12

    @property
    def peak_fraction(self) -> float:
        return self.tflops_per_gpu * 1e12 / self.peak_flops


def simulate_zero3_iteration(
    config: GPTConfig,
    num_gpus: int,
    global_batch_size: int,
    microbatch_size: int,
    *,
    node: NodeSpec | None = None,
    param_dtype_size: int = 2,
    overlap_fraction: float = 0.3,
    fused: bool = True,
    recompute: bool = True,
) -> ZeroSimResult:
    """Simulate one ZeRO-3 iteration (no model parallelism, d = n)."""
    node = node or dgx_a100()
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    if global_batch_size % (num_gpus * microbatch_size) != 0:
        raise ValueError(
            f"batch {global_batch_size} not divisible by n*b = "
            f"{num_gpus * microbatch_size}"
        )
    if not 0 <= overlap_fraction < 1:
        raise ValueError("overlap_fraction must be in [0, 1)")
    topo = cluster_for_gpus(num_gpus, node)
    compute = ComputeModel(device=node.device)
    comm = CommCostModel(topo)

    d = num_gpus
    m = global_batch_size // (d * microbatch_size)
    # Compute: m microbatches through the whole model on each rank.
    per_mb = stage_compute_cost(
        compute, config, config.num_layers, microbatch_size, 1,
        is_first=True, is_last=True, fused=fused, recompute=recompute,
    )
    compute_time = m * per_mb.total

    # Communication: 2 all-gathers + 1 reduce-scatter of the fp16
    # parameters per iteration, executed layer-by-layer (one latency
    # term per layer per pass).
    P = config.num_parameters()
    param_bytes = P * param_dtype_size
    ranks = list(range(d))
    # Flat (non-hierarchical) rings: every rank ingests nearly the full
    # parameter set through its own single HCA -- the gather pattern of
    # the ZeRO-3 implementation the paper benchmarked, and the source of
    # its cross-node bottleneck.
    gather = comm.all_gather_time(ranks, param_bytes, channels=1)
    rs = comm.reduce_scatter_time(ranks, param_bytes, channels=1)
    per_layer_latency = 3 * config.num_layers * node.ib_latency * max(
        1, d // node.gpus_per_node
    )
    comm_total = 2 * gather + rs + per_layer_latency

    exposed = max(0.0, comm_total - overlap_fraction * compute_time)
    # Sharded optimizer step: memory pass over this rank's state shard.
    opt_time = compute.memory_time(P / d * MODEL_STATE_BYTES_PER_PARAM)
    iteration = compute_time + exposed + opt_time
    flops = config.flops_per_iteration(global_batch_size, with_recompute=recompute)
    return ZeroSimResult(
        iteration_time=iteration,
        compute_time=compute_time,
        comm_time_exposed=exposed,
        comm_time_total=comm_total,
        model_flops=flops,
        num_gpus=num_gpus,
        global_batch_size=global_batch_size,
        seq_length=config.seq_length,
        peak_flops=node.device.peak_flops,
    )
