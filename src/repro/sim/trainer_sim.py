"""Discrete-event simulation of one PTD-P training iteration.

Executes a pipeline schedule over a modelled cluster:

- **compute**: each (stage, microbatch) forward/backward is priced by
  the roofline kernel model (:mod:`repro.perf.layer_costs`), including
  the tensor-parallel all-reduce time serialized inside each layer
  (2 per layer per direction, §2.3; recomputation repeats the forward
  ones);
- **pipeline p2p**: every cross-device dependency edge of the schedule
  pays the stage-boundary transfer (``b s h`` at fp16), optionally with
  the §4.1 scatter/gather optimization;
- **data parallelism**: one gradient ring all-reduce per iteration over
  the data-parallel group, after the pipeline flush, plus the tied
  embedding all-reduce between first and last stages;
- **optimizer**: a memory-bound pass over the rank's model state.

List scheduling is exact for this system: per-device op order is fixed
by the schedule, so each op starts at max(device free, dependencies
done + transfer time).

The simulated timeline yields iteration time, from which the paper's
metrics follow: achieved Tflop/s per GPU (eq. (3) FLOPs / n / time),
sequences per second, and the compute/bubble/communication breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm import CommCostModel, ProcessGroups
from repro.config import GPTConfig, ParallelConfig
from repro.hardware import (
    ClusterTopology,
    ComputeModel,
    NodeSpec,
    cluster_for_gpus,
    dgx_a100,
)
from repro.obs.runlog import current_run_logger
from repro.obs.tracer import GLOBAL_RANK, current_tracer
from repro.perf.layer_costs import stage_compute_cost
from repro.perf.memory import MODEL_STATE_BYTES_PER_PARAM, parameters_per_rank
from repro.schedule import (
    OpKind,
    PipelineSchedule,
    TimedOp,
    dependencies,
    make_schedule,
    resolve,
)


@dataclass(frozen=True)
class SimTimedOp(TimedOp):
    """A simulated-timeline window that carries its op identity.

    Extends the schedule-level :class:`~repro.schedule.TimedOp`
    (rank, op, start, end) with the resolved global ``stage`` and the
    p2p communication time folded into the window, so exporters and
    the timeline renderer can label windows without re-resolving the
    schedule.
    """

    stage: int = 0
    comm_time: float = 0.0

    @property
    def kind(self) -> OpKind:
        return self.op.kind

    @property
    def microbatch(self) -> int:
        return self.op.microbatch


@dataclass(frozen=True)
class SimOptions:
    """Simulation switches (the paper's implementation options).

    ``compute_slowdown`` and ``bandwidth_derate`` are the fault-
    injection hooks used by :mod:`repro.resilience.faults`: training is
    synchronous, so a straggling rank paces every iteration — the
    slowdown multiplies compute and optimizer time (communication is
    priced separately, and degraded links are ``bandwidth_derate``'s
    job, applied to every bandwidth term of the comm cost model).
    """

    schedule_name: str = "1f1b"
    fused_kernels: bool = True
    recompute_activations: bool = True
    scatter_gather: bool = True
    grad_dtype_size: int = 2  # fp16 gradient all-reduce
    activation_dtype_size: int = 2
    overlap_p2p: bool = False  # paper: sends/recvs in parallel w/ compute
    tp_channels: int = 2  # NCCL channels for per-layer TP collectives
    collect_timeline: bool = False  # keep per-op SimTimedOp windows
    compute_slowdown: float = 1.0  # straggler multiplier (>= 1)
    bandwidth_derate: float = 1.0  # link health factor in (0, 1]

    def __post_init__(self) -> None:
        if self.compute_slowdown < 1:
            raise ValueError(
                f"compute_slowdown must be >= 1, got {self.compute_slowdown}"
            )
        if not 0 < self.bandwidth_derate <= 1:
            raise ValueError(
                f"bandwidth_derate must be in (0, 1], got {self.bandwidth_derate}"
            )


@dataclass
class SimulationResult:
    """Timing and throughput of one training iteration."""

    iteration_time: float
    pipeline_time: float
    data_parallel_time: float
    optimizer_time: float
    compute_time_per_rank: list[float]
    p2p_time_total: float
    tp_comm_time_total: float
    model_flops: int
    num_gpus: int
    global_batch_size: int
    seq_length: int
    peak_flops: float
    extras: dict = field(default_factory=dict)

    @property
    def tflops_per_gpu(self) -> float:
        """Achieved model Tflop/s per GPU (the paper's Table-1 metric)."""
        return self.model_flops / self.num_gpus / self.iteration_time / 1e12

    @property
    def peak_fraction(self) -> float:
        return self.tflops_per_gpu * 1e12 / self.peak_flops

    @property
    def aggregate_pflops(self) -> float:
        return self.tflops_per_gpu * self.num_gpus / 1e3

    @property
    def sequences_per_second(self) -> float:
        return self.global_batch_size / self.iteration_time

    @property
    def tokens_per_second(self) -> float:
        return self.sequences_per_second * self.seq_length

    @property
    def bubble_fraction(self) -> float:
        """Mean idle fraction of the pipeline phase across ranks."""
        if self.pipeline_time == 0:
            return 0.0
        busy = sum(self.compute_time_per_rank) / len(self.compute_time_per_rank)
        return max(0.0, 1.0 - busy / self.pipeline_time)


def simulate_iteration(
    config: GPTConfig,
    parallel: ParallelConfig,
    *,
    options: SimOptions | None = None,
    node: NodeSpec | None = None,
    topology: ClusterTopology | None = None,
) -> SimulationResult:
    """Simulate one training iteration of ``config`` under ``parallel``."""
    options = options or SimOptions()
    node = node or dgx_a100()
    parallel.validate_for_model(config)
    n = parallel.world_size
    topo = topology or cluster_for_gpus(max(n, 1), node)
    compute = ComputeModel(device=node.device)
    comm = CommCostModel(topo, bandwidth_derate=options.bandwidth_derate)
    groups = ProcessGroups(parallel)

    p, t, d, v = parallel.p, parallel.t, parallel.d, parallel.v
    m = parallel.num_microbatches
    b, s, h = parallel.b, config.seq_length, config.hidden_size
    schedule = make_schedule(options.schedule_name, p, m, v)

    # -- per-stage compute + TP-collective durations -----------------------
    layers_per_stage = config.num_layers // (p * v)
    tp_ranks = groups.tensor_group(pp=0, dp=0)
    boundary_bytes = b * s * h * options.activation_dtype_size
    tp_ar_bytes = boundary_bytes  # each of the 2 per-layer all-reduces
    # Per-layer TP collectives are latency-bound and run on few NCCL
    # channels when the group spans nodes -- they cannot saturate the
    # node's 8 HCAs the way the fused DP gradient buffer does.
    tp_ar_time = (
        comm.all_reduce_time(tp_ranks, tp_ar_bytes, channels=options.tp_channels)
        if t > 1
        else 0.0
    )

    fwd_dur: dict[int, float] = {}
    bwd_dur: dict[int, float] = {}
    fwd_tp: dict[int, float] = {}
    bwd_tp: dict[int, float] = {}
    total_stages = p * v
    for g in range(total_stages):
        cost = stage_compute_cost(
            compute,
            config,
            layers_per_stage,
            b,
            t,
            is_first=(g == 0),
            is_last=(g == total_stages - 1),
            fused=options.fused_kernels,
            recompute=options.recompute_activations,
        )
        f_tp = 2 * layers_per_stage * tp_ar_time
        bwd_ars = 2 + (2 if options.recompute_activations else 0)
        b_tp = bwd_ars * layers_per_stage * tp_ar_time
        fwd_dur[g] = cost.forward * options.compute_slowdown + f_tp
        bwd_dur[g] = cost.backward * options.compute_slowdown + b_tp
        fwd_tp[g] = f_tp
        bwd_tp[g] = b_tp

    # -- pipeline ranks (dp=0, tp=0 representative pipeline) ---------------
    pipe_ranks = groups.pipeline_group(dp=0, tp=0)

    def stage_rank(stage: int) -> int:
        return pipe_ranks[stage % p]

    def edge_time(src_stage: int, dst_stage: int) -> float:
        src, dst = stage_rank(src_stage), stage_rank(dst_stage)
        if src == dst:
            return 0.0
        return comm.pipeline_p2p_time(
            src, dst, boundary_bytes, t, scatter_gather=options.scatter_gather
        )

    # Transfers occupy both endpoints (synchronous, non-overlapped p2p,
    # as in Megatron's interleaved schedule): the producing op's
    # duration grows by its send and the consuming op's by its receive.
    # The §4.1 scatter/gather optimization shrinks exactly these terms
    # on inter-node hops.
    send_fwd = {
        g: edge_time(g, g + 1) if g + 1 < total_stages else 0.0
        for g in range(total_stages)
    }
    send_bwd = {
        g: edge_time(g, g - 1) if g > 0 else 0.0
        for g in range(total_stages)
    }
    recv_fwd = {
        g: edge_time(g - 1, g) if g > 0 else 0.0 for g in range(total_stages)
    }
    recv_bwd = {
        g: edge_time(g + 1, g) if g + 1 < total_stages else 0.0
        for g in range(total_stages)
    }
    if options.overlap_p2p:
        send_fwd = {g: 0.0 for g in send_fwd}
        send_bwd = {g: 0.0 for g in send_bwd}
        recv_fwd = {g: 0.0 for g in recv_fwd}
        recv_bwd = {g: 0.0 for g in recv_bwd}

    # -- list-schedule the ops ---------------------------------------------
    tracer = current_tracer()
    finish: dict = {}
    pointers = [0] * p
    device_free = [0.0] * p
    busy = [0.0] * p
    p2p_total = 0.0
    collect = options.collect_timeline or tracer is not None
    timeline: list[SimTimedOp] | None = [] if collect else None
    total_ops = sum(len(r) for r in schedule.ops)
    done_ops = 0
    while done_ops < total_ops:
        progressed = False
        for rank in range(p):
            while pointers[rank] < len(schedule.ops[rank]):
                op = schedule.ops[rank][pointers[rank]]
                inst = resolve(schedule, rank, op)
                deps = dependencies(schedule, inst)
                if any(dp_ not in finish for dp_ in deps):
                    break
                ready = device_free[rank]
                for dep in deps:
                    ready = max(ready, finish[dep])
                if op.kind is OpKind.FORWARD:
                    comm_dur = recv_fwd[inst.stage] + send_fwd[inst.stage]
                    dur = fwd_dur[inst.stage] + comm_dur
                else:
                    comm_dur = recv_bwd[inst.stage] + send_bwd[inst.stage]
                    dur = bwd_dur[inst.stage] + comm_dur
                p2p_total += comm_dur
                end = ready + dur
                finish[inst] = end
                device_free[rank] = end
                busy[rank] += dur
                if timeline is not None:
                    timeline.append(
                        SimTimedOp(
                            rank, op, ready, end,
                            stage=inst.stage, comm_time=comm_dur,
                        )
                    )
                pointers[rank] += 1
                done_ops += 1
                progressed = True
        if not progressed:  # pragma: no cover - schedules are validated
            raise RuntimeError("simulation deadlocked")
    pipeline_time = max(device_free)

    # -- data-parallel gradient all-reduce + embedding sync -----------------
    params_rank = parameters_per_rank(config, parallel)
    dp_time = 0.0
    if d > 1:
        dp_ranks = groups.data_group(pp=0, tp=0)
        dp_time = comm.all_reduce_time(
            dp_ranks, params_rank * options.grad_dtype_size
        )
    embed_time = 0.0
    if p > 1:
        emb_bytes = (
            config.vocab_size // t * h * options.grad_dtype_size
        )
        embed_time = comm.all_reduce_time(
            [pipe_ranks[0], pipe_ranks[-1]], emb_bytes
        )

    # -- optimizer step: memory-bound pass over the model state -------------
    opt_time = (
        compute.memory_time(params_rank * MODEL_STATE_BYTES_PER_PARAM)
        * options.compute_slowdown
    )

    tp_comm_total = sum(
        m * (fwd_tp[g] + bwd_tp[g]) for g in range(total_stages)
    )
    iteration_time = pipeline_time + dp_time + embed_time + opt_time
    model_flops = config.flops_per_iteration(
        parallel.global_batch_size,
        with_recompute=options.recompute_activations,
    )

    # -- emit the simulated timeline as spans (modelled clock) --------------
    if tracer is not None and timeline is not None:
        phase_of = {OpKind.FORWARD: "forward", OpKind.BACKWARD: "backward"}
        for w in timeline:
            tracer.add_span(
                str(w.op),
                phase=phase_of[w.kind],
                rank=stage_rank(w.stage),
                start=w.start,
                end=w.end,
                microbatch=w.microbatch,
                chunk=w.op.chunk,
                stage=w.stage,
                comm_time=w.comm_time,
                tp_time=(fwd_tp if w.kind is OpKind.FORWARD else bwd_tp)[w.stage],
            )
        t0 = pipeline_time
        if d > 1:
            tracer.add_span(
                "grad-allreduce", phase="grad-allreduce", rank=GLOBAL_RANK,
                start=t0, end=t0 + dp_time,
                bytes=params_rank * options.grad_dtype_size, group=d,
            )
        if p > 1:
            tracer.add_span(
                "tied-embedding-allreduce", phase="grad-allreduce",
                rank=GLOBAL_RANK,
                start=t0 + dp_time, end=t0 + dp_time + embed_time,
            )
        tracer.add_span(
            "optimizer", phase="optimizer", rank=GLOBAL_RANK,
            start=t0 + dp_time + embed_time, end=iteration_time,
            bytes=params_rank * MODEL_STATE_BYTES_PER_PARAM,
        )
        tracer.add_span(
            "iteration", phase="iteration", rank=GLOBAL_RANK,
            start=0.0, end=iteration_time, flops=model_flops,
        )
        tracer.metrics.gauge("sim.iteration_time").set(iteration_time)
        tracer.metrics.gauge("sim.pipeline_time").set(pipeline_time)
        tracer.metrics.counter("sim.model_flops").inc(model_flops)

        # -- Table-1 throughput telemetry (simulated clock) -----------------
        from repro.obs.telemetry import (
            MemoryBreakdown,
            sample_memory,
            sample_throughput,
            throughput_report,
        )

        sample_throughput(
            tracer,
            throughput_report(
                config, parallel, iteration_time,
                peak_flops=node.device.peak_flops,
                with_recompute=options.recompute_activations,
            ),
            t=iteration_time,
        )

        # -- per-rank memory timelines (activation sawtooth) ----------------
        # Each forward window stashes one microbatch's activations for
        # its stage (only the stage input survives under recompute,
        # §3.3); the matching backward frees them.  Model state is
        # constant for the iteration.
        from repro.perf.memory import (
            activation_bytes_per_layer,
            stage_input_bytes,
        )

        if options.recompute_activations:
            stash_bytes = stage_input_bytes(
                b, s, h, dtype_size=options.activation_dtype_size
            )
        else:
            stash_bytes = layers_per_stage * activation_bytes_per_layer(
                b, s, h, config.num_attention_heads, t,
                dtype_size=options.activation_dtype_size,
            )
        breakdown = MemoryBreakdown(params_rank)
        stashed = {r: 0 for r in pipe_ranks}
        for r in pipe_ranks:
            sample_memory(tracer, breakdown, 0, rank=r, t=0.0)
        for w in sorted(timeline, key=lambda w: (w.end, w.start)):
            r = stage_rank(w.stage)
            delta = stash_bytes if w.kind is OpKind.FORWARD else -stash_bytes
            stashed[r] += delta
            tracer.sample("mem.activations.bytes", stashed[r], rank=r, t=w.end)

    # -- run-log iteration record (modelled clock) --------------------------
    runlog = current_run_logger()
    if runlog is not None:
        it = runlog.iterations_logged
        runlog.heartbeat(range(n), it)
        runlog.iteration(
            it, loss=None, seconds=iteration_time,
            tokens_per_s=parallel.global_batch_size * s / iteration_time,
            mfu=model_flops / n / iteration_time / node.device.peak_flops,
            rank_busy={pipe_ranks[r]: busy[r] for r in range(p)},
        )

    return SimulationResult(
        iteration_time=iteration_time,
        pipeline_time=pipeline_time,
        data_parallel_time=dp_time + embed_time,
        optimizer_time=opt_time,
        compute_time_per_rank=busy,
        p2p_time_total=p2p_total,
        tp_comm_time_total=tp_comm_total,
        model_flops=model_flops,
        num_gpus=n,
        global_batch_size=parallel.global_batch_size,
        seq_length=s,
        peak_flops=node.device.peak_flops,
        extras={
            "schedule": options.schedule_name,
            "m": m,
            "layers_per_stage": layers_per_stage,
            "timeline": (
                tuple(timeline) if options.collect_timeline else None
            ),
            "pipeline_schedule": schedule,
        },
    )


def render_simulated_timeline(result: SimulationResult) -> str:
    """ASCII timeline of a simulation run with ``collect_timeline=True``.

    Unlike the unit-time Figure 3/4 renders, this shows *modelled*
    durations: backward boxes are visibly longer than forward ones, p2p
    time stretches the boxes, and the warm-up/cool-down bubble appears
    to scale.
    """
    from repro.schedule.execution import Timeline
    from repro.schedule.visualize import render_timeline

    ops = result.extras.get("timeline")
    schedule = result.extras.get("pipeline_schedule")
    if not ops or schedule is None:
        raise ValueError(
            "simulation was not run with SimOptions(collect_timeline=True)"
        )
    tl = Timeline(schedule=schedule, ops=tuple(ops),
                  makespan=max(t.end for t in ops))
    header = (
        f"simulated timeline: makespan={tl.makespan:.3f}s  "
        f"bubble={tl.bubble_fraction():.3f}"
    )
    return header + "\n" + render_timeline(tl)
