"""Discrete-event performance simulation of PTD-P and ZeRO-3 training."""

from .trainer_sim import (
    SimOptions,
    SimTimedOp,
    SimulationResult,
    render_simulated_timeline,
    simulate_iteration,
)
from .zero_sim import ZeroSimResult, simulate_zero3_iteration

__all__ = [
    "SimOptions",
    "SimTimedOp",
    "SimulationResult",
    "simulate_iteration",
    "render_simulated_timeline",
    "ZeroSimResult",
    "simulate_zero3_iteration",
]
