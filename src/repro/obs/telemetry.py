"""First-class throughput telemetry: tokens/s, TFLOP/s-per-GPU, MFU.

The paper's Table 1 reports achieved teraFLOP/s per GPU and the
fraction of the A100's 312 teraFLOP/s peak — 52% for the 1T-parameter
configuration.  This module computes exactly that accounting from any
measured or simulated iteration time:

    tflops_per_gpu = flops_per_iteration / n / seconds / 1e12
    mfu            = achieved_flops_per_gpu / peak_flops

``flops_per_iteration`` is the eq. (3) closed form from
:meth:`repro.config.GPTConfig.flops_per_iteration` — the same integer
the ``repro.verify`` FLOP-conservation check validates against the
FlopMeter, so trainer MFU, simulator MFU, and the analytic model are
all derived from one number.

Both :class:`~repro.parallel.trainer.PTDTrainer` and
:func:`~repro.sim.trainer_sim.simulate_iteration` publish a
:class:`ThroughputReport` into the active tracer's
:class:`~repro.obs.metrics.MetricsRegistry` under ``throughput.*``
gauges and as counter samples (Chrome ``ph: "C"``), so MFU renders as
a timeline next to the spans in Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPTConfig, ParallelConfig

from .metrics import MetricsRegistry
from .tracer import GLOBAL_RANK, Tracer


@dataclass(frozen=True)
class ThroughputReport:
    """One iteration's throughput accounting (Table 1 metrics)."""

    seconds: float
    flops: int           # eq. (3) model FLOPs for the global batch
    num_gpus: int
    global_batch_size: int
    seq_length: int
    peak_flops: float    # per-GPU hardware peak (flop/s)

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.peak_flops <= 0:
            raise ValueError(f"peak_flops must be > 0, got {self.peak_flops}")

    @property
    def tokens_per_second(self) -> float:
        return self.global_batch_size * self.seq_length / self.seconds

    @property
    def flops_per_second_per_gpu(self) -> float:
        return self.flops / self.num_gpus / self.seconds

    @property
    def tflops_per_gpu(self) -> float:
        """Achieved model TFLOP/s per GPU — the paper's Table 1 column."""
        return self.flops_per_second_per_gpu / 1e12

    @property
    def mfu(self) -> float:
        """Model FLOPs utilization: achieved / peak, in [0, ...)."""
        return self.flops_per_second_per_gpu / self.peak_flops

    def publish(self, metrics: MetricsRegistry, prefix: str = "throughput") -> None:
        """Export the report as ``<prefix>.*`` gauges."""
        metrics.gauge(f"{prefix}.iteration_seconds").set(self.seconds)
        metrics.gauge(f"{prefix}.tokens_per_s").set(self.tokens_per_second)
        metrics.gauge(f"{prefix}.tflops_per_gpu").set(self.tflops_per_gpu)
        metrics.gauge(f"{prefix}.mfu").set(self.mfu)
        metrics.gauge(f"{prefix}.model_flops").set(float(self.flops))
        metrics.gauge(f"{prefix}.num_gpus").set(float(self.num_gpus))
        metrics.gauge(f"{prefix}.peak_flops").set(self.peak_flops)


def throughput_report(
    config: GPTConfig,
    parallel: ParallelConfig,
    seconds: float,
    *,
    peak_flops: float,
    with_recompute: bool = True,
) -> ThroughputReport:
    """Build the Table-1 accounting for one iteration of ``config``."""
    return ThroughputReport(
        seconds=seconds,
        flops=config.flops_per_iteration(
            parallel.global_batch_size, with_recompute=with_recompute
        ),
        num_gpus=parallel.world_size,
        global_batch_size=parallel.global_batch_size,
        seq_length=config.seq_length,
        peak_flops=peak_flops,
    )


def sample_throughput(tracer: Tracer, report: ThroughputReport,
                      t: float | None = None,
                      prefix: str = "throughput") -> None:
    """Publish gauges *and* drop timeline counter samples at ``t``."""
    report.publish(tracer.metrics, prefix=prefix)
    for name, value in (
        (f"{prefix}.mfu", report.mfu),
        (f"{prefix}.tflops_per_gpu", report.tflops_per_gpu),
        (f"{prefix}.tokens_per_s", report.tokens_per_second),
    ):
        tracer.sample(name, value, rank=GLOBAL_RANK, t=t)


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU model-state bytes split the way dashboards want them.

    Derived from the §3.3 mixed-precision accounting (16 bytes per
    parameter): fp16 weights (2) + fp16 gradients (2) + fp32 master
    weights and Adam moments (12).
    """

    parameters: int

    @property
    def weight_bytes(self) -> int:
        return 2 * self.parameters

    @property
    def gradient_bytes(self) -> int:
        return 2 * self.parameters

    @property
    def optimizer_bytes(self) -> int:
        return 12 * self.parameters

    @property
    def model_state_bytes(self) -> int:
        return self.weight_bytes + self.gradient_bytes + self.optimizer_bytes


def sample_memory(tracer: Tracer, breakdown: MemoryBreakdown,
                  activation_bytes: int, rank: int = GLOBAL_RANK,
                  t: float | None = None, prefix: str = "mem") -> None:
    """Drop one set of memory counter samples (bytes) at time ``t``."""
    tracer.sample(f"{prefix}.weights.bytes", breakdown.weight_bytes,
                  rank=rank, t=t)
    tracer.sample(f"{prefix}.gradients.bytes", breakdown.gradient_bytes,
                  rank=rank, t=t)
    tracer.sample(f"{prefix}.optimizer.bytes", breakdown.optimizer_bytes,
                  rank=rank, t=t)
    tracer.sample(f"{prefix}.activations.bytes", activation_bytes,
                  rank=rank, t=t)
