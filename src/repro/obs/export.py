"""Trace and metrics exporters.

Three output formats, all derived from one :class:`~repro.obs.tracer.Tracer`:

- **Chrome trace** (:func:`chrome_trace`, :func:`write_chrome_trace`):
  the ``trace_event`` JSON format loadable in Perfetto or
  chrome://tracing.  Every span becomes one complete (``"ph": "X"``)
  event; virtual ranks map to one track (tid) each, cluster-wide phases
  (:data:`~repro.obs.tracer.GLOBAL_RANK`) to a dedicated ``global``
  track.  Timestamps are microseconds, sorted ascending as the format
  requires.
- **Phase summary** (:func:`phase_summary`): a flat-text table
  aggregating span count, total time, bytes, and FLOPs per phase — the
  paper's §3 time decomposition (compute vs. pipeline bubble vs.
  communication) at a glance.
- **Metrics JSON** (:func:`metrics_json`): the tracer's registry as a
  machine-readable dump.
"""

from __future__ import annotations

import json

from .tracer import GLOBAL_RANK, Span, Tracer

#: tid used for GLOBAL_RANK spans; picked above any realistic rank
#: count so the global track sorts last in the viewer.
_GLOBAL_TID = 1 << 20


def _tid(rank: int) -> int:
    return _GLOBAL_TID if rank == GLOBAL_RANK else rank


def counter_events(tracer: Tracer, time_scale: float = 1e6) -> list[dict]:
    """Counter samples as Chrome ``ph: "C"`` events (time-ordered).

    Each :class:`~repro.obs.tracer.CounterSample` series becomes one
    counter track in Perfetto (memory bytes, MFU, tokens/s, ...),
    rendered alongside the rank's spans.
    """
    ordered = sorted(
        enumerate(tracer.samples), key=lambda kv: (kv[1].t, kv[0])
    )
    return [
        {
            "name": s.name,
            "cat": "counter",
            "ph": "C",
            "pid": 0,
            "tid": _tid(s.rank),
            "ts": s.t * time_scale,
            "args": {"value": s.value},
        }
        for _, s in ordered
    ]


def metrics_counter_events(tracer: Tracer, at: float,
                           time_scale: float = 1e6,
                           prefixes: tuple[str, ...] = ()) -> list[dict]:
    """The registry's gauges and counters as one ``ph: "C"`` snapshot.

    Metrics that were never sampled as a time series (plain registry
    gauges/counters) still deserve a point on the timeline; this dumps
    them all at time ``at`` (typically the trace end), optionally
    filtered to dotted-name ``prefixes``.
    """
    snap: dict[str, float] = {}
    snap.update({k: c.value for k, c in tracer.metrics.counters.items()})
    snap.update({k: g.value for k, g in tracer.metrics.gauges.items()})
    return [
        {
            "name": name,
            "cat": "counter",
            "ph": "C",
            "pid": 0,
            "tid": _GLOBAL_TID,
            "ts": at * time_scale,
            "args": {"value": value},
        }
        for name, value in sorted(snap.items())
        if not prefixes or name.startswith(prefixes)
    ]


def chrome_trace_events(tracer: Tracer, time_scale: float = 1e6) -> list[dict]:
    """Spans + counter samples as Chrome ``trace_event`` dicts.

    Metadata events name each rank's track; every span becomes one
    complete (``"ph": "X"``) event and every counter sample one
    ``"ph": "C"`` event, merged into one ascending-timestamp stream.
    ``time_scale`` converts span times (seconds by default) to the
    format's microseconds.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    ranks = sorted(
        {s.rank for s in tracer.spans} | {s.rank for s in tracer.samples}
    )
    for rank in ranks:
        label = "global" if rank == GLOBAL_RANK else f"rank {rank}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _tid(rank),
                "args": {"name": label},
            }
        )
    timed: list[dict] = []
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.index))
    for s in spans:
        if not s.closed:
            raise ValueError(f"span {s.name!r} is still open; cannot export")
        args: dict = {"phase": s.phase, "depth": s.depth}
        args.update(s.counters)
        timed.append(
            {
                "name": s.name,
                "cat": s.phase or "span",
                "ph": "X",
                "pid": 0,
                "tid": _tid(s.rank),
                "ts": s.start * time_scale,
                "dur": s.duration * time_scale,
                "args": args,
            }
        )
    timed.extend(counter_events(tracer, time_scale))
    # One ascending-ts stream, as the format requires; the sort is
    # stable so same-timestamp spans keep creation order and counter
    # samples land after the span that produced them.
    timed.sort(key=lambda e: e["ts"])
    events.extend(timed)
    return events


def chrome_trace(tracer: Tracer, time_scale: float = 1e6) -> dict:
    """The full Chrome-trace JSON object."""
    return {
        "traceEvents": chrome_trace_events(tracer, time_scale),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       time_scale: float = 1e6) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, time_scale), f)


def phase_summary(tracer: Tracer) -> str:
    """Flat-text per-phase aggregation of span time, bytes, and FLOPs.

    Span *self* counters sum to the logs' ground truth (each byte/FLOP
    is attributed to exactly one span), so the bytes column per comm
    phase equals ``TrafficLog.total_bytes`` for that kind.
    """
    phases: dict[str, dict] = {}
    for s in tracer.spans:
        agg = phases.setdefault(
            s.phase or "(none)",
            {"spans": 0, "time": 0.0, "bytes": 0, "flops": 0},
        )
        agg["spans"] += 1
        agg["time"] += s.duration
        agg["bytes"] += s.counters.get("bytes", 0)
        agg["flops"] += s.counters.get("flops", 0)
    header = f"{'phase':<18} {'spans':>6} {'time':>12} {'bytes':>14} {'flops':>16}"
    lines = [header, "-" * len(header)]
    for phase in sorted(phases):
        a = phases[phase]
        lines.append(
            f"{phase:<18} {a['spans']:>6} {a['time']:>12.6f} "
            f"{int(a['bytes']):>14} {int(a['flops']):>16}"
        )
    total_b = sum(a["bytes"] for a in phases.values())
    total_f = sum(a["flops"] for a in phases.values())
    total_n = sum(a["spans"] for a in phases.values())
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<18} {total_n:>6} {'':>12} {int(total_b):>14} {int(total_f):>16}"
    )
    return "\n".join(lines)


def metrics_json(tracer: Tracer, indent: int = 2) -> str:
    return tracer.metrics.to_json(indent=indent)


def write_metrics(tracer: Tracer, path: str) -> None:
    with open(path, "w") as f:
        f.write(metrics_json(tracer))


def validate_chrome_trace(obj: dict) -> None:
    """Raise ValueError if ``obj`` violates the trace_event schema
    subset we emit: complete ``X`` events with non-negative durations,
    counter ``C`` events with numeric args series, timestamps sorted
    ascending across both, every tid introduced by a ``thread_name``
    metadata event."""
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    named_tids = set()
    last_ts = float("-inf")
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                named_tids.add(e["tid"])
            continue
        if ph == "C":
            for key in ("name", "ts", "pid", "tid", "args"):
                if key not in e:
                    raise ValueError(f"C event missing {key!r}: {e}")
            args = e["args"]
            if not isinstance(args, dict) or not args:
                raise ValueError(f"C event args must be a non-empty dict: {e}")
            for series, value in args.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(
                        f"C event series {series!r} must be numeric: {e}"
                    )
        elif ph == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in e:
                    raise ValueError(f"X event missing {key!r}: {e}")
            if e["dur"] < 0:
                raise ValueError(f"negative duration: {e}")
        else:
            raise ValueError(f"unexpected event phase {ph!r}")
        if e["ts"] < last_ts:
            raise ValueError("event timestamps are not sorted")
        last_ts = e["ts"]
        if e["tid"] not in named_tids:
            raise ValueError(f"tid {e['tid']} has no thread_name metadata")
