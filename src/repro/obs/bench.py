"""Unified benchmark runner: steady-state timing, BENCH_*.json, gating.

The paper's results *are* performance numbers (Table 1: 502 petaFLOP/s
aggregate, 52% of per-GPU peak), so the reproduction keeps a recorded
perf trajectory instead of ad-hoc printouts.  This module provides:

- **scenarios** — named micro/macro benchmarks over the real engine,
  the discrete-event simulator, the schedule generator, the comm
  substrate, and the profiler itself, registered in
  :data:`SCENARIOS`;
- **suite discovery** — the repo's ``benchmarks/bench_*.py`` pytest
  suites, executed as subprocess smoke runs and timed end-to-end;
- **steady-state methodology** — every scenario runs ``warmup +
  repeats`` times; warmup samples are trimmed, and the steady-state
  samples are summarized by median, MAD, and a seeded-bootstrap
  confidence interval of the median (:class:`BenchStats`);
- **BENCH_<label>.json** — a schema-versioned report
  (:class:`BenchReport`) stamped with an environment fingerprint
  (python/numpy versions, git SHA, CPU), the repo's perf-trajectory
  format;
- **noise-aware regression gating** — :func:`compare_reports` flags a
  scenario only when the new CI clears the old CI *and* a relative
  floor, so re-running the same config passes while a real 2x
  slowdown fails (``repro bench --compare OLD NEW``).

``python -m repro bench`` is the CLI front end.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from .metrics import MetricsRegistry

#: Version of the BENCH_*.json format.  Bump on breaking changes; the
#: loader refuses files from a different major version so a comparison
#: never silently mixes incompatible statistics.
BENCH_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchStats:
    """Steady-state summary of one scenario's timing samples.

    ``samples`` excludes the ``warmup`` leading runs (cache warming,
    allocator steady state); ``ci_low``/``ci_high`` bound the *median*
    via a seeded bootstrap, so two runs of the same workload produce
    overlapping intervals and the regression gate stays quiet on
    noise.
    """

    samples: tuple[float, ...]
    warmup: int
    median: float
    mad: float
    mean: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    unit: str = "s"

    @classmethod
    def from_samples(
        cls,
        samples: list[float] | tuple[float, ...],
        *,
        warmup: int = 0,
        seed: int = 0,
        resamples: int = 200,
        confidence: float = 0.95,
    ) -> "BenchStats":
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        steady = tuple(float(x) for x in samples[warmup:])
        if not steady:
            raise ValueError(
                f"no steady-state samples: {len(samples)} samples with "
                f"warmup={warmup}"
            )
        if any(x < 0 for x in steady):
            raise ValueError("negative timing sample")
        arr = np.asarray(steady)
        med = float(np.median(arr))
        mad = float(np.median(np.abs(arr - med)))
        if len(steady) == 1:
            ci_low = ci_high = med
        else:
            rng = np.random.default_rng(seed)
            idx = rng.integers(0, len(arr), size=(resamples, len(arr)))
            boot = np.median(arr[idx], axis=1)
            alpha = (1.0 - confidence) / 2.0
            ci_low = float(np.quantile(boot, alpha))
            ci_high = float(np.quantile(boot, 1.0 - alpha))
        return cls(
            samples=steady,
            warmup=warmup,
            median=med,
            mad=mad,
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            ci_low=ci_low,
            ci_high=ci_high,
        )

    def as_dict(self) -> dict:
        return {
            "samples": list(self.samples),
            "warmup": self.warmup,
            "median": self.median,
            "mad": self.mad,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "unit": self.unit,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchStats":
        return cls(
            samples=tuple(d["samples"]),
            warmup=int(d["warmup"]),
            median=float(d["median"]),
            mad=float(d["mad"]),
            mean=float(d["mean"]),
            minimum=float(d["min"]),
            maximum=float(d["max"]),
            ci_low=float(d["ci_low"]),
            ci_high=float(d["ci_high"]),
            unit=str(d.get("unit", "s")),
        )


# ---------------------------------------------------------------------------
# environment fingerprint
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EnvFingerprint:
    """What produced a BENCH file — enough to judge comparability."""

    python: str
    numpy: str
    platform: str
    machine: str
    cpu_count: int
    git_sha: str

    @classmethod
    def capture(cls) -> "EnvFingerprint":
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            sha = "unknown"
        return cls(
            python=platform.python_version(),
            numpy=np.__version__,
            platform=platform.platform(),
            machine=platform.machine(),
            cpu_count=os.cpu_count() or 1,
            git_sha=sha,
        )

    def as_dict(self) -> dict:
        return {
            "python": self.python,
            "numpy": self.numpy,
            "platform": self.platform,
            "machine": self.machine,
            "cpu_count": self.cpu_count,
            "git_sha": self.git_sha,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EnvFingerprint":
        return cls(
            python=str(d["python"]),
            numpy=str(d["numpy"]),
            platform=str(d["platform"]),
            machine=str(d["machine"]),
            cpu_count=int(d["cpu_count"]),
            git_sha=str(d["git_sha"]),
        )


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchRecord:
    """One scenario's result inside a report."""

    name: str
    kind: str  # "micro" | "macro" | "suite"
    stats: BenchStats
    metrics: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "stats": self.stats.as_dict(),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchRecord":
        return cls(
            name=str(d["name"]),
            kind=str(d["kind"]),
            stats=BenchStats.from_dict(d["stats"]),
            metrics={k: float(v) for k, v in d.get("metrics", {}).items()},
        )


@dataclass(frozen=True)
class BenchReport:
    """A full BENCH_<label>.json: env fingerprint + scenario records."""

    label: str
    env: EnvFingerprint
    records: tuple[BenchRecord, ...]
    created_unix: float
    schema_version: int = BENCH_SCHEMA_VERSION

    def record(self, name: str) -> BenchRecord | None:
        for r in self.records:
            if r.name == name:
                return r
        return None

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "label": self.label,
            "created_unix": self.created_unix,
            "env": self.env.as_dict(),
            "records": [r.as_dict() for r in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, d: dict) -> "BenchReport":
        version = d.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported BENCH schema version {version!r} "
                f"(this build reads version {BENCH_SCHEMA_VERSION})"
            )
        return cls(
            label=str(d["label"]),
            env=EnvFingerprint.from_dict(d["env"]),
            records=tuple(BenchRecord.from_dict(r) for r in d["records"]),
            created_unix=float(d["created_unix"]),
            schema_version=int(version),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        return cls.from_dict(json.loads(text))


def write_report(report: BenchReport, path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(report.to_json() + "\n")


def load_report(path: str | Path) -> BenchReport:
    with open(path, "r", encoding="utf-8") as f:
        return BenchReport.from_json(f.read())


def bench_metrics_registry(report: BenchReport) -> MetricsRegistry:
    """The report as the shared metrics-JSON schema (``--metrics-out``).

    Each scenario becomes a ``bench.<name>.seconds`` histogram (its
    steady-state samples) plus ``bench.<name>.median`` /
    ``bench.<name>.<extra>`` gauges, so every CLI subcommand's metrics
    dump has the same shape (counters/gauges/histograms).
    """
    reg = MetricsRegistry()
    for rec in report.records:
        hist = reg.histogram(f"bench.{rec.name}.seconds")
        for x in rec.stats.samples:
            hist.observe(x)
        reg.gauge(f"bench.{rec.name}.median").set(rec.stats.median)
        for k, v in rec.metrics.items():
            reg.gauge(f"bench.{rec.name}.{k}").set(v)
    return reg


# ---------------------------------------------------------------------------
# scenario registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One registered benchmark.

    ``build()`` does un-timed setup and returns the callable to time;
    ``derive(median_seconds)``, if given, converts the timing into
    extra metrics (MFU, tokens/s) recorded alongside.  Backend-aware
    scenarios (``backend_aware=True``) receive the runner's execution
    backend (``coop``/``mp``) as ``build(backend)``, and the returned
    callable may carry a ``close`` attribute for un-timed teardown
    (worker-pool shutdown).
    """

    name: str
    kind: str
    build: Callable[..., Callable[[], None]]
    derive: Callable[[float], dict[str, float]] | None = None
    fast: bool = True
    backend_aware: bool = False


SCENARIOS: dict[str, Scenario] = {}


def register(name: str, kind: str = "micro", fast: bool = True,
             derive: Callable[[float], dict[str, float]] | None = None,
             backend_aware: bool = False):
    """Decorator registering a scenario's ``build`` function."""

    def deco(build: Callable[..., Callable[[], None]]):
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        SCENARIOS[name] = Scenario(
            name=name, kind=kind, build=build, derive=derive, fast=fast,
            backend_aware=backend_aware,
        )
        return build

    return deco


def _tiny_engine(p: int = 2, t: int = 1, d: int = 2,
                 backend: str = "coop"):
    from repro.config import ParallelConfig, tiny_test_model
    from repro.parallel import PTDTrainer

    config = tiny_test_model(num_layers=4, hidden_size=32,
                             num_attention_heads=4, vocab_size=64,
                             seq_length=16)
    parallel = ParallelConfig(
        pipeline_parallel_size=p,
        tensor_parallel_size=t,
        data_parallel_size=d,
        microbatch_size=1,
        global_batch_size=4,
    )
    rng = np.random.default_rng(0)
    shape = (parallel.global_batch_size, config.seq_length)
    ids = rng.integers(0, config.vocab_size, size=shape)
    targets = rng.integers(0, config.vocab_size, size=shape)
    trainer = PTDTrainer(config, parallel, backend=backend)
    return config, parallel, trainer, ids, targets


def _engine_derive(p: int, t: int, d: int):
    def derive(seconds: float) -> dict[str, float]:
        from repro.hardware import a100_80gb
        from repro.obs.telemetry import throughput_report

        config, parallel, _, _, _ = _tiny_engine(p, t, d)
        rep = throughput_report(config, parallel, seconds,
                                peak_flops=a100_80gb().peak_flops)
        return {
            "tokens_per_s": rep.tokens_per_second,
            "tflops_per_gpu": rep.tflops_per_gpu,
        }

    return derive


@register("engine.train_step.p2d2", kind="macro",
          derive=_engine_derive(2, 1, 2), backend_aware=True)
def _bench_engine_p2d2(backend: str = "coop"):
    _, _, trainer, ids, targets = _tiny_engine(2, 1, 2, backend)

    def run():
        trainer.train_step(ids, targets)

    run.close = trainer.close
    return run


@register("engine.train_step.t2d2", kind="macro",
          derive=_engine_derive(1, 2, 2), backend_aware=True)
def _bench_engine_t2d2(backend: str = "coop"):
    _, _, trainer, ids, targets = _tiny_engine(1, 2, 2, backend)

    def run():
        trainer.train_step(ids, targets)

    run.close = trainer.close
    return run


def _d4_shapes():
    from repro.config import ParallelConfig, tiny_test_model

    config = tiny_test_model(num_layers=4, hidden_size=96,
                             num_attention_heads=4, vocab_size=256,
                             seq_length=64)
    parallel = ParallelConfig(
        pipeline_parallel_size=1,
        tensor_parallel_size=1,
        data_parallel_size=4,
        microbatch_size=2,
        global_batch_size=8,
    )
    return config, parallel


def _d4_engine(backend: str):
    """The cross-backend speedup workload: d=4 replicas of a model big
    enough that replica compute dominates shared-memory IPC, so the mp
    backend's real OS-process parallelism shows up as wall-clock."""
    from repro.parallel import PTDTrainer

    config, parallel = _d4_shapes()
    rng = np.random.default_rng(0)
    shape = (parallel.global_batch_size, config.seq_length)
    ids = rng.integers(0, config.vocab_size, size=shape)
    targets = rng.integers(0, config.vocab_size, size=shape)
    trainer = PTDTrainer(config, parallel, backend=backend)
    return config, parallel, trainer, ids, targets


def _d4_derive(seconds: float) -> dict[str, float]:
    from repro.hardware import a100_80gb
    from repro.obs.telemetry import throughput_report

    config, parallel = _d4_shapes()
    rep = throughput_report(config, parallel, seconds,
                            peak_flops=a100_80gb().peak_flops)
    return {
        "tokens_per_s": rep.tokens_per_second,
        "tflops_per_gpu": rep.tflops_per_gpu,
    }


@register("engine.train_step.d4", kind="macro", fast=False,
          derive=_d4_derive, backend_aware=True)
def _bench_engine_d4(backend: str = "coop"):
    _, _, trainer, ids, targets = _d4_engine(backend)

    def run():
        trainer.train_step(ids, targets)

    run.close = trainer.close
    return run


def _sim_scenario(row_index: int):
    from repro.config.presets import TABLE1_ROWS
    from repro.sim import SimOptions, simulate_iteration

    row = TABLE1_ROWS[row_index]

    def build():
        def run():
            simulate_iteration(row.model, row.parallel,
                               options=SimOptions(schedule_name="1f1b"))

        return run

    def derive(seconds: float) -> dict[str, float]:
        res = simulate_iteration(row.model, row.parallel,
                                 options=SimOptions(schedule_name="1f1b"))
        return {
            "sim_iteration_s": res.iteration_time,
            "sim_tflops_per_gpu": res.tflops_per_gpu,
            "sim_mfu": res.peak_fraction,
            "paper_tflops_per_gpu": row.reported_tflops_per_gpu,
        }

    return build, derive


_b145, _d145 = _sim_scenario(6)
register("sim.iteration.gpt145b", kind="macro", derive=_d145)(_b145)
_b1t, _d1t = _sim_scenario(9)
register("sim.iteration.gpt1t", kind="macro", derive=_d1t)(_b1t)


@register("schedule.interleaved.p8m64v4")
def _bench_schedule():
    from repro.schedule import interleaved_schedule, validate

    def run():
        validate(interleaved_schedule(8, 64, 4))

    return run


@register("comm.ring_allreduce.4x256k")
def _bench_allreduce():
    from repro.comm import TrafficLog
    from repro.comm.primitives import ring_all_reduce

    log = TrafficLog()
    buffers = [np.ones(65536) * (i + 1) for i in range(4)]

    def run():
        ring_all_reduce([b.copy() for b in buffers], [0, 1, 2, 3], log)

    return run


@register("obs.profile.postprocess")
def _bench_profile():
    from repro.obs import trace
    from repro.obs.profile import folded_stacks, profile_tracer

    _, _, trainer, ids, targets = _tiny_engine(2, 1, 2)
    with trace() as tracer:
        trainer.train_step(ids, targets)

    def run():
        folded_stacks(profile_tracer(tracer))

    return run


@register("obs.chrome_export")
def _bench_export():
    from repro.obs import chrome_trace, trace

    _, _, trainer, ids, targets = _tiny_engine(2, 1, 2)
    with trace() as tracer:
        trainer.train_step(ids, targets)

    def run():
        chrome_trace(tracer)

    return run


# -- serving ---------------------------------------------------------------
#
# A sequence long enough (64 tokens) that the paged KV cache's O(n) step
# visibly beats the oracle's O(n^2) full recompute; both scenarios share
# the workload so ``tokens_per_s`` is directly comparable.

_SERVE_NEW_TOKENS = 48


def _serve_decode_workload():
    from repro.config import tiny_test_model
    from repro.nn.transformer import GPTModel

    config = tiny_test_model(num_layers=2, hidden_size=32,
                             num_attention_heads=4, vocab_size=128,
                             seq_length=64)
    model = GPTModel(config, seed=0)
    prompt = np.random.default_rng(1).integers(0, config.vocab_size, size=8)
    return model, prompt


def _decode_derive(seconds: float) -> dict[str, float]:
    return {"tokens_per_s": _SERVE_NEW_TOKENS / seconds}


@register("serve.decode.cached", kind="macro", derive=_decode_derive)
def _bench_serve_cached():
    from repro.serve import cached_generate

    model, prompt = _serve_decode_workload()

    def run():
        cached_generate(model, prompt, _SERVE_NEW_TOKENS,
                        temperature=0.0, block_size=8)

    return run


@register("serve.decode.recompute", kind="macro", derive=_decode_derive)
def _bench_serve_recompute():
    from repro.nn.generate import generate

    model, prompt = _serve_decode_workload()

    def run():
        generate(model, prompt, _SERVE_NEW_TOKENS, temperature=0.0)

    return run


def _serve_engine_derive(seconds: float) -> dict[str, float]:
    from repro.serve import poisson_trace

    trace = poisson_trace(8, 0.7, vocab_size=64, seed=2,
                          temperature=1.0, top_k=5)
    total = sum(r.max_new_tokens for r in trace)
    return {"tokens_per_s": total / seconds}


@register("serve.engine.poisson8", kind="macro",
          derive=_serve_engine_derive)
def _bench_serve_engine():
    from repro.config import tiny_test_model
    from repro.nn.transformer import GPTModel
    from repro.serve import PagedKVCache, ServeEngine, poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=0)
    trace = poisson_trace(8, 0.7, vocab_size=config.vocab_size, seed=2,
                          temperature=1.0, top_k=5)

    def run():
        cache = PagedKVCache.for_model(model, num_blocks=4, block_size=3)
        ServeEngine(model, cache).run(trace)
        cache.assert_empty()

    return run


@register("serve.engine.guarded", kind="macro",
          derive=_serve_engine_derive)
def _bench_serve_engine_guarded():
    """The fault-free robustness path: deadlines + TTLs + bounded queue
    + checksummed cache, no chaos.  Tracks the bookkeeping overhead the
    ISSUE 10 <5% budget guards."""
    from repro.config import tiny_test_model
    from repro.nn.transformer import GPTModel
    from repro.serve import PagedKVCache, ServeEngine, poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=0)
    trace = poisson_trace(8, 0.7, vocab_size=config.vocab_size, seed=2,
                          temperature=1.0, top_k=5,
                          deadline_steps=256, queue_ttl=128)

    def run():
        cache = PagedKVCache.for_model(model, num_blocks=4, block_size=3,
                                       checksums=True)
        ServeEngine(model, cache, max_queue=32).run(trace)
        cache.assert_empty()

    return run


@register("serve.engine.chaos", kind="macro",
          derive=_serve_engine_derive)
def _bench_serve_engine_chaos():
    """Throughput under fire: decode crash + KV corruption + an
    exhaustion storm, all recovered within the run."""
    from repro.config import tiny_test_model
    from repro.nn.transformer import GPTModel
    from repro.resilience.serve_chaos import (
        AllocExhaustion,
        DecodeCrash,
        KVCorruption,
        ServeChaosPlan,
    )
    from repro.serve import PagedKVCache, ServeEngine, poisson_trace

    config = tiny_test_model()
    model = GPTModel(config, seed=0)
    trace = poisson_trace(8, 0.7, vocab_size=config.vocab_size, seed=2,
                          temperature=1.0, top_k=5)
    plan = ServeChaosPlan(
        crashes=(DecodeCrash(at_step=1),),
        corruptions=(KVCorruption(at_step=4),),
        exhaustions=(AllocExhaustion(at_step=7, steps=3),),
    )

    def run():
        cache = PagedKVCache.for_model(model, num_blocks=4, block_size=3,
                                       checksums=True)
        ServeEngine(model, cache, chaos=plan).run(trace)
        cache.assert_empty()

    return run


# ---------------------------------------------------------------------------
# suite discovery
# ---------------------------------------------------------------------------

def benchmarks_dir() -> Path:
    """The repo's ``benchmarks/`` directory (next to ``src/``)."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def discover_suites(root: Path | None = None) -> list[Path]:
    """Every ``bench_*.py`` pytest suite in the benchmarks directory."""
    root = root or benchmarks_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("bench_*.py"))


def run_suite(path: Path) -> BenchRecord:
    """Execute one pytest bench suite as a timed subprocess smoke run.

    ``--benchmark-disable`` makes pytest-benchmark run each benchmarked
    callable once without calibration, so the wall time measures the
    suite, not the harness.  The exit code is recorded as a metric;
    a non-zero code marks the record (and fails ``repro bench``).
    """
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q",
         "--benchmark-disable", "-p", "no:cacheprovider"],
        capture_output=True, text=True, env=env,
    )
    elapsed = time.perf_counter() - t0
    return BenchRecord(
        name=f"suite.{path.stem}",
        kind="suite",
        stats=BenchStats.from_samples([elapsed]),
        metrics={"exit_code": float(proc.returncode)},
    )


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------

def run_bench(
    *,
    fast: bool = False,
    repeats: int | None = None,
    warmup: int | None = None,
    seed: int = 0,
    label: str = "run",
    filter_substr: str | None = None,
    suites: str | None = None,
    backend: str = "coop",
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Run the scenario registry (and optionally pytest suites).

    ``fast`` halves the repeat count for CI smoke runs; ``suites`` is a
    glob (``"*"`` for all) selecting ``benchmarks/bench_*.py`` files to
    execute as subprocess smoke runs; ``backend`` selects the execution
    backend (``coop``/``mp``) for backend-aware engine scenarios.
    """
    from repro.comm import BACKENDS

    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}"
        )
    if repeats is None:
        repeats = 3 if fast else 7
    if warmup is None:
        warmup = 1 if fast else 2
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    say = progress or (lambda msg: None)
    records: list[BenchRecord] = []
    for name in sorted(SCENARIOS):
        sc = SCENARIOS[name]
        if fast and not sc.fast:
            continue
        if filter_substr and filter_substr not in name:
            continue
        say(f"bench {name} ({sc.kind}, {warmup}+{repeats} runs)")
        fn = sc.build(backend) if sc.backend_aware else sc.build()
        try:
            samples = []
            for _ in range(warmup + repeats):
                t0 = time.perf_counter()
                fn()
                samples.append(time.perf_counter() - t0)
        finally:
            teardown = getattr(fn, "close", None)
            if teardown is not None:
                teardown()
        stats = BenchStats.from_samples(samples, warmup=warmup, seed=seed)
        metrics = dict(sc.derive(stats.median)) if sc.derive else {}
        records.append(
            BenchRecord(name=name, kind=sc.kind, stats=stats, metrics=metrics)
        )
    if suites:
        import fnmatch

        for path in discover_suites():
            if suites != "*" and not fnmatch.fnmatch(path.name,
                                                     f"*{suites}*"):
                continue
            say(f"suite {path.name}")
            records.append(run_suite(path))
    return BenchReport(
        label=label,
        env=EnvFingerprint.capture(),
        records=tuple(records),
        created_unix=time.time(),
    )


# ---------------------------------------------------------------------------
# regression comparison
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """One scenario compared across two reports (timing medians)."""

    name: str
    old_median: float
    new_median: float
    threshold: float
    new_ci_low: float
    regressed: bool
    improved: bool

    @property
    def ratio(self) -> float:
        return self.new_median / self.old_median if self.old_median else float("inf")


@dataclass
class CompareResult:
    comparisons: list[Comparison] = field(default_factory=list)
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        header = (
            f"{'scenario':<32} {'old':>12} {'new':>12} {'ratio':>7}  verdict"
        )
        lines = [header, "-" * len(header)]
        for c in self.comparisons:
            verdict = ("REGRESSED" if c.regressed
                       else "improved" if c.improved else "ok")
            lines.append(
                f"{c.name:<32} {c.old_median:>12.6f} {c.new_median:>12.6f} "
                f"{c.ratio:>6.2f}x  {verdict}"
            )
        for name in self.only_old:
            lines.append(f"{name:<32} (removed: present only in OLD)")
        for name in self.only_new:
            lines.append(f"{name:<32} (new: present only in NEW)")
        lines.append("-" * len(header))
        n_reg = len(self.regressions)
        lines.append(
            f"{len(self.comparisons)} compared, {n_reg} regression"
            f"{'s' if n_reg != 1 else ''}"
        )
        return "\n".join(lines)


def compare_reports(old: BenchReport, new: BenchReport, *,
                    min_rel: float = 0.10) -> CompareResult:
    """Noise-aware regression gate between two BENCH reports.

    A scenario *regresses* only when the new median's bootstrap CI
    clears both the old CI's upper bound and a relative floor
    (``min_rel``, default 10%) over the old median:

        new.ci_low > max(old.ci_high, old.median * (1 + min_rel))

    Requiring the CIs to separate makes re-running the same config
    pass (the intervals overlap under noise-level jitter); requiring
    the relative floor keeps microsecond-scale scenarios from gating
    on statistically-real-but-trivial drift.  ``improved`` is the
    symmetric condition.
    """
    if min_rel < 0:
        raise ValueError(f"min_rel must be >= 0, got {min_rel}")
    result = CompareResult()
    new_names = {r.name for r in new.records}
    old_names = {r.name for r in old.records}
    result.only_old = sorted(old_names - new_names)
    result.only_new = sorted(new_names - old_names)
    for rec in new.records:
        if rec.name not in old_names:
            continue
        old_rec = old.record(rec.name)
        assert old_rec is not None
        o, n = old_rec.stats, rec.stats
        threshold = max(o.ci_high, o.median * (1.0 + min_rel))
        regressed = n.ci_low > threshold
        floor = min(o.ci_low, o.median * (1.0 - min_rel))
        improved = n.ci_high < floor
        result.comparisons.append(
            Comparison(
                name=rec.name,
                old_median=o.median,
                new_median=n.median,
                threshold=threshold,
                new_ci_low=n.ci_low,
                regressed=regressed,
                improved=improved,
            )
        )
    return result
