"""Structured run event logs: append-only JSONL + a run registry.

MegaScale (arXiv 2402.15627) attributes a large share of its sustained
MFU at 10k+ GPUs to in-depth observability: every run writes a
diagnostic log a "mission control" monitor can tail, and anomalies are
detected *while the run is alive*, not from a post-mortem.  This module
is that substrate for the reproduction:

- :class:`RunLogger` — a schema-versioned, **append-only JSONL** event
  stream.  One JSON object per line, flushed per event, so a live
  ``python -m repro monitor --follow`` can tail a run the trainer is
  still writing.  Event types:

  ===============  ========================================================
  ``run-start``    run manifest: run id, source (engine/sim/chaos), model
                   + parallel fingerprint, env fingerprint, expected
                   throughput (eq. (3) analytic, when the source knows it)
  ``iteration``    per-iteration record: loss, measured seconds, tokens/s,
                   MFU, grad norm, per-rank span self-times
  ``heartbeat``    one liveness round: the ranks that pinged
  ``checkpoint``   a checkpoint committed (or GC'd)
  ``fault``        **ground truth**: an injected fault, with the detector
                   expected to catch it (written only by the chaos layer)
  ``recovery``     operational recovery telemetry: save-retry,
                   checkpoint-skipped, restore, reshard, ...
  ``alert``        an anomaly detector fired (written by live monitors)
  ``ack``          a human/CI acknowledged alerts from one detector
  ``run-end``      final status
  ``request``      one serving-request lifecycle transition (arrive /
                   admit / first-token / preempt / resume / finish),
                   written by the ``repro.serve`` engine
  ===============  ========================================================

  Every event carries the schema version ``v``, a monotone sequence
  number ``seq``, and a wall-clock (or injected-clock) timestamp ``t``.

- an **active-logger stack** mirroring :mod:`repro.obs.tracer`:
  ``with run_logging(logger): ...`` makes
  :meth:`repro.parallel.trainer.PTDTrainer.train_step`, the
  discrete-event simulator, and the chaos harness emit events; when no
  logger is active every hook is one truthiness check, so the hot path
  stays inside the tracing overhead budget
  (``benchmarks/bench_monitor_overhead.py``).

- :class:`RunRegistry` — a ``runs/`` directory of per-run folders with
  a ``LATEST`` pointer advanced by atomic write-then-rename (the
  checkpoint store's commit idiom), ``list``/``show``/``gc``.

Detectors never read ``fault`` events — those are the injected ground
truth the scoreboard (:func:`repro.obs.monitor.score_run`) grades
detector precision/recall/latency against.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TextIO

#: Version of the run-log JSONL format.  Bump on breaking changes; the
#: reader refuses events from a different major version so a monitor
#: never silently misreads a stream.
RUNLOG_SCHEMA_VERSION = 1

_LATEST = "LATEST"

EVENT_TYPES = (
    "run-start", "iteration", "heartbeat", "checkpoint", "fault",
    "recovery", "alert", "ack", "run-end", "request",
)


class RunLogError(ValueError):
    """A run log (or one of its events) is malformed or unreadable."""


def _atomic_write(path: str, text: str) -> None:
    """Write-then-rename publish (the checkpoint store's commit idiom):
    a reader never observes a half-written file."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class RunLogger:
    """Appends schema-versioned events to one run's JSONL stream.

    Parameters
    ----------
    stream:
        Open text file (or file-like) the events append to.  The logger
        flushes after every event so the log is tail-able mid-run.
    run_id:
        Identity of the run; stamped on the manifest.
    clock:
        Zero-argument callable for event timestamps (defaults to
        :func:`time.time`; tests inject deterministic clocks).
    observers:
        Callables invoked with every event dict *after* it is written
        — the hook live in-process monitors
        (:class:`repro.obs.monitor.Monitor`) attach to.
    """

    def __init__(
        self,
        stream: TextIO,
        run_id: str,
        *,
        clock: Callable[[], float] | None = None,
        observers: Iterable[Callable[[dict], None]] = (),
    ):
        self.stream = stream
        self.run_id = run_id
        self.clock = clock if clock is not None else time.time
        self.observers = list(observers)
        self.seq = 0
        self.iterations_logged = 0
        self.closed = False

    # -- core emission ------------------------------------------------------
    def emit(self, type: str, **fields) -> dict:
        """Append one event; returns the event dict written."""
        if type not in EVENT_TYPES:
            raise RunLogError(f"unknown run-log event type {type!r}")
        if self.closed:
            raise RunLogError(
                f"run {self.run_id!r} already ended; log is append-only "
                "and sealed by run-end"
            )
        event = {
            "v": RUNLOG_SCHEMA_VERSION,
            "seq": self.seq,
            "t": float(self.clock()),
            "type": type,
        }
        event.update(fields)
        self.stream.write(json.dumps(event, sort_keys=False) + "\n")
        self.stream.flush()
        self.seq += 1
        for observer in self.observers:
            observer(event)
        return event

    # -- typed helpers ------------------------------------------------------
    def start(self, source: str, *, model: dict | None = None,
              parallel: dict | None = None, env: dict | None = None,
              **extra) -> dict:
        """The run manifest: always the first event of a log."""
        if self.seq != 0:
            raise RunLogError("run-start must be the first event")
        return self.emit(
            "run-start", run_id=self.run_id, source=source,
            model=model or {}, parallel=parallel or {}, env=env or {},
            **extra,
        )

    def iteration(self, iteration: int, loss: float | None,
                  seconds: float,
                  *, tokens_per_s: float | None = None,
                  mfu: float | None = None,
                  grad_norm: float | None = None,
                  rank_busy: dict[int, float] | None = None,
                  **extra) -> dict:
        self.iterations_logged += 1
        return self.emit(
            "iteration", iteration=iteration,
            loss=None if loss is None else float(loss),
            seconds=float(seconds), tokens_per_s=tokens_per_s, mfu=mfu,
            grad_norm=grad_norm,
            rank_busy=(
                {str(r): float(v) for r, v in rank_busy.items()}
                if rank_busy else None
            ),
            **extra,
        )

    def heartbeat(self, ranks: Iterable[int], iteration: int) -> dict:
        """One liveness round: every rank in ``ranks`` pinged."""
        return self.emit(
            "heartbeat", ranks=sorted(int(r) for r in ranks),
            iteration=iteration,
        )

    def checkpoint(self, iteration: int, path: str = "") -> dict:
        return self.emit("checkpoint", iteration=iteration, path=path)

    def fault(self, kind: str, iteration: int, *, expect: str,
              **detail) -> dict:
        """Ground truth: an injected fault and the detector expected to
        catch it.  Detectors must never read these."""
        return self.emit(
            "fault", kind=kind, iteration=iteration, expect=expect,
            **detail,
        )

    def recovery(self, kind: str, iteration: int, detail: str = "") -> dict:
        return self.emit(
            "recovery", kind=kind, iteration=iteration, detail=detail
        )

    def request(self, phase: str, request_id: str, step: float,
                **detail) -> dict:
        """One serving-request lifecycle transition (written by
        :class:`repro.serve.engine.ServeEngine`): ``phase`` is one of
        arrive/admit/first-token/preempt/resume/finish (the healthy
        path) or reject/cancel/timeout/fault/retry (typed degradation:
        admission-control shedding, client cancellation, deadline or
        queue-TTL expiry, an injected decode fault, and its backoff
        retry), ``step`` the engine's (virtual) clock at the
        transition."""
        return self.emit(
            "request", phase=phase, request_id=request_id,
            step=float(step), **detail,
        )

    def ack(self, detector: str, note: str = "") -> dict:
        """Acknowledge every (past) alert from one detector."""
        return self.emit("ack", detector=detector, note=note)

    def end(self, status: str = "completed", **extra) -> dict:
        event = self.emit("run-end", status=status, **extra)
        self.closed = True
        return event


# -- reading ----------------------------------------------------------------


def parse_events(lines: Iterable[str]) -> Iterator[dict]:
    """Parse JSONL lines into validated event dicts.

    Tolerates a trailing partial line (a run mid-write) by stopping at
    the first unparseable *final* fragment; an unparseable line in the
    middle of the stream is corruption and raises.
    """
    pending: str | None = None
    for line in lines:
        if pending is not None:
            raise RunLogError(
                f"corrupt run log: unparseable line {pending!r} before "
                "end of stream"
            )
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            pending = line[:80]
            continue
        if not isinstance(event, dict) or "type" not in event:
            raise RunLogError(f"run-log events must be objects: {line[:80]!r}")
        if event.get("v") != RUNLOG_SCHEMA_VERSION:
            raise RunLogError(
                f"unsupported run-log schema version {event.get('v')!r} "
                f"(this build reads version {RUNLOG_SCHEMA_VERSION})"
            )
        yield event


def read_events(path: str) -> list[dict]:
    """All events of one run log file."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(parse_events(fh))


def manifest_of(events: list[dict]) -> dict:
    """The run-start manifest, or an empty dict for a headerless log."""
    for event in events:
        if event["type"] == "run-start":
            return event
    return {}


# -- the registry -----------------------------------------------------------

EVENTS_FILE = "events.jsonl"


@dataclass(frozen=True)
class RunInfo:
    """One registry entry, as ``repro monitor --list`` shows it."""

    run_id: str
    path: str
    source: str
    events: int
    status: str  # running | completed | failed | <run-end status>
    started_unix: float

    def describe(self) -> str:
        started = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(self.started_unix)
        )
        return (f"{self.run_id:<32} {self.source:<8} {self.status:<10} "
                f"{self.events:>6} events  {started}")


class RunRegistry:
    """``runs/`` directory of per-run folders + atomic ``LATEST`` pointer.

    Layout::

        <root>/
          LATEST                      # run id of the newest run (atomic)
          <run_id>/events.jsonl       # the run's append-only event log
    """

    def __init__(self, root: str):
        self.root = root

    # -- creation -----------------------------------------------------------
    def create(self, source: str, *, run_id: str | None = None,
               clock: Callable[[], float] | None = None,
               observers: Iterable[Callable[[dict], None]] = (),
               ) -> tuple[RunLogger, TextIO]:
        """Open a new run: returns ``(logger, file)``; the caller owns
        closing the file (``with contextlib.closing(fh):``).  The
        ``LATEST`` pointer advances immediately so a monitor started a
        moment later tails this run."""
        if run_id is None:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"{source}-{stamp}-{os.getpid()}"
            n = 0
            while os.path.exists(os.path.join(self.root, run_id)):
                n += 1
                run_id = f"{source}-{stamp}-{os.getpid()}.{n}"
        run_dir = os.path.join(self.root, run_id)
        os.makedirs(run_dir, exist_ok=False)
        fh = open(os.path.join(run_dir, EVENTS_FILE), "a", encoding="utf-8")
        _atomic_write(os.path.join(self.root, _LATEST), run_id + "\n")
        return RunLogger(fh, run_id, clock=clock, observers=observers), fh

    # -- resolution ---------------------------------------------------------
    def latest(self) -> str | None:
        """Run id the ``LATEST`` pointer names (verified to exist)."""
        pointer = os.path.join(self.root, _LATEST)
        if not os.path.exists(pointer):
            return None
        with open(pointer, "r", encoding="utf-8") as fh:
            run_id = fh.read().strip()
        if run_id and os.path.isdir(os.path.join(self.root, run_id)):
            return run_id
        return None

    def events_path(self, run_id: str) -> str:
        path = os.path.join(self.root, run_id, EVENTS_FILE)
        if not os.path.exists(path):
            raise RunLogError(
                f"no run {run_id!r} under {self.root} (no {EVENTS_FILE})"
            )
        return path

    # -- listing ------------------------------------------------------------
    def _info(self, run_id: str) -> RunInfo:
        events = read_events(self.events_path(run_id))
        manifest = manifest_of(events)
        status = "running"
        for event in reversed(events):
            if event["type"] == "run-end":
                status = event.get("status", "completed")
                break
        return RunInfo(
            run_id=run_id,
            path=os.path.join(self.root, run_id),
            source=manifest.get("source", "?"),
            events=len(events),
            status=status,
            started_unix=float(manifest.get("t", 0.0)),
        )

    def list(self) -> list[RunInfo]:
        """Every registered run, oldest first (by manifest time)."""
        if not os.path.isdir(self.root):
            return []
        infos = []
        for name in sorted(os.listdir(self.root)):
            if os.path.exists(os.path.join(self.root, name, EVENTS_FILE)):
                infos.append(self._info(name))
        return sorted(infos, key=lambda i: (i.started_unix, i.run_id))

    # -- retention ----------------------------------------------------------
    def gc(self, keep_last: int) -> list[str]:
        """Drop all but the newest ``keep_last`` runs; the ``LATEST``
        target is never removed.  Returns the dropped run ids."""
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        import shutil

        infos = self.list()
        latest = self.latest()
        keep = {i.run_id for i in infos[-keep_last:]}
        if latest is not None:
            keep.add(latest)
        dropped = []
        for info in infos:
            if info.run_id not in keep:
                shutil.rmtree(info.path)
                dropped.append(info.run_id)
        return dropped


# -- the active-logger stack (tracer idiom) ---------------------------------

_ACTIVE: list[RunLogger] = []


def current_run_logger() -> RunLogger | None:
    """Innermost active run logger (None when run logging is off)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextlib.contextmanager
def run_logging(logger: RunLogger) -> Iterator[RunLogger]:
    """Activate ``logger`` so instrumented sites emit into it
    (nestable, exception-safe; pop-by-identity like the tracer)."""
    _ACTIVE.append(logger)
    try:
        yield logger
    finally:
        for i in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[i] is logger:
                del _ACTIVE[i]
                break
