"""Span profiler: self/total attribution, hot paths, flamegraphs.

Post-processes a :class:`~repro.obs.tracer.Tracer` into the classic
profiler views:

- **self vs total time per span name** — *total* is the span's full
  duration (children included), *self* is what remains after
  subtracting the time covered by nested child spans.  Nesting is
  recovered from interval containment per rank track, so it works for
  live spans (LIFO-nested by construction) and simulated spans
  (laminar list-scheduled windows) alike;
- **hot-path tables** — top-N span names by self time, the "where did
  the iteration actually go" answer behind the paper's §3 compute /
  bubble / communication decomposition;
- **folded stacks** — the semicolon-separated ``collapse`` format
  consumed by flamegraph.pl and speedscope, one line per unique
  root→leaf path weighted by self time.

Times are quantized to integer nanoseconds before attribution.  That
makes the headline invariant *exact* (integer arithmetic, no float
rounding): per rank, the sum of self times over all spans equals the
sum of root-span durations — every traced nanosecond is attributed to
exactly one span, the accounting twin of PR 2's bit-for-bit goodput
sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracer import GLOBAL_RANK, Span, Tracer

#: quantization: span times (seconds) -> integer nanoseconds.
_NS = 1_000_000_000


def _ns(t: float) -> int:
    return round(t * _NS)


def rank_label(rank: int) -> str:
    return "global" if rank == GLOBAL_RANK else f"rank {rank}"


@dataclass
class SpanStat:
    """Aggregated attribution for one span name on one rank track."""

    name: str
    rank: int
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0

    @property
    def total_seconds(self) -> float:
        return self.total_ns / _NS

    @property
    def self_seconds(self) -> float:
        return self.self_ns / _NS


@dataclass
class RankProfile:
    """Attribution for one rank track."""

    rank: int
    wall_ns: int = 0  # sum of root-span durations (total traced time)
    stats: dict[str, SpanStat] = field(default_factory=dict)

    @property
    def self_sum_ns(self) -> int:
        """Sum of self times; equals :attr:`wall_ns` exactly."""
        return sum(s.self_ns for s in self.stats.values())


@dataclass
class ProfileReport:
    """The profiler's output: per-rank attribution + folded stacks."""

    ranks: dict[int, RankProfile] = field(default_factory=dict)
    #: "rank 0;iteration;forward" -> self nanoseconds, aggregated over
    #: every occurrence of that call path.
    folded: dict[str, int] = field(default_factory=dict)

    def by_name(self) -> list[SpanStat]:
        """Cross-rank aggregation by span name, hottest (self) first."""
        merged: dict[str, SpanStat] = {}
        for rp in self.ranks.values():
            for st in rp.stats.values():
                agg = merged.setdefault(
                    st.name, SpanStat(name=st.name, rank=GLOBAL_RANK)
                )
                agg.count += st.count
                agg.total_ns += st.total_ns
                agg.self_ns += st.self_ns
        return sorted(
            merged.values(), key=lambda s: (-s.self_ns, s.name)
        )

    def hot_table(self, n: int = 10) -> str:
        """Top-N hot span names by self time, as a flat-text table."""
        rows = self.by_name()[:n]
        wall = sum(rp.wall_ns for rp in self.ranks.values())
        header = (
            f"{'span':<28} {'count':>7} {'self':>12} {'total':>12} {'self%':>7}"
        )
        lines = [header, "-" * len(header)]
        for st in rows:
            pct = 100.0 * st.self_ns / wall if wall else 0.0
            lines.append(
                f"{st.name:<28} {st.count:>7} {st.self_seconds:>12.6f} "
                f"{st.total_seconds:>12.6f} {pct:>6.2f}%"
            )
        return "\n".join(lines)


def _attribute_rank(rank: int, spans: list[Span], report: ProfileReport) -> None:
    """Containment-based attribution of one rank's spans."""
    rp = report.ranks.setdefault(rank, RankProfile(rank=rank))
    # Parents sort before their children: earlier start first, and on
    # equal starts the longer (enclosing) span first; creation order
    # breaks exact ties (a zero-length child inside a zero-length
    # parent).
    ordered = sorted(spans, key=lambda s: (s.start, -(s.end or 0.0), s.index))
    # stack entries: [span, start_ns, end_ns, child_ns_sum, path]
    open_spans: list[list] = []

    def pop_top() -> None:
        entry = open_spans.pop()
        _close(entry, rp, report)
        if open_spans:  # credit the closed span's duration to its parent
            open_spans[-1][3] += entry[2] - entry[1]

    for s in ordered:
        if not s.closed:
            raise ValueError(f"span {s.name!r} is still open; cannot profile")
        start_ns, end_ns = _ns(s.start), _ns(s.end)
        while open_spans and open_spans[-1][2] <= start_ns:
            pop_top()
        if open_spans and end_ns > open_spans[-1][2]:
            top = open_spans[-1][0]
            raise ValueError(
                f"spans overlap without nesting on {rank_label(rank)}: "
                f"{s.name!r} [{s.start:.9f}, {s.end:.9f}] vs "
                f"{top.name!r} ending at {top.end:.9f}"
            )
        if open_spans:
            path = open_spans[-1][4] + ";" + s.name
        else:
            path = rank_label(rank) + ";" + s.name
            rp.wall_ns += end_ns - start_ns
        open_spans.append([s, start_ns, end_ns, 0, path])
    while open_spans:
        pop_top()


def _close(entry: list, rp: RankProfile, report: ProfileReport) -> None:
    span, start_ns, end_ns, child_sum, path = entry
    dur = end_ns - start_ns
    self_ns = dur - child_sum
    st = rp.stats.setdefault(
        span.name, SpanStat(name=span.name, rank=rp.rank)
    )
    st.count += 1
    st.total_ns += dur
    st.self_ns += self_ns
    report.folded[path] = report.folded.get(path, 0) + self_ns


def profile_tracer(tracer: Tracer) -> ProfileReport:
    """Attribute every traced nanosecond to exactly one span.

    Returns a :class:`ProfileReport`; per rank,
    ``sum(self) == sum(root durations)`` holds as an integer identity.
    """
    by_rank: dict[int, list[Span]] = {}
    for s in tracer.spans:
        by_rank.setdefault(s.rank, []).append(s)
    report = ProfileReport()
    for rank in sorted(by_rank):
        _attribute_rank(rank, by_rank[rank], report)
    return report


def folded_stacks(report: ProfileReport, *, unit_divisor: int = 1000) -> str:
    """The report's call paths in flamegraph ``collapse`` format.

    One ``path value`` line per unique root→leaf path, value in
    integer microseconds by default (``unit_divisor=1000`` from
    nanoseconds); pipe into ``flamegraph.pl`` or open in speedscope.
    Zero-weight paths are kept (they document structure) unless the
    quantized value rounds to zero *and* the raw self time was zero.
    """
    lines = []
    for path in sorted(report.folded):
        value = report.folded[path] // unit_divisor
        if value <= 0 and report.folded[path] > 0:
            value = 1  # don't erase real-but-tiny frames entirely
        lines.append(f"{path} {value}")
    return "\n".join(lines)


def write_folded(report: ProfileReport, path: str, *,
                 unit_divisor: int = 1000) -> None:
    with open(path, "w") as f:
        f.write(folded_stacks(report, unit_divisor=unit_divisor) + "\n")
