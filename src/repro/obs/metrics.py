"""Metrics primitives: counters, gauges, histograms, and their registry.

One queryable store for everything the instrumentation layer measures.
The conventions mirror Prometheus:

- a :class:`Counter` only goes up (bytes moved, FLOPs executed, spans
  opened);
- a :class:`Gauge` is a point-in-time value (last iteration time,
  in-flight microbatches);
- a :class:`Histogram` summarizes a distribution (span durations,
  per-transfer sizes).

Metric names are dotted paths (``comm.bytes.tp``, ``flops.attention``);
the registry creates metrics on first touch so instrumentation sites
never need registration boilerplate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class Counter:
    """Monotonically increasing accumulator."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins point-in-time value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming distribution summary (count/sum/min/max + samples)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observed samples, q in [0, 100].

        Raises :class:`ValueError` on an empty histogram: a percentile
        of nothing has no value, and silently returning 0 would make a
        missing measurement indistinguishable from a zero-duration one
        (the bench statistics depend on this distinction).
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self.samples:
            raise ValueError(
                "empty histogram has no percentiles; observe() at least "
                "one sample first (check .count before querying)"
            )
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(q / 100 * len(ordered)))
        return ordered[rank]

    def summary(self) -> dict:
        """Distribution summary dict.

        An empty histogram summarizes to ``{"count": 0, "sum": 0.0}``
        and nothing else — no NaN/zero placeholders for order
        statistics that do not exist (the same contract as
        :meth:`percentile`, which raises when empty).
        """
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p10": self.percentile(10),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


@dataclass
class MetricsRegistry:
    """Get-or-create store of named metrics."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram())

    def counter_value(self, name: str) -> float:
        """Value of ``name`` without creating it (0 when absent)."""
        c = self.counters.get(name)
        return c.value if c is not None else 0.0

    def as_dict(self) -> dict:
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self.histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)
