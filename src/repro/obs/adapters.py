"""Adapter shims feeding the existing meters into the tracing layer.

The repository grew three disconnected instrumentation islands —
:class:`~repro.nn.profiler.FlopMeter` (GEMM FLOPs),
:class:`~repro.comm.traffic.TrafficLog` (per-transfer bytes), and the
simulator's timeline windows.  These shims route the first two into a
:class:`~repro.obs.tracer.Tracer` so FLOPs, bytes, and span timings
land in one queryable store:

- :class:`TracerFlopMeter` is a :class:`FlopMeter` that forwards every
  ``add`` to the tracer; :func:`flop_adapter` installs one on the
  profiler's active-meter stack for the duration of a trace (this is
  done automatically by :func:`repro.obs.trace`).
- ``TrafficLog`` needs no subclass: its ``add`` already reports to
  every active tracer via :func:`repro.obs.tracer.record_transfer`.
  :func:`replay_traffic_log` is the offline counterpart — it feeds an
  already-collected log into a tracer's metrics, for traces assembled
  after the fact.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.nn import profiler

from .tracer import Tracer


class TracerFlopMeter(profiler.FlopMeter):
    """A FlopMeter whose additions are mirrored into a tracer."""

    def __init__(self, tracer: Tracer):
        super().__init__()
        self.tracer = tracer

    def add(self, category: str, flops: int) -> None:
        super().add(category, flops)
        self.tracer.on_flops(category, flops)


@contextlib.contextmanager
def flop_adapter(tracer: Tracer) -> Iterator[TracerFlopMeter]:
    """Install a :class:`TracerFlopMeter` on the profiler's active stack
    so ``record_gemm_flops`` reaches ``tracer`` for the duration."""
    meter = TracerFlopMeter(tracer)
    profiler._ACTIVE.append(meter)
    try:
        yield meter
    finally:
        for i in range(len(profiler._ACTIVE) - 1, -1, -1):
            if profiler._ACTIVE[i] is meter:
                del profiler._ACTIVE[i]
                break


def replay_traffic_log(tracer: Tracer, log) -> None:
    """Feed an already-collected TrafficLog into ``tracer``'s metrics.

    Per-record attribution to spans is impossible after the fact, so
    bytes land in the registry only (``comm.bytes.<kind>``).
    """
    for record in log.records:
        tracer.metrics.counter(f"comm.bytes.{record.kind.value}").inc(
            record.nbytes
        )
        tracer.metrics.counter("comm.bytes.total").inc(record.nbytes)
        tracer.metrics.counter("comm.transfers").inc()
