"""Unified observability: tracing, metrics, and exporters.

``repro.obs`` is the single place where the system's three measurement
streams meet:

- **spans** — structured, nestable ``(rank, phase, name, start, end)``
  intervals from the schedule executor, the comm primitives, the
  trainers, and the simulator (:mod:`repro.obs.tracer`);
- **metrics** — counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry`, fed by the
  :class:`~repro.nn.profiler.FlopMeter` and
  :class:`~repro.comm.traffic.TrafficLog` adapters
  (:mod:`repro.obs.adapters`);
- **exports** — Chrome ``trace_event`` JSON (Perfetto /
  chrome://tracing), a flat phase-summary table, and a metrics dump
  (:mod:`repro.obs.export`), surfaced by ``python -m repro trace``.

Activate with ``with trace() as tracer: ...``; when no tracer is
active every instrumentation hook short-circuits on an empty list.
"""

from .adapters import TracerFlopMeter, flop_adapter, replay_traffic_log
from .monitor import (
    Alert,
    CheckpointHealthDetector,
    Detector,
    DetectorScore,
    HeartbeatGapDetector,
    LossSpikeDetector,
    Monitor,
    PreemptionStormDetector,
    QueueGrowthDetector,
    Scoreboard,
    StragglerDetector,
    ThroughputCollapseDetector,
    TtftSloDetector,
    default_detectors,
    render_dashboard,
    run_monitor,
    score_run,
    sparkline,
)
from .runlog import (
    RUNLOG_SCHEMA_VERSION,
    RunInfo,
    RunLogError,
    RunLogger,
    RunRegistry,
    current_run_logger,
    manifest_of,
    parse_events,
    read_events,
    run_logging,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    counter_events,
    metrics_counter_events,
    metrics_json,
    phase_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    ProfileReport,
    RankProfile,
    SpanStat,
    folded_stacks,
    profile_tracer,
    write_folded,
)
from .telemetry import (
    MemoryBreakdown,
    ThroughputReport,
    sample_memory,
    sample_throughput,
    throughput_report,
)
from .tracer import (
    GLOBAL_RANK,
    CounterSample,
    Span,
    Tracer,
    current_tracer,
    record_transfer,
    sample,
    span,
    trace,
    tracing_active,
)

__all__ = [
    "GLOBAL_RANK",
    "CounterSample",
    "Span",
    "Tracer",
    "trace",
    "span",
    "sample",
    "current_tracer",
    "tracing_active",
    "record_transfer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TracerFlopMeter",
    "flop_adapter",
    "replay_traffic_log",
    "chrome_trace",
    "chrome_trace_events",
    "counter_events",
    "metrics_counter_events",
    "write_chrome_trace",
    "phase_summary",
    "metrics_json",
    "write_metrics",
    "validate_chrome_trace",
    "ProfileReport",
    "RankProfile",
    "SpanStat",
    "profile_tracer",
    "folded_stacks",
    "write_folded",
    "ThroughputReport",
    "MemoryBreakdown",
    "throughput_report",
    "sample_throughput",
    "sample_memory",
    "RUNLOG_SCHEMA_VERSION",
    "RunLogger",
    "RunLogError",
    "RunRegistry",
    "RunInfo",
    "current_run_logger",
    "run_logging",
    "read_events",
    "parse_events",
    "manifest_of",
    "Alert",
    "Detector",
    "LossSpikeDetector",
    "ThroughputCollapseDetector",
    "StragglerDetector",
    "HeartbeatGapDetector",
    "CheckpointHealthDetector",
    "QueueGrowthDetector",
    "TtftSloDetector",
    "PreemptionStormDetector",
    "default_detectors",
    "Monitor",
    "run_monitor",
    "Scoreboard",
    "DetectorScore",
    "score_run",
    "render_dashboard",
    "sparkline",
]
