"""Structured span tracing with a process-global active-tracer stack.

The tracing twin of :func:`repro.nn.profiler.count_flops`: activating a
:class:`Tracer` (``with trace() as tracer:``) makes every instrumented
site in the codebase — the schedule executor's per-op forward/backward
work, each collective in :mod:`repro.comm.primitives`, the trainer's
iteration phases, the discrete-event simulator's timed ops — emit
:class:`Span` records into it.  When no tracer is active every hook is
a single ``if`` on an empty list, so the instrumented hot paths stay
effectively free (see ``benchmarks/bench_trace_overhead.py``).

A span carries ``(rank, phase, name, start, end)`` plus attached
counters (``bytes``, ``flops``, ``stage``, ...).  Ranks are *virtual
device* ranks — one Chrome-trace track each; :data:`GLOBAL_RANK` marks
whole-cluster phases (gradient all-reduce, optimizer step) that do not
belong to a single device.

Two clock regimes coexist:

- **live spans** (``tracer.span(...)`` context manager) read the
  tracer's clock — wall time by default, or any injected callable such
  as a deterministic tick counter;
- **simulated spans** (``tracer.add_span(...)``) carry explicit
  start/end from a modelled timeline, e.g. the §2.2 list scheduler.

Byte and FLOP accounting feed in through adapters: every
:class:`~repro.comm.traffic.TrafficLog` transfer and every
:func:`~repro.nn.profiler.record_gemm_flops` call is attributed to the
innermost open span *and* to the tracer's
:class:`~repro.obs.metrics.MetricsRegistry` (``comm.bytes.<kind>``,
``flops.<category>``), so span totals match the logs exactly.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from .metrics import MetricsRegistry

#: Track id for spans that describe the whole virtual cluster rather
#: than one device (iteration, gradient all-reduce, optimizer).
GLOBAL_RANK = -1


@dataclass(frozen=True)
class CounterSample:
    """One timestamped value of a named counter series on one rank.

    The time-series twin of a :class:`~repro.obs.metrics.Gauge`: gauges
    keep only the last value, samples keep ``(t, value)`` pairs so
    memory/throughput timelines can be rendered as Chrome-trace counter
    (``ph: "C"``) tracks next to the spans.
    """

    name: str
    rank: int
    t: float
    value: float


@dataclass
class Span:
    """One traced interval on one virtual rank's timeline."""

    name: str
    phase: str
    rank: int
    start: float
    end: float | None = None
    depth: int = 0
    index: int = 0  # creation order; stable tie-break for equal starts
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def add_counter(self, name: str, amount: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.phase}] {self.name} rank={self.rank} "
            f"t=({self.start:.6g}, {self.end if self.end is None else round(self.end, 6)})"
        )


class Tracer:
    """Collects spans and metrics for one traced window.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time for live
        spans.  Defaults to :func:`time.perf_counter`.  Simulated spans
        bypass the clock via :meth:`add_span`.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.spans: list[Span] = []
        self.samples: list[CounterSample] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []
        self._epoch: float | None = None

    # -- live (clocked) spans ------------------------------------------------
    def begin(self, name: str, phase: str = "", rank: int = GLOBAL_RANK,
              **counters: float) -> Span:
        """Open a span at the current clock time (normalized so the
        first event of the trace is t=0)."""
        now = self.clock()
        if self._epoch is None:
            self._epoch = now
        span = Span(
            name=name,
            phase=phase,
            rank=rank,
            start=now - self._epoch,
            depth=len(self._stack),
            index=len(self.spans),
            counters=dict(counters),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span``; it must be the innermost open span (strict
        nesting — the invariant the Chrome-trace format requires)."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span; "
                "spans must close in LIFO order"
            )
        self._stack.pop()
        assert self._epoch is not None
        span.end = self.clock() - self._epoch
        return span

    @contextlib.contextmanager
    def span(self, name: str, phase: str = "", rank: int = GLOBAL_RANK,
             **counters: float) -> Iterator[Span]:
        """Context manager opening a nested live span (exception-safe)."""
        s = self.begin(name, phase, rank, **counters)
        try:
            yield s
        finally:
            self.end(s)

    # -- simulated (explicitly timed) spans ---------------------------------
    def add_span(self, name: str, phase: str, rank: int, start: float,
                 end: float, **counters: float) -> Span:
        """Record a complete span with explicit simulated-clock times."""
        if end < start:
            raise ValueError(f"span {name!r}: end {end} < start {start}")
        span = Span(
            name=name,
            phase=phase,
            rank=rank,
            start=start,
            end=end,
            depth=len(self._stack),
            index=len(self.spans),
            counters=dict(counters),
        )
        self.spans.append(span)
        return span

    # -- counter time series -------------------------------------------------
    def sample(self, name: str, value: float, rank: int = GLOBAL_RANK,
               t: float | None = None) -> CounterSample:
        """Record one point of a counter time series.

        ``t`` follows the two clock regimes of spans: omitted, it reads
        the tracer's clock (live, epoch-normalized like :meth:`begin`);
        explicit, it is a simulated-timeline timestamp.  The last value
        per series is mirrored into the metrics registry as a gauge so
        point-in-time queries don't have to scan the series.
        """
        if t is None:
            now = self.clock()
            if self._epoch is None:
                self._epoch = now
            t = now - self._epoch
        s = CounterSample(name=name, rank=rank, t=t, value=float(value))
        self.samples.append(s)
        self.metrics.gauge(name).set(value)
        return s

    def series(self, name: str, rank: int | None = None) -> list[CounterSample]:
        """All samples of one series, time-ordered as recorded."""
        return [
            s for s in self.samples
            if s.name == name and (rank is None or s.rank == rank)
        ]

    # -- attribution hooks ---------------------------------------------------
    @property
    def current(self) -> Span | None:
        """Innermost open live span, if any."""
        return self._stack[-1] if self._stack else None

    def on_transfer(self, nbytes: int, kind: str) -> None:
        """Attribute one logged transfer (called by the TrafficLog hook)."""
        self.metrics.counter(f"comm.bytes.{kind}").inc(nbytes)
        self.metrics.counter("comm.bytes.total").inc(nbytes)
        self.metrics.counter("comm.transfers").inc()
        if self._stack:
            self._stack[-1].add_counter("bytes", nbytes)

    def on_flops(self, category: str, flops: int) -> None:
        """Attribute GEMM work (called by the FlopMeter adapter)."""
        self.metrics.counter(f"flops.{category}").inc(flops)
        self.metrics.counter("flops.total").inc(flops)
        if self._stack:
            self._stack[-1].add_counter("flops", flops)

    # -- queries -------------------------------------------------------------
    def spans_by_phase(self, phase: str) -> list[Span]:
        return [s for s in self.spans if s.phase == phase]

    def counter_total(self, counter: str, phase: str | None = None) -> float:
        """Sum a span counter over (optionally phase-filtered) spans.

        Each transfer/FLOP lands on exactly one span, so the unfiltered
        total equals the corresponding log's ground truth.
        """
        return sum(
            s.counters.get(counter, 0)
            for s in self.spans
            if phase is None or s.phase == phase
        )

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def __len__(self) -> int:
        return len(self.spans)


_ACTIVE: list[Tracer] = []


def current_tracer() -> Tracer | None:
    """Innermost active tracer (None when tracing is off)."""
    return _ACTIVE[-1] if _ACTIVE else None


def tracing_active() -> bool:
    return bool(_ACTIVE)


def record_transfer(nbytes: int, kind: str) -> None:
    """Report one transfer to every active tracer (no-op when none).

    This is the :class:`~repro.comm.traffic.TrafficLog` adapter entry
    point; it is called from ``TrafficLog.add`` so *every* byte the
    comm substrate accounts for is also attributed to the trace.
    """
    for tracer in _ACTIVE:
        tracer.on_transfer(nbytes, kind)


def sample(name: str, value: float, rank: int = GLOBAL_RANK,
           t: float | None = None) -> None:
    """Record a counter sample on the current tracer (no-op when
    tracing is off — the same single-check null path as :func:`span`)."""
    if _ACTIVE:
        _ACTIVE[-1].sample(name, value, rank=rank, t=t)


@contextlib.contextmanager
def span(name: str, phase: str = "", rank: int = GLOBAL_RANK,
         **counters: float) -> Iterator[Span | None]:
    """Open a span on the current tracer, or do nothing if tracing is
    off.  The null path is a single truthiness check — instrumentation
    sites can use this unconditionally."""
    if not _ACTIVE:
        yield None
        return
    with _ACTIVE[-1].span(name, phase, rank, **counters) as s:
        yield s


@contextlib.contextmanager
def trace(clock: Callable[[], float] | None = None) -> Iterator[Tracer]:
    """Activate a fresh :class:`Tracer` (nestable, exception-safe).

    Also installs the FLOP adapter so GEMM work recorded via
    :func:`repro.nn.profiler.record_gemm_flops` lands in the tracer's
    metrics and on the innermost open span.
    """
    from .adapters import flop_adapter  # deferred: adapters import Tracer

    tracer = Tracer(clock=clock)
    _ACTIVE.append(tracer)
    try:
        with flop_adapter(tracer):
            yield tracer
    finally:
        # Pop by identity: a second tracer created while this one is
        # active must not be confused with it (same fix as the
        # count_flops() nesting bug).
        for i in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[i] is tracer:
                del _ACTIVE[i]
                break
