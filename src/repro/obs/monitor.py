"""Mission control: online anomaly detectors over a run event stream.

The detectors consume the telemetry events of a :mod:`repro.obs.runlog`
stream (``iteration``, ``heartbeat``, ``recovery``, ``checkpoint``) one
at a time — never the ground-truth ``fault`` events — and emit typed
:class:`Alert` records with severity and evidence.  Each one emulates a
diagnostic MegaScale (arXiv 2402.15627) runs in production:

- :class:`LossSpikeDetector` — robust z-score of the loss against a
  rolling median/MAD window (MegaScale's loss-blowup monitor);
- :class:`ThroughputCollapseDetector` — tokens/s against the run's
  expected throughput: the eq. (3) analytic expectation when the
  manifest carries one (simulator runs), else a self-calibrated
  rolling median (MegaScale's "performance degradation" dashboards);
- :class:`StragglerDetector` — per-rank span self-time skew,
  leave-one-out median (MegaScale's straggler hunter);
- :class:`HeartbeatGapDetector` — consecutive missed liveness rounds,
  the stream twin of the
  :class:`repro.resilience.detect.HeartbeatDetector` latency model;
- :class:`CheckpointHealthDetector` — save retries (flaky filesystem)
  and corrupted-snapshot skips during restore.

Serve-side detectors watch the same stream when it comes from the
continuous-batching engine (``request`` lifecycle events plus
``iteration`` records carrying ``waiting``/``tokens`` counts); they
no-op on training streams:

- :class:`QueueGrowthDetector` — the waiting queue deep *and*
  non-decreasing for several consecutive ticks (admission starvation,
  e.g. an allocator-exhaustion storm);
- :class:`TtftSloDetector` — a request's time-to-first-token past its
  SLO, or timed out without ever producing a token (decode crashes
  push the victim's TTFT through backoff);
- :class:`PreemptionStormDetector` — preempt/retry events clustered
  inside a sliding step window (cache thrash or repeated fault
  recovery).

:class:`Monitor` drives a detector set over a stream (live, as a
:class:`~repro.obs.runlog.RunLogger` observer, or offline over a log
file) and keeps the state the ``python -m repro monitor`` dashboard
renders: metric histories, per-rank health, the alert feed, and
acknowledgements.

Because the chaos harness writes ground-truth ``fault`` events into the
same log, detector quality is *measurable*: :func:`score_run` matches
alerts to injected faults and reports per-detector precision, recall,
and detection latency — the scoreboard ``repro chaos --monitor``
prints and exports via ``--metrics-out``.
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

SEVERITIES = ("warning", "critical")

#: Ground-truth fault kinds → the detector expected to catch them.
EXPECTED_DETECTOR = {
    "kill": "heartbeat-gap",
    "loss-spike": "loss-spike",
    "stall": "throughput-collapse",
    "rank-stall": "straggler",
    "save-failure": "checkpoint",
    "corrupt-checkpoint": "checkpoint",
    # serve-side chaos (repro.resilience.serve_chaos)
    "alloc-exhaustion": "queue-growth",
    "decode-crash": "ttft-slo",
    "kv-corruption": "preemption-storm",
}


@dataclass(frozen=True)
class Alert:
    """One detector firing: what, when, how bad, and the evidence."""

    detector: str
    severity: str  # warning | critical
    iteration: int
    seq: int       # event sequence number at which the detector fired
    message: str
    evidence: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def describe(self) -> str:
        flag = "!!" if self.severity == "critical" else " !"
        return (f"{flag} it={self.iteration:>4} [{self.detector}] "
                f"{self.message}")

    def as_event_fields(self) -> dict:
        return {
            "detector": self.detector, "severity": self.severity,
            "iteration": self.iteration, "alert_seq": self.seq,
            "message": self.message, "evidence": self.evidence,
        }


class Detector:
    """Base class: feed events, collect alerts.

    ``observe`` returns the alerts this event triggered (usually 0 or
    1).  Detectors are stream-online: no lookahead, state only.
    """

    name = "detector"

    def observe(self, event: dict) -> list[Alert]:
        raise NotImplementedError


class LossSpikeDetector(Detector):
    """Robust z-score of the loss vs a rolling median/MAD window.

    The MAD is scaled by the 1.4826 normal-consistency constant; a
    floor keeps the score finite on near-constant windows (early
    training on a tiny model is *very* flat).
    """

    name = "loss-spike"

    def __init__(self, window: int = 16, z_threshold: float = 8.0,
                 min_points: int = 4):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be > 0, got {z_threshold}")
        self.window: deque[float] = deque(maxlen=window)
        self.z_threshold = z_threshold
        self.min_points = max(2, min_points)

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] != "iteration" or event.get("loss") is None:
            return []
        loss = float(event["loss"])
        alerts: list[Alert] = []
        if len(self.window) >= self.min_points:
            med = statistics.median(self.window)
            mad = statistics.median(abs(x - med) for x in self.window)
            scale = 1.4826 * mad + 1e-3 * max(abs(med), 1e-9)
            z = (loss - med) / scale
            if z > self.z_threshold:
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    iteration=int(event["iteration"]),
                    seq=int(event["seq"]),
                    message=(f"loss {loss:.4g} is {z:.1f} MADs above "
                             f"rolling median {med:.4g}"),
                    evidence={"loss": loss, "median": med, "mad": mad,
                              "z": z},
                ))
        if not alerts:
            # Spikes stay out of the baseline so one blow-up does not
            # widen the window enough to mask the next.
            self.window.append(loss)
        return alerts


class ThroughputCollapseDetector(Detector):
    """tokens/s against the run's expected throughput.

    ``expected_tokens_per_s`` (from the run manifest, where the
    simulator records its eq. (3)-derived analytic rate) pins the
    baseline; without it the detector self-calibrates on a rolling
    median of healthy iterations.  The collapse must *persist* for
    ``min_consecutive`` records before the (once-per-episode) alert
    fires — a single slow iteration on a busy machine is scheduler
    jitter, not a collapse.
    """

    name = "throughput-collapse"

    def __init__(self, collapse_fraction: float = 0.5, window: int = 8,
                 min_points: int = 3, min_consecutive: int = 2):
        if not 0 < collapse_fraction < 1:
            raise ValueError(
                f"collapse_fraction must be in (0, 1), got {collapse_fraction}"
            )
        if min_consecutive < 1:
            raise ValueError(
                f"min_consecutive must be >= 1, got {min_consecutive}"
            )
        self.collapse_fraction = collapse_fraction
        self.window: deque[float] = deque(maxlen=window)
        self.min_points = max(1, min_points)
        self.min_consecutive = min_consecutive
        self.expected: float | None = None
        self._below = 0
        self._declared = False

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] == "run-start":
            expected = event.get("expected_tokens_per_s")
            self.expected = float(expected) if expected else None
            return []
        if event["type"] != "iteration":
            return []
        rate = event.get("tokens_per_s")
        if rate is None:
            return []
        rate = float(rate)
        if self.expected is not None:
            baseline = self.expected
        elif len(self.window) >= self.min_points:
            baseline = statistics.median(self.window)
        else:
            baseline = None
        alerts: list[Alert] = []
        if baseline is not None and rate < self.collapse_fraction * baseline:
            self._below += 1
            if self._below >= self.min_consecutive and not self._declared:
                self._declared = True
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    iteration=int(event["iteration"]),
                    seq=int(event["seq"]),
                    message=(f"throughput {rate:.4g} tokens/s below "
                             f"{self.collapse_fraction:.0%} of expected "
                             f"{baseline:.4g} for {self._below} "
                             f"consecutive records"),
                    evidence={"tokens_per_s": rate, "expected": baseline,
                              "fraction": (rate / baseline) if baseline
                              else 0.0,
                              "consecutive": self._below},
                ))
        else:
            self._below = 0
            self._declared = False
            self.window.append(rate)  # healthy samples calibrate
        return alerts


class StragglerDetector(Detector):
    """Per-rank span self-time skew, leave-one-out median.

    A rank is a straggler when its busy time exceeds ``skew_threshold``
    times the median of the *other* ranks' busy times for
    ``min_consecutive`` consecutive iteration records — synchronous
    training paces every iteration at the slowest rank, so this is
    exactly the skew that costs goodput, and demanding persistence
    keeps one jittery record from raising a false alarm.
    """

    name = "straggler"

    def __init__(self, skew_threshold: float = 3.0, min_ranks: int = 2,
                 min_consecutive: int = 2):
        if skew_threshold <= 1:
            raise ValueError(
                f"skew_threshold must be > 1, got {skew_threshold}"
            )
        if min_consecutive < 1:
            raise ValueError(
                f"min_consecutive must be >= 1, got {min_consecutive}"
            )
        self.skew_threshold = skew_threshold
        self.min_ranks = max(2, min_ranks)
        self.min_consecutive = min_consecutive
        self._skewed_rounds: dict[int, int] = {}
        self.stragglers: set[int] = set()  # declared (persistent) ranks

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] != "iteration":
            return []
        busy = event.get("rank_busy")
        if not busy or len(busy) < self.min_ranks:
            return []
        busy = {int(r): float(v) for r, v in busy.items()}
        alerts: list[Alert] = []
        for rank, t in busy.items():
            others = [v for r, v in busy.items() if r != rank]
            med = statistics.median(others)
            if med > 0 and t > self.skew_threshold * med:
                rounds = self._skewed_rounds.get(rank, 0) + 1
                self._skewed_rounds[rank] = rounds
                if (rounds >= self.min_consecutive
                        and rank not in self.stragglers):
                    self.stragglers.add(rank)  # alert once per episode
                    alerts.append(Alert(
                        detector=self.name, severity="warning",
                        iteration=int(event["iteration"]),
                        seq=int(event["seq"]),
                        message=(f"rank {rank} busy {t:.4g}s is "
                                 f"{t / med:.1f}x the other ranks' "
                                 f"median {med:.4g}s "
                                 f"({rounds} consecutive records)"),
                        evidence={"rank": rank, "busy": t, "median": med,
                                  "skew": t / med, "consecutive": rounds},
                    ))
            else:
                self._skewed_rounds[rank] = 0
                self.stragglers.discard(rank)
        return alerts


class HeartbeatGapDetector(Detector):
    """Consecutive missed liveness rounds declare a rank dead.

    The stream twin of the PR 2 latency model
    (:class:`repro.resilience.detect.HeartbeatDetector`): a rank absent
    from ``missed_threshold`` consecutive ``heartbeat`` rounds raises a
    critical alert.  Recovery events (restore/reshard/restart) reset
    the roster — after a reshard the world legitimately shrinks.
    """

    name = "heartbeat-gap"

    _RESETS = ("restore", "reshard", "restart-from-scratch")

    def __init__(self, missed_threshold: int = 2):
        if missed_threshold < 1:
            raise ValueError(
                f"missed_threshold must be >= 1, got {missed_threshold}"
            )
        self.missed_threshold = missed_threshold
        self.missed: dict[int, int] = {}
        self.declared: set[int] = set()

    def _reset(self) -> None:
        self.missed.clear()
        self.declared.clear()

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] == "run-start":
            self._reset()
            return []
        if event["type"] == "recovery" and event.get("kind") in self._RESETS:
            self._reset()
            return []
        if event["type"] != "heartbeat":
            return []
        alive = set(int(r) for r in event["ranks"])
        for rank in alive:
            self.missed[rank] = 0
            self.declared.discard(rank)
        alerts: list[Alert] = []
        for rank in set(self.missed) - alive:
            self.missed[rank] += 1
            if (self.missed[rank] >= self.missed_threshold
                    and rank not in self.declared):
                self.declared.add(rank)
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    iteration=int(event.get("iteration", -1)),
                    seq=int(event["seq"]),
                    message=(f"rank {rank} silent for "
                             f"{self.missed[rank]} heartbeat rounds"),
                    evidence={"rank": rank, "missed": self.missed[rank]},
                ))
        return alerts


class CheckpointHealthDetector(Detector):
    """Checkpoint-layer trouble: transient save retries (warning) and
    corrupted snapshots skipped during restore (critical — the run just
    lost committed progress to bit-rot)."""

    name = "checkpoint"

    def __init__(self):
        self._seen: set[tuple[str, int]] = set()  # dedup per (kind, it)

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] != "recovery":
            return []
        kind = event.get("kind")
        if kind not in ("save-retry", "checkpoint-skipped"):
            return []
        iteration = int(event.get("iteration", -1))
        key = (kind, iteration)
        if key in self._seen:
            return []
        self._seen.add(key)
        critical = kind == "checkpoint-skipped"
        return [Alert(
            detector=self.name,
            severity="critical" if critical else "warning",
            iteration=iteration, seq=int(event["seq"]),
            message=(
                f"restore skipped corrupted checkpoint at iteration "
                f"{iteration}" if critical else
                f"checkpoint save at iteration {iteration} needed a retry"
            ),
            evidence={"kind": kind, "detail": event.get("detail", "")},
        )]


class QueueGrowthDetector(Detector):
    """Admission starvation: the waiting queue both deep and
    non-decreasing for ``min_consecutive`` consecutive serve iteration
    records.

    Depth alone is not a signal under bursty arrivals (a burst drains);
    a deep queue that *keeps not draining* is -- the symptom of an
    allocator-exhaustion storm or a stuck scheduler.  Alerts once per
    episode; the episode ends when the queue dips below ``min_depth``.
    """

    name = "queue-growth"

    def __init__(self, min_depth: int = 6, min_consecutive: int = 3):
        if min_depth < 1:
            raise ValueError(f"min_depth must be >= 1, got {min_depth}")
        if min_consecutive < 1:
            raise ValueError(
                f"min_consecutive must be >= 1, got {min_consecutive}"
            )
        self.min_depth = min_depth
        self.min_consecutive = min_consecutive
        self._last: int | None = None
        self._rounds = 0
        self._declared = False

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] != "iteration" or event.get("waiting") is None:
            return []
        waiting = int(event["waiting"])
        alerts: list[Alert] = []
        grown = self._last is not None and waiting >= self._last
        if waiting >= self.min_depth and grown:
            self._rounds += 1
            if self._rounds >= self.min_consecutive and not self._declared:
                self._declared = True
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    iteration=int(event["iteration"]),
                    seq=int(event["seq"]),
                    message=(f"waiting queue at {waiting} and "
                             f"non-decreasing for {self._rounds} "
                             f"consecutive ticks"),
                    evidence={"waiting": waiting,
                              "consecutive": self._rounds},
                ))
        else:
            self._rounds = 0
            if waiting < self.min_depth:
                self._declared = False
        self._last = waiting
        return alerts


class TtftSloDetector(Detector):
    """Time-to-first-token past the SLO, on the engine's virtual clock.

    Fires on the late ``first-token`` itself, or on a ``timeout`` of a
    request that never produced one (a crash-looped or starved request
    breaches the SLO without ever reaching ``first-token``).  At most
    one alert per request.
    """

    name = "ttft-slo"

    def __init__(self, slo_steps: int = 32):
        if slo_steps < 1:
            raise ValueError(f"slo_steps must be >= 1, got {slo_steps}")
        self.slo_steps = slo_steps
        self._arrived: dict[str, int] = {}
        self._alerted: set[str] = set()

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] != "request":
            return []
        phase, rid = event.get("phase"), event.get("request_id")
        step = int(event.get("step", 0))
        if phase == "arrive":
            self._arrived[rid] = step
            return []
        if rid not in self._arrived or rid in self._alerted:
            return []
        if phase == "first-token":
            ttft = step - self._arrived[rid]
        elif phase == "timeout":
            ttft = step - self._arrived[rid]  # never served at all
        else:
            return []
        if ttft <= self.slo_steps:
            return []
        self._alerted.add(rid)
        starved = phase == "timeout"
        return [Alert(
            detector=self.name, severity="critical",
            iteration=step, seq=int(event["seq"]),
            message=(f"request {rid} "
                     + ("timed out with no first token after"
                        if starved else "first token after")
                     + f" {ttft} steps (SLO {self.slo_steps})"),
            evidence={"request_id": rid, "ttft_steps": ttft,
                      "slo_steps": self.slo_steps, "starved": starved},
        )]


class PreemptionStormDetector(Detector):
    """Preempt/retry churn clustered in a sliding virtual-clock window.

    Healthy continuous batching preempts occasionally; ``threshold``
    such events inside ``window_steps`` is thrash -- repeated fault
    recovery (KV corruption retries) or a pool far too small.  Alerts
    once per episode; the episode ends when the window empties.
    """

    name = "preemption-storm"

    def __init__(self, window_steps: int = 8, threshold: int = 4):
        if window_steps < 1:
            raise ValueError(
                f"window_steps must be >= 1, got {window_steps}"
            )
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.window_steps = window_steps
        self.threshold = threshold
        self._events: deque[int] = deque()
        self._declared = False

    def observe(self, event: dict) -> list[Alert]:
        if event["type"] != "request":
            return []
        phase = event.get("phase")
        if phase not in ("preempt", "retry"):
            return []
        step = int(event.get("step", 0))
        self._events.append(step)
        while self._events and self._events[0] < step - self.window_steps:
            self._events.popleft()
        count = len(self._events)
        if count < self.threshold:
            self._declared = False  # the storm abated; episode over
            return []
        if self._declared:
            return []
        self._declared = True
        return [Alert(
            detector=self.name, severity="warning",
            iteration=step, seq=int(event["seq"]),
            message=(f"{count} preempt/retry events within "
                     f"{self.window_steps} steps"),
            evidence={"count": count, "window_steps": self.window_steps},
        )]


def default_detectors() -> list[Detector]:
    """The default-threshold detector set the acceptance grid scores.

    Includes the serve-side detectors: they key on fields only the
    serve engine emits (``waiting`` iteration counts, ``request``
    events), so they are inert on training streams.
    """
    return [
        LossSpikeDetector(),
        ThroughputCollapseDetector(),
        StragglerDetector(),
        HeartbeatGapDetector(),
        CheckpointHealthDetector(),
        QueueGrowthDetector(),
        TtftSloDetector(),
        PreemptionStormDetector(),
    ]


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------


@dataclass
class RankHealth:
    """Dashboard state for one rank."""

    rank: int
    status: str = "ok"  # ok | slow | silent | lost
    last_busy: float | None = None


class Monitor:
    """Drives a detector set over a run event stream.

    Use live by attaching :meth:`observe` as a
    :class:`~repro.obs.runlog.RunLogger` observer, or offline via
    :func:`run_monitor` over a parsed log.  Keeps everything the TTY
    dashboard renders: manifest, metric histories, per-rank health,
    alert feed, acknowledgements.
    """

    def __init__(self, detectors: list[Detector] | None = None):
        self.detectors = (detectors if detectors is not None
                          else default_detectors())
        self.alerts: list[Alert] = []
        self.acks: list[tuple[str, int]] = []  # (detector, ack seq)
        self.manifest: dict = {}
        self.losses: list[float] = []
        self.tokens_per_s: list[float] = []
        self.mfu: list[float] = []
        self.iterations = 0
        self.checkpoints = 0
        self.recoveries = 0
        self.faults_injected = 0
        self.status = "running"
        self.ranks: dict[int, RankHealth] = {}
        self.events_seen = 0

    # -- stream consumption -------------------------------------------------
    def observe(self, event: dict) -> list[Alert]:
        """Feed one event; returns the alerts it triggered."""
        self.events_seen += 1
        etype = event["type"]
        if etype == "run-start":
            self.manifest = event
        elif etype == "iteration":
            self.iterations = max(self.iterations,
                                  int(event["iteration"]) + 1)
            if event.get("loss") is not None:
                self.losses.append(float(event["loss"]))
            if event.get("tokens_per_s") is not None:
                self.tokens_per_s.append(float(event["tokens_per_s"]))
            if event.get("mfu") is not None:
                self.mfu.append(float(event["mfu"]))
            for r, v in (event.get("rank_busy") or {}).items():
                health = self.ranks.setdefault(int(r), RankHealth(int(r)))
                health.last_busy = float(v)
        elif etype == "heartbeat":
            for r in event["ranks"]:
                self.ranks.setdefault(int(r), RankHealth(int(r)))
        elif etype == "checkpoint":
            self.checkpoints += 1
        elif etype == "recovery":
            self.recoveries += 1
            if event.get("kind") == "reshard":
                self.ranks.clear()  # world changed; roster rebuilds
        elif etype == "fault":
            self.faults_injected += 1
        elif etype == "ack":
            self.acks.append((event["detector"], int(event["seq"])))
        elif etype == "run-end":
            self.status = event.get("status", "completed")
        fired: list[Alert] = []
        for detector in self.detectors:
            fired.extend(detector.observe(event))
        self.alerts.extend(fired)
        self._update_health(fired, event)
        return fired

    def _update_health(self, fired: list[Alert], event: dict) -> None:
        for alert in fired:
            rank = alert.evidence.get("rank")
            if rank is None:
                continue
            health = self.ranks.setdefault(int(rank), RankHealth(int(rank)))
            if alert.detector == "heartbeat-gap":
                health.status = "silent"
            elif alert.detector == "straggler":
                health.status = "slow"
        if event["type"] == "heartbeat":
            for r in event["ranks"]:
                health = self.ranks[int(r)]
                if health.status == "silent":
                    health.status = "ok"
        if event["type"] == "iteration":
            # A full iteration record means the job is making progress;
            # straggler status refreshes per record.
            straggling = set()
            for d in self.detectors:
                if isinstance(d, StragglerDetector):
                    straggling = d.stragglers
            for health in self.ranks.values():
                if health.status == "slow" and health.rank not in straggling:
                    health.status = "ok"

    # -- acknowledgement ----------------------------------------------------
    def acknowledged(self, alert: Alert,
                     extra_acks: set[str] = frozenset()) -> bool:
        """An alert is acknowledged by a later ``ack`` event for its
        detector, or by a CLI-side ``--ack DETECTOR`` flag."""
        if alert.detector in extra_acks:
            return True
        return any(det == alert.detector and seq > alert.seq
                   for det, seq in self.acks)

    def unacknowledged_critical(
        self, extra_acks: set[str] = frozenset()
    ) -> list[Alert]:
        return [a for a in self.alerts
                if a.severity == "critical"
                and not self.acknowledged(a, extra_acks)]


def run_monitor(events: list[dict],
                detectors: list[Detector] | None = None) -> Monitor:
    """Replay a complete (or in-progress) log through a fresh monitor."""
    monitor = Monitor(detectors)
    for event in events:
        monitor.observe(event)
    return monitor


# ---------------------------------------------------------------------------
# scoreboard: detector quality vs injected ground truth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DetectorScore:
    """Precision/recall/latency of one detector on one scored run."""

    name: str
    tp: int
    fp: int
    fn: int
    latency_events: float  # mean alert.seq - fault.seq over matches
    latency_iterations: float

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 1.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 1.0


@dataclass
class Scoreboard:
    """Per-detector quality on a run with injected ground truth."""

    scores: list[DetectorScore]
    faults: int
    alerts: int

    @property
    def perfect(self) -> bool:
        return all(s.precision == 1.0 and s.recall == 1.0
                   for s in self.scores)

    def score(self, name: str) -> DetectorScore | None:
        for s in self.scores:
            if s.name == name:
                return s
        return None

    def describe(self) -> str:
        header = (f"{'detector':<20} {'prec':>6} {'recall':>7} {'tp':>4} "
                  f"{'fp':>4} {'fn':>4} {'latency(evt)':>13} "
                  f"{'latency(it)':>12}")
        lines = [
            f"detector scoreboard: {self.faults} injected faults, "
            f"{self.alerts} alerts",
            header,
            "-" * len(header),
        ]
        for s in self.scores:
            lines.append(
                f"{s.name:<20} {s.precision:>6.2f} {s.recall:>7.2f} "
                f"{s.tp:>4} {s.fp:>4} {s.fn:>4} "
                f"{s.latency_events:>13.2f} {s.latency_iterations:>12.2f}"
            )
        return "\n".join(lines)

    def publish(self, metrics: MetricsRegistry,
                prefix: str = "monitor") -> None:
        """Export through the shared ``--metrics-out`` schema."""
        for s in self.scores:
            g = f"{prefix}.{s.name}"
            metrics.gauge(f"{g}.precision").set(s.precision)
            metrics.gauge(f"{g}.recall").set(s.recall)
            metrics.gauge(f"{g}.tp").set(s.tp)
            metrics.gauge(f"{g}.fp").set(s.fp)
            metrics.gauge(f"{g}.fn").set(s.fn)
            metrics.gauge(f"{g}.latency_events").set(s.latency_events)
            metrics.gauge(f"{g}.latency_iterations").set(
                s.latency_iterations
            )
        metrics.gauge(f"{prefix}.faults").set(self.faults)
        metrics.gauge(f"{prefix}.alerts").set(self.alerts)


def score_run(events: list[dict],
              alerts: list[Alert] | None = None) -> Scoreboard:
    """Match alerts to injected ground-truth faults.

    Each ``fault`` event names the detector expected to catch it
    (``expect``).  Matching is greedy per detector in stream order:
    a fault consumes the earliest unmatched alert of its expected
    detector with ``alert.seq >= fault.seq``.  Unmatched faults are
    false negatives; unmatched alerts are false positives.
    """
    if alerts is None:
        alerts = run_monitor(events).alerts
    faults = [e for e in events if e["type"] == "fault"]
    names: list[str] = []
    for a in alerts:
        if a.detector not in names:
            names.append(a.detector)
    for f in faults:
        expect = f.get("expect") or EXPECTED_DETECTOR.get(f.get("kind"), "?")
        if expect not in names:
            names.append(expect)
    scores = []
    for name in names:
        mine = sorted((a for a in alerts if a.detector == name),
                      key=lambda a: a.seq)
        expected = sorted(
            (f for f in faults
             if (f.get("expect")
                 or EXPECTED_DETECTOR.get(f.get("kind"))) == name),
            key=lambda f: f["seq"],
        )
        used: set[int] = set()
        lat_e: list[int] = []
        lat_i: list[int] = []
        fn = 0
        for f in expected:
            match = next(
                (a for a in mine
                 if a.seq >= f["seq"] and a.seq not in used), None
            )
            if match is None:
                fn += 1
                continue
            used.add(match.seq)
            lat_e.append(match.seq - int(f["seq"]))
            lat_i.append(match.iteration - int(f["iteration"]))
        tp = len(used)
        fp = len(mine) - tp
        scores.append(DetectorScore(
            name=name, tp=tp, fp=fp, fn=fn,
            latency_events=(sum(lat_e) / len(lat_e)) if lat_e else 0.0,
            latency_iterations=(sum(lat_i) / len(lat_i)) if lat_i else 0.0,
        ))
    return Scoreboard(scores=sorted(scores, key=lambda s: s.name),
                      faults=len(faults), alerts=len(alerts))


# ---------------------------------------------------------------------------
# TTY dashboard
# ---------------------------------------------------------------------------

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 48) -> str:
    """Unicode block sparkline of the last ``width`` values."""
    if not values:
        return "(no data)"
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    if hi == lo:
        return _BLOCKS[0] * len(tail)
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5))]
        for v in tail
    )


_STATUS_CELL = {"ok": "ok", "slow": "SLOW", "silent": "SILENT",
                "lost": "LOST"}


def render_dashboard(monitor: Monitor, *, feed: int = 12,
                     width: int = 48) -> str:
    """The ``repro monitor`` TTY view of one run."""
    m = monitor.manifest
    lines = []
    lines.append(
        f"run {m.get('run_id', '?')}  source={m.get('source', '?')}  "
        f"status={monitor.status}"
    )
    model = m.get("model") or {}
    parallel = m.get("parallel") or {}
    if model or parallel:
        model_s = " ".join(f"{k}={v}" for k, v in sorted(model.items()))
        par_s = " ".join(f"{k}={v}" for k, v in sorted(parallel.items()))
        lines.append(f"model: {model_s}")
        lines.append(f"parallel: {par_s}")
    lines.append(
        f"iterations={monitor.iterations}  "
        f"checkpoints={monitor.checkpoints}  "
        f"recoveries={monitor.recoveries}  "
        f"faults(injected)={monitor.faults_injected}"
    )
    lines.append("")
    if monitor.losses:
        lines.append(f"loss      {sparkline(monitor.losses, width)}  "
                     f"last={monitor.losses[-1]:.5g}")
    if monitor.tokens_per_s:
        lines.append(f"tokens/s  {sparkline(monitor.tokens_per_s, width)}  "
                     f"last={monitor.tokens_per_s[-1]:.5g}")
    if monitor.mfu:
        lines.append(f"mfu       {sparkline(monitor.mfu, width)}  "
                     f"last={monitor.mfu[-1]:.3%}")
    if monitor.ranks:
        lines.append("")
        lines.append("rank health:")
        cells = []
        for rank in sorted(monitor.ranks):
            health = monitor.ranks[rank]
            cells.append(f"r{rank}:{_STATUS_CELL[health.status]}")
        for i in range(0, len(cells), 8):
            lines.append("  " + "  ".join(cells[i:i + 8]))
    lines.append("")
    critical = [a for a in monitor.alerts if a.severity == "critical"]
    unack = monitor.unacknowledged_critical()
    lines.append(
        f"alerts: {len(monitor.alerts)} total, {len(critical)} critical, "
        f"{len(unack)} critical unacknowledged"
    )
    for alert in monitor.alerts[-feed:]:
        suffix = ""
        if alert.severity == "critical" and monitor.acknowledged(alert):
            suffix = "  [ack]"
        lines.append("  " + alert.describe() + suffix)
    return "\n".join(lines)
