"""Perf-dashboard rendering over one or more BENCH_*.json files.

``python -m repro report BENCH_a.json BENCH_b.json ...`` renders the
perf trajectory those files record: per-scenario median timings across
reports (oldest → newest, with trend arrows), the extra metrics each
scenario carries (simulated MFU / TFLOP-per-GPU vs the paper's Table 1
numbers, tokens/s), and the environment fingerprints — as a flat TTY
table or a dependency-free static HTML page (``--html``).

With no files given the CLI falls back to :func:`discover_reports`:
every root-level ``BENCH_*.json`` ordered by its ``created_unix``
stamp (not filename), with colliding ``--label`` values disambiguated
per column.
"""

from __future__ import annotations

import html
import time
from pathlib import Path

from .bench import BenchReport, load_report


def discover_reports(directory: str | Path = ".") -> list[BenchReport]:
    """Every readable root-level ``BENCH_*.json``, oldest first.

    Ordering is by the report's own ``created_unix`` stamp, *not* by
    filename: a lexicographic glob puts ``BENCH_pr.json`` before
    ``BENCH_v2.json`` regardless of which run actually came later,
    which renders the trajectory (and its trend arrows) backwards.
    Files that fail to parse or carry a foreign schema version are
    skipped rather than aborting the whole dashboard.
    """
    reports = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            reports.append(load_report(path))
        except (OSError, ValueError, KeyError):
            continue
    reports.sort(key=lambda r: r.created_unix)
    return reports


def _display_labels(reports: list[BenchReport]) -> list[str]:
    """Per-report column labels, disambiguated on collision.

    Two reports produced with the same ``--label`` (the default is
    ``run``) would otherwise render as indistinguishable columns; a
    ``#k`` occurrence suffix keeps every column addressable while
    leaving unique labels untouched.
    """
    counts: dict[str, int] = {}
    for rep in reports:
        counts[rep.label] = counts.get(rep.label, 0) + 1
    seen: dict[str, int] = {}
    labels = []
    for rep in reports:
        if counts[rep.label] == 1:
            labels.append(rep.label)
        else:
            seen[rep.label] = seen.get(rep.label, 0) + 1
            labels.append(f"{rep.label}#{seen[rep.label]}")
    return labels


def _trend(values: list[float | None]) -> str:
    """Arrow between the last two present values."""
    present = [v for v in values if v is not None]
    if len(present) < 2:
        return " "
    prev, last = present[-2], present[-1]
    if prev == 0:
        return " "
    rel = last / prev - 1.0
    if rel > 0.10:
        return "▲"  # slower
    if rel < -0.10:
        return "▼"  # faster
    return "≈"


def _scenario_rows(reports: list[BenchReport]):
    names: list[str] = []
    for rep in reports:
        for rec in rep.records:
            if rec.name not in names:
                names.append(rec.name)
    rows = []
    for name in sorted(names):
        medians = [
            (rec.stats.median if (rec := rep.record(name)) else None)
            for rep in reports
        ]
        rows.append((name, medians))
    return rows


def render_text(reports: list[BenchReport]) -> str:
    """The TTY dashboard."""
    if not reports:
        raise ValueError("no BENCH reports given")
    labels = _display_labels(reports)
    lines = []
    lines.append("perf trajectory: " + " -> ".join(labels))
    for rep, label in zip(reports, labels):
        created = time.strftime("%Y-%m-%d %H:%M",
                                time.localtime(rep.created_unix))
        lines.append(
            f"  {label}: {created}  git={rep.env.git_sha}  "
            f"py={rep.env.python} numpy={rep.env.numpy} "
            f"cpus={rep.env.cpu_count}"
        )
    lines.append("")
    width = max(12, *(len(lb) for lb in labels)) + 1
    header = f"{'scenario (median s)':<32}" + "".join(
        f"{lb:>{width}}" for lb in labels
    ) + "  trend"
    lines.append(header)
    lines.append("-" * len(header))
    for name, medians in _scenario_rows(reports):
        cells = "".join(
            f"{m:>{width}.6f}" if m is not None else f"{'-':>{width}}"
            for m in medians
        )
        lines.append(f"{name:<32}{cells}      {_trend(medians)}")
    # Extra metrics from the newest report (MFU & friends).
    newest = reports[-1]
    extras = [(rec.name, rec.metrics) for rec in newest.records if rec.metrics]
    if extras:
        lines.append("")
        lines.append(f"metrics ({labels[-1]}):")
        for name, metrics in extras:
            pairs = "  ".join(f"{k}={v:.6g}" for k, v in sorted(metrics.items()))
            lines.append(f"  {name:<32} {pairs}")
    return "\n".join(lines)


def render_html(reports: list[BenchReport]) -> str:
    """A static, dependency-free HTML dashboard."""
    if not reports:
        raise ValueError("no BENCH reports given")
    e = html.escape
    head = """<!doctype html>
<html><head><meta charset="utf-8"><title>repro perf observatory</title>
<style>
 body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem; color: #222; }
 table { border-collapse: collapse; margin: 1rem 0; }
 th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: right; }
 th:first-child, td:first-child { text-align: left; }
 caption { text-align: left; font-weight: 600; padding: .3rem 0; }
 .up { color: #b00020; } .down { color: #00701a; } .flat { color: #666; }
 code { background: #f4f4f4; padding: 0 .25rem; }
</style></head><body>
<h1>Performance observatory</h1>
"""
    labels = _display_labels(reports)
    parts = [head]
    parts.append("<table><caption>Reports</caption>"
                 "<tr><th>label</th><th>created</th><th>git</th>"
                 "<th>python</th><th>numpy</th><th>cpus</th></tr>")
    for rep, label in zip(reports, labels):
        created = time.strftime("%Y-%m-%d %H:%M",
                                time.localtime(rep.created_unix))
        parts.append(
            f"<tr><td>{e(label)}</td><td>{created}</td>"
            f"<td><code>{e(rep.env.git_sha)}</code></td>"
            f"<td>{e(rep.env.python)}</td><td>{e(rep.env.numpy)}</td>"
            f"<td>{rep.env.cpu_count}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<table><caption>Median seconds per scenario</caption><tr>"
                 "<th>scenario</th>"
                 + "".join(f"<th>{e(lb)}</th>" for lb in labels)
                 + "<th>trend</th></tr>")
    for name, medians in _scenario_rows(reports):
        arrow = _trend(medians)
        klass = {"▲": "up", "▼": "down"}.get(arrow, "flat")
        cells = "".join(
            f"<td>{m:.6f}</td>" if m is not None else "<td>-</td>"
            for m in medians
        )
        parts.append(
            f"<tr><td>{e(name)}</td>{cells}"
            f"<td class=\"{klass}\">{arrow}</td></tr>"
        )
    parts.append("</table>")

    newest = reports[-1]
    extras = [(rec.name, rec.metrics) for rec in newest.records if rec.metrics]
    if extras:
        parts.append(f"<table><caption>Metrics ({e(labels[-1])})</caption>"
                     "<tr><th>scenario</th><th>metric</th><th>value</th></tr>")
        for name, metrics in extras:
            for k, v in sorted(metrics.items()):
                parts.append(
                    f"<tr><td>{e(name)}</td><td>{e(k)}</td>"
                    f"<td>{v:.6g}</td></tr>"
                )
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)
