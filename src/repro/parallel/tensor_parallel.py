"""Tensor (intra-layer) model parallelism -- §2.3, Figure 5.

Implements Megatron's partitioning of the transformer layer over a
tensor-parallel group of ``t`` ranks:

- **MLP**: first GEMM column-split (``A = [A_1, A_2]``) so GeLU applies
  independently per shard; second GEMM row-split so partial outputs are
  summed by a single all-reduce (the ``g`` operator) in the forward
  pass.  The conjugate ``f`` operator all-reduces input gradients in the
  backward pass.
- **Self-attention**: Q, K, V projections column-split *by head*; each
  rank runs attention for its ``a/t`` heads; the output projection is
  row-split with the same ``g`` all-reduce.
- **Embedding / output head**: the (tied) vocabulary matrix is split
  along the vocab dimension; embedding lookups mask out-of-shard tokens
  and all-reduce partial results; the cross-entropy loss is computed
  *without* gathering full logits, using all-reduced per-token max and
  sum-exp statistics (Megatron's vocab-parallel cross entropy).

Representation: the engine is single-process, so a tensor that is
*replicated* across the group is stored once, and a *partitioned* tensor
is stored as a list of per-rank shards.  Every collective is executed by
the real ring primitives in :mod:`repro.comm.primitives`, so the
numerics and the per-rank byte counts are exactly those of the
multi-process system (2 all-reduces in forward + 2 in backward per layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm import TrafficKind, TrafficLog, ring_all_reduce
from repro.config import GPTConfig
from repro.nn import functional as F
from repro.nn.layers import Dropout, LayerNorm
from repro.nn.module import Module, Parameter
from repro.nn.profiler import matmul_flops, record_gemm_flops
from repro.nn.transformer import (
    CausalSelfAttention,
    EmbeddingStage,
    GPTModel,
    MLP,
    OutputHead,
    TransformerBlock,
)


@dataclass
class TensorParallelGroup:
    """The tensor-parallel group a sharded layer communicates in.

    ``backend`` (a :class:`repro.comm.Backend` or None for the coop
    oracle) selects how the all-reduce executes; the arithmetic and
    traffic accounting are backend-invariant.
    """

    ranks: list[int]
    log: TrafficLog = field(default_factory=TrafficLog)
    backend: Any = None

    @property
    def size(self) -> int:
        return len(self.ranks)

    def all_reduce(self, partials: list[np.ndarray], tag: str) -> np.ndarray:
        """Sum partial results; returns the replicated array.

        The ring really runs (and is logged); all outputs are equal so
        one array represents the replicated result.
        """
        if len(partials) != self.size:
            raise ValueError(
                f"{len(partials)} partials for group of {self.size}"
            )
        if self.size == 1:
            return partials[0]
        if self.backend is not None:
            out = self.backend.all_reduce(
                partials, self.ranks, self.log,
                TrafficKind.TENSOR_PARALLEL, tag,
            )
        else:
            out = ring_all_reduce(
                partials, self.ranks, self.log, TrafficKind.TENSOR_PARALLEL, tag
            )
        return out[0]


class ColumnParallelLinear(Module):
    """Linear with the weight split along output columns.

    Input is replicated; each rank computes its output shard.  No
    forward communication (the ``f`` identity); the backward all-reduce
    of input gradients is performed by the enclosing layer, which owns
    the full set of partial ``dx`` contributions.
    """

    def __init__(self, full_weight: np.ndarray, full_bias: np.ndarray | None, t: int):
        in_f, out_f = full_weight.shape
        if out_f % t != 0:
            raise ValueError(f"out_features {out_f} not divisible by t={t}")
        self.t = t
        self.weight_shards = [
            Parameter(w) for w in np.split(full_weight, t, axis=1)
        ]
        self.bias_shards = (
            [Parameter(b) for b in np.split(full_bias, t)] if full_bias is not None else None
        )
        self.in_features, self.out_features = in_f, out_f

    def forward_shards(self, x: np.ndarray) -> tuple[list[np.ndarray], Any]:
        outs, caches = [], []
        for i in range(self.t):
            b = self.bias_shards[i].data if self.bias_shards else None
            y, c = F.linear_forward(x, self.weight_shards[i].data, b)
            outs.append(y)
            caches.append(c)
        return outs, caches

    def backward_shards(self, dys: list[np.ndarray], caches: Any) -> list[np.ndarray]:
        """Per-shard dx partials (caller all-reduces: the ``f`` backward)."""
        dxs = []
        for i, (dy, c) in enumerate(zip(dys, caches)):
            dx, dw, db = F.linear_backward(dy, c)
            self.weight_shards[i].grad += dw
            if self.bias_shards:
                self.bias_shards[i].grad += db
            dxs.append(dx)
        return dxs


class RowParallelLinear(Module):
    """Linear with the weight split along input rows.

    Input is partitioned (one shard per rank); outputs are partial sums
    combined by the group all-reduce (the ``g`` forward).  The bias is
    added once after the reduction.
    """

    def __init__(self, full_weight: np.ndarray, full_bias: np.ndarray | None, t: int):
        in_f, out_f = full_weight.shape
        if in_f % t != 0:
            raise ValueError(f"in_features {in_f} not divisible by t={t}")
        self.t = t
        self.weight_shards = [
            Parameter(w) for w in np.split(full_weight, t, axis=0)
        ]
        self.bias = Parameter(full_bias) if full_bias is not None else None
        self.in_features, self.out_features = in_f, out_f

    def forward_partials(self, xs: list[np.ndarray]) -> tuple[list[np.ndarray], Any]:
        outs, caches = [], []
        for i in range(self.t):
            y, c = F.linear_forward(xs[i], self.weight_shards[i].data, None)
            outs.append(y)
            caches.append(c)
        return outs, caches

    def add_bias(self, reduced: np.ndarray) -> np.ndarray:
        if self.bias is not None:
            return reduced + self.bias.data
        return reduced

    def backward_partials(self, dy: np.ndarray, caches: Any) -> list[np.ndarray]:
        """dy is replicated; returns per-rank input-shard gradients."""
        if self.bias is not None:
            self.bias.grad += dy.reshape(-1, dy.shape[-1]).sum(axis=0)
        dxs = []
        for i, c in enumerate(caches):
            dx, dw, _ = F.linear_backward(dy, c)
            self.weight_shards[i].grad += dw
            dxs.append(dx)
        return dxs


class ParallelMLP(Module):
    """Figure 5(a): column-parallel fc1 + GeLU, row-parallel fc2, g/f ops."""

    def __init__(self, serial: MLP, group: TensorParallelGroup):
        t = group.size
        self.group = group
        self.fc1 = ColumnParallelLinear(
            serial.fc1.weight.data, serial.fc1.bias.data, t
        )
        self.fc2 = RowParallelLinear(
            serial.fc2.weight.data, serial.fc2.bias.data, t
        )

    def forward(self, x, *, training=True, rng=None):
        u_shards, c1 = self.fc1.forward_shards(x)
        g_shards, c_act = [], []
        for u in u_shards:
            g, c = F.gelu_forward(u)
            g_shards.append(g)
            c_act.append(c)
        z_partials, c2 = self.fc2.forward_partials(g_shards)
        z = self.group.all_reduce(z_partials, tag="mlp.g")  # g: fwd all-reduce
        return self.fc2.add_bias(z), (c1, c_act, c2)

    def backward(self, dy, cache):
        c1, c_act, c2 = cache
        dg_shards = self.fc2.backward_partials(dy, c2)
        du_shards = [
            F.gelu_backward(dg, c) for dg, c in zip(dg_shards, c_act)
        ]
        dx_partials = self.fc1.backward_shards(du_shards, c1)
        # f: bwd all-reduce of input gradients.
        return self.group.all_reduce(dx_partials, tag="mlp.f")


class ParallelAttention(Module):
    """Figure 5(b): head-partitioned attention with row-parallel output."""

    def __init__(self, serial: CausalSelfAttention, group: TensorParallelGroup):
        t = group.size
        if serial.num_heads % t != 0:
            raise ValueError(
                f"{serial.num_heads} heads not divisible by t={t}"
            )
        self.group = group
        self.num_heads = serial.num_heads
        self.heads_per_rank = serial.num_heads // t
        self.head_dim = serial.head_dim
        self.hidden_size = serial.hidden_size
        h = serial.hidden_size
        # Serial QKV weight is concat([Wq, Wk, Wv], axis=1); re-split it
        # so each rank gets its heads' q, k, v columns.
        wq, wk, wv = np.split(serial.qkv.weight.data, 3, axis=1)
        bq, bk, bv = np.split(serial.qkv.bias.data, 3)
        self.qkv_shards = []
        self.qkv_bias_shards = []
        hp = h // t  # columns per rank within each of q, k, v
        for i in range(t):
            sl = slice(i * hp, (i + 1) * hp)
            self.qkv_shards.append(
                Parameter(np.concatenate([wq[:, sl], wk[:, sl], wv[:, sl]], axis=1))
            )
            self.qkv_bias_shards.append(
                Parameter(np.concatenate([bq[sl], bk[sl], bv[sl]]))
            )
        self.proj = RowParallelLinear(
            serial.proj.weight.data, serial.proj.bias.data, t
        )
        self.attn_dropout = Dropout(serial.attn_dropout.p)

    def forward(self, x, *, training=True, rng=None):
        b, s, h = x.shape
        t = self.group.size
        ar, dk = self.heads_per_rank, self.head_dim
        ctx_shards, caches = [], []
        for i in range(t):
            qkv, c_qkv = F.linear_forward(
                x, self.qkv_shards[i].data, self.qkv_bias_shards[i].data
            )
            q, k, v = np.split(qkv, 3, axis=-1)
            q = q.reshape(b, s, ar, dk).transpose(0, 2, 1, 3)
            k = k.reshape(b, s, ar, dk).transpose(0, 2, 1, 3)
            v = v.reshape(b, s, ar, dk).transpose(0, 2, 1, 3)
            scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(dk) + F.causal_mask(s)
            probs, c_sm = F.softmax_forward(scores)
            dropped, mask = self.attn_dropout.forward(probs, training=training, rng=rng)
            ctx = (dropped @ v).transpose(0, 2, 1, 3).reshape(b, s, ar * dk)
            record_gemm_flops("attention", 2 * matmul_flops(b, ar, s, dk, s))
            ctx_shards.append(ctx)
            caches.append((c_qkv, q, k, v, c_sm, mask, dropped))
        z_partials, c_proj = self.proj.forward_partials(ctx_shards)
        z = self.group.all_reduce(z_partials, tag="attn.g")
        return self.proj.add_bias(z), (caches, c_proj, (b, s))

    def backward(self, dy, cache):
        caches, c_proj, (b, s) = cache
        ar, dk = self.heads_per_rank, self.head_dim
        dctx_shards = self.proj.backward_partials(dy, c_proj)
        dx_partials = []
        for i, ((c_qkv, q, k, v, c_sm, mask, dropped), dctx) in enumerate(
            zip(caches, dctx_shards)
        ):
            dctx = dctx.reshape(b, s, ar, dk).transpose(0, 2, 1, 3)
            ddropped = dctx @ v.transpose(0, 1, 3, 2)
            dv = dropped.transpose(0, 1, 3, 2) @ dctx
            dprobs = self.attn_dropout.backward(ddropped, mask)
            dscores = F.softmax_backward(dprobs, c_sm) / np.sqrt(dk)
            dq = dscores @ k
            dkk = dscores.transpose(0, 1, 3, 2) @ q
            record_gemm_flops("attention", 4 * matmul_flops(b, ar, s, dk, s))
            dq = dq.transpose(0, 2, 1, 3).reshape(b, s, ar * dk)
            dkk = dkk.transpose(0, 2, 1, 3).reshape(b, s, ar * dk)
            dv = dv.transpose(0, 2, 1, 3).reshape(b, s, ar * dk)
            dqkv = np.concatenate([dq, dkk, dv], axis=-1)
            dx, dw, db = F.linear_backward(dqkv, c_qkv)
            self.qkv_shards[i].grad += dw
            self.qkv_bias_shards[i].grad += db
            dx_partials.append(dx)
        return self.group.all_reduce(dx_partials, tag="attn.f")


class ParallelTransformerBlock(Module):
    """Transformer block with tensor-parallel attention and MLP.

    LayerNorms, residuals and dropout act on replicated tensors (every
    rank computes them identically; computed once here).
    """

    def __init__(self, serial: TransformerBlock, group: TensorParallelGroup):
        self.ln1 = LayerNorm(serial.ln1.gamma.size)
        self.ln1.gamma.data[...] = serial.ln1.gamma.data
        self.ln1.beta.data[...] = serial.ln1.beta.data
        self.attn = ParallelAttention(serial.attn, group)
        self.drop1 = Dropout(serial.drop1.p)
        self.ln2 = LayerNorm(serial.ln2.gamma.size)
        self.ln2.gamma.data[...] = serial.ln2.gamma.data
        self.ln2.beta.data[...] = serial.ln2.beta.data
        self.mlp = ParallelMLP(serial.mlp, group)
        self.drop2 = Dropout(serial.drop2.p)

    def forward(self, x, *, training=True, rng=None):
        a, c_ln1 = self.ln1.forward(x)
        b, c_attn = self.attn.forward(a, training=training, rng=rng)
        d, m1 = self.drop1.forward(b, training=training, rng=rng)
        x1 = x + d
        e, c_ln2 = self.ln2.forward(x1)
        f_, c_mlp = self.mlp.forward(e, training=training, rng=rng)
        g, m2 = self.drop2.forward(f_, training=training, rng=rng)
        return x1 + g, (c_ln1, c_attn, m1, c_ln2, c_mlp, m2)

    def backward(self, dy, cache):
        c_ln1, c_attn, m1, c_ln2, c_mlp, m2 = cache
        dg = self.drop2.backward(dy, m2)
        df = self.mlp.backward(dg, c_mlp)
        dx1 = dy + self.ln2.backward(df, c_ln2)
        dd = self.drop1.backward(dx1, m1)
        db = self.attn.backward(dd, c_attn)
        return dx1 + self.ln1.backward(db, c_ln1)


class VocabParallelEmbedding(Module):
    """Token embedding split along the vocabulary dimension.

    Each rank owns rows ``[i*V/t, (i+1)*V/t)``; out-of-shard lookups
    contribute zeros and the partial embeddings are all-reduced.
    Position embeddings are replicated (no communication).
    """

    def __init__(self, serial: EmbeddingStage, group: TensorParallelGroup):
        t = group.size
        V = serial.vocab_size
        if V % t != 0:
            raise ValueError(f"vocab {V} not divisible by t={t}")
        self.group = group
        self.vocab_size = V
        self.shard_size = V // t
        self.wte_shards = [
            Parameter(w) for w in np.split(serial.wte.weight.data, t, axis=0)
        ]
        self.wpe = Parameter(serial.wpe.weight.data.copy())
        self.drop = Dropout(serial.drop.p)
        self.max_seq_length = serial.max_seq_length

    def forward(self, token_ids, *, training=True, rng=None):
        token_ids = np.asarray(token_ids)
        b, s = token_ids.shape
        if s > self.max_seq_length:
            raise ValueError("sequence too long")
        partials, masks = [], []
        for i, shard in enumerate(self.wte_shards):
            lo = i * self.shard_size
            in_shard = (token_ids >= lo) & (token_ids < lo + self.shard_size)
            local = np.where(in_shard, token_ids - lo, 0)
            part = shard.data[local] * in_shard[..., None]
            partials.append(part)
            masks.append((local, in_shard))
        tok = self.group.all_reduce(partials, tag="embed")
        pos = self.wpe.data[np.arange(s)]
        y, dmask = self.drop.forward(tok + pos, training=training, rng=rng)
        return y, (masks, dmask, b, s)

    def backward(self, dy, cache):
        masks, dmask, b, s = cache
        dx = self.drop.backward(dy, dmask)
        for shard, (local, in_shard) in zip(self.wte_shards, masks):
            contrib = dx * in_shard[..., None]
            np.add.at(shard.grad, local[in_shard], contrib[in_shard])
        self.wpe.grad[np.arange(s)] += dx.sum(axis=0)
        return np.zeros((b, s))


class VocabParallelOutputHead(Module):
    """Final LayerNorm + vocab-sharded logits, tied to the embedding shards.

    ``forward`` returns the *sharded* logits (list of (b, s, V/t)); use
    :meth:`loss` for Megatron's vocab-parallel cross-entropy, which
    communicates only per-token scalars (max and sum-exp), never the
    full logits.
    """

    def __init__(
        self,
        serial: OutputHead,
        group: TensorParallelGroup,
        tied_shards: list[Parameter],
    ):
        self.group = group
        self.ln_f = LayerNorm(serial.ln_f.gamma.size)
        self.ln_f.gamma.data[...] = serial.ln_f.gamma.data
        self.ln_f.beta.data[...] = serial.ln_f.beta.data
        self.tied_shards = tied_shards
        self.shard_size = tied_shards[0].data.shape[0]

    def forward(self, x, *, training=True, rng=None):
        xn, c_ln = self.ln_f.forward(x)
        logits_shards = [xn @ p.data.T for p in self.tied_shards]
        rows = xn.size // xn.shape[-1]
        for p in self.tied_shards:
            record_gemm_flops("logit", matmul_flops(rows, *p.data.shape))
        return logits_shards, (c_ln, xn)

    def backward(self, dlogits_shards, cache):
        c_ln, xn = cache
        flat_x = xn.reshape(-1, xn.shape[-1])
        dxn_partials = []
        for p, dl in zip(self.tied_shards, dlogits_shards):
            dxn_partials.append(dl @ p.data)
            flat_dl = dl.reshape(-1, dl.shape[-1])
            p.grad += flat_dl.T @ flat_x
            record_gemm_flops(
                "logit", 2 * matmul_flops(flat_x.shape[0], *p.data.shape)
            )
        dxn = self.group.all_reduce(dxn_partials, tag="head.f")
        return self.ln_f.backward(dxn, c_ln)

    def loss(
        self, logits_shards: list[np.ndarray], targets: np.ndarray
    ) -> tuple[float, Any]:
        """Vocab-parallel cross entropy (mean over tokens).

        Per-token max and sum-exp are all-reduced (tiny messages); the
        target logit is owned by exactly one shard and all-reduced too.
        """
        targets = np.asarray(targets)
        flat_t = targets.reshape(-1)
        n_tok = flat_t.shape[0]
        flats = [ls.reshape(n_tok, -1) for ls in logits_shards]
        # max over shards (emulating an all-reduce MAX of scalars/token).
        maxes = [fl.max(axis=1) for fl in flats]
        self._log_scalar_allreduce(n_tok, tag="ce.max")
        gmax = np.max(maxes, axis=0)
        sumexp_parts = [np.exp(fl - gmax[:, None]).sum(axis=1) for fl in flats]
        self._log_scalar_allreduce(n_tok, tag="ce.sumexp")
        sumexp = np.sum(sumexp_parts, axis=0)
        # target logit: owned by one shard each.
        picked = np.zeros(n_tok)
        owners = []
        for i, fl in enumerate(flats):
            lo = i * self.shard_size
            owned = (flat_t >= lo) & (flat_t < lo + self.shard_size)
            owners.append(owned)
            picked[owned] = fl[owned, flat_t[owned] - lo]
        self._log_scalar_allreduce(n_tok, tag="ce.target")
        loss = float(np.mean(np.log(sumexp) + gmax - picked))
        return loss, (flats, flat_t, gmax, sumexp, owners, targets.shape)

    def loss_backward(self, cache, scale: float = 1.0) -> list[np.ndarray]:
        flats, flat_t, gmax, sumexp, owners, tgt_shape = cache
        n_tok = flat_t.shape[0]
        out = []
        for i, (fl, owned) in enumerate(zip(flats, owners)):
            probs = np.exp(fl - gmax[:, None]) / sumexp[:, None]
            lo = i * self.shard_size
            probs[owned, flat_t[owned] - lo] -= 1.0
            probs *= scale / n_tok
            out.append(probs.reshape(*tgt_shape, -1))
        return out

    def _log_scalar_allreduce(self, n_tok: int, tag: str) -> None:
        if self.group.size > 1:
            # 8-byte scalar per token around the ring, both phases.
            per_rank = 2 * (self.group.size - 1) / self.group.size * n_tok * 8
            for r_idx, rank in enumerate(self.group.ranks):
                dst = self.group.ranks[(r_idx + 1) % self.group.size]
                self.group.log.add(
                    rank, dst, int(per_rank), TrafficKind.TENSOR_PARALLEL, tag
                )


class TensorParallelGPT(Module):
    """A full GPT with every layer tensor-parallel over one group.

    Built by sharding a serial :class:`GPTModel` constructed with the
    same seed, so ``gather_state_dict`` reassembles weights bit-equal to
    the serial model's (the basis of the §2.3 exactness tests).
    """

    def __init__(self, config: GPTConfig, group: TensorParallelGroup, *, seed: int = 0,
                 dropout: float = 0.0, attention_dropout: float = 0.0):
        serial = GPTModel(
            config, seed=seed, dropout=dropout, attention_dropout=attention_dropout
        )
        self.config = config
        self.group = group
        self.embedding = VocabParallelEmbedding(serial.embedding, group)
        self.blocks = [
            ParallelTransformerBlock(blk, group) for blk in serial.blocks
        ]
        self.head = VocabParallelOutputHead(
            serial.head, group, self.embedding.wte_shards
        )

    @property
    def layers(self) -> list[Module]:
        return [self.embedding, *self.blocks, self.head]

    def forward(self, token_ids, *, training=True, rng=None):
        caches = []
        x = token_ids
        for layer in self.layers:
            x, c = layer.forward(x, training=training, rng=rng)
            caches.append(c)
        return x, caches  # x is the sharded-logit list

    def loss(self, token_ids, targets, *, training=True, rng=None):
        logits_shards, caches = self.forward(token_ids, training=training, rng=rng)
        loss, ce_cache = self.head.loss(logits_shards, targets)
        caches.append(ce_cache)
        return loss, caches

    def loss_backward(self, caches, scale: float = 1.0):
        ce_cache = caches[-1]
        dlogits = self.head.loss_backward(ce_cache, scale)
        dy: Any = dlogits
        for layer, cache in zip(reversed(self.layers), reversed(caches[:-1])):
            dy = layer.backward(dy, cache)
        return dy

    def gather_state_dict(self) -> dict[str, np.ndarray]:
        """Reassemble full (serial-layout) weights from the shards."""
        out: dict[str, np.ndarray] = {}
        out["embedding.wte.weight"] = np.concatenate(
            [p.data for p in self.embedding.wte_shards], axis=0
        )
        out["embedding.wpe.weight"] = self.embedding.wpe.data.copy()
        for li, blk in enumerate(self.blocks):
            pre = f"blocks.{li}."
            out[pre + "ln1.gamma"] = blk.ln1.gamma.data.copy()
            out[pre + "ln1.beta"] = blk.ln1.beta.data.copy()
            out[pre + "ln2.gamma"] = blk.ln2.gamma.data.copy()
            out[pre + "ln2.beta"] = blk.ln2.beta.data.copy()
            # QKV: per-rank [q_i | k_i | v_i] columns -> serial [Q | K | V].
            qs, ks, vs = [], [], []
            qbs, kbs, vbs = [], [], []
            for w, bias in zip(blk.attn.qkv_shards, blk.attn.qkv_bias_shards):
                q, k, v = np.split(w.data, 3, axis=1)
                qs.append(q), ks.append(k), vs.append(v)
                qb, kb, vb = np.split(bias.data, 3)
                qbs.append(qb), kbs.append(kb), vbs.append(vb)
            out[pre + "attn.qkv.weight"] = np.concatenate(
                [np.concatenate(qs, axis=1), np.concatenate(ks, axis=1),
                 np.concatenate(vs, axis=1)], axis=1,
            )
            out[pre + "attn.qkv.bias"] = np.concatenate(
                [np.concatenate(qbs), np.concatenate(kbs), np.concatenate(vbs)]
            )
            out[pre + "attn.proj.weight"] = np.concatenate(
                [p.data for p in blk.attn.proj.weight_shards], axis=0
            )
            out[pre + "attn.proj.bias"] = blk.attn.proj.bias.data.copy()
            out[pre + "mlp.fc1.weight"] = np.concatenate(
                [p.data for p in blk.mlp.fc1.weight_shards], axis=1
            )
            out[pre + "mlp.fc1.bias"] = np.concatenate(
                [p.data for p in blk.mlp.fc1.bias_shards]
            )
            out[pre + "mlp.fc2.weight"] = np.concatenate(
                [p.data for p in blk.mlp.fc2.weight_shards], axis=0
            )
            out[pre + "mlp.fc2.bias"] = blk.mlp.fc2.bias.data.copy()
        out["head.ln_f.gamma"] = self.head.ln_f.gamma.data.copy()
        out["head.ln_f.beta"] = self.head.ln_f.beta.data.copy()
        return out

    def load_gathered_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`gather_state_dict`: shard serial-layout
        weights back onto the tensor-parallel shards.

        Used by checkpoint resharding: a checkpoint written under one
        (p, t, d) can be loaded under any other.
        """
        t = self.group.size
        for i, shard in enumerate(
            np.split(state["embedding.wte.weight"], t, axis=0)
        ):
            self.embedding.wte_shards[i].data[...] = shard
        self.embedding.wpe.data[...] = state["embedding.wpe.weight"]
        for li, blk in enumerate(self.blocks):
            pre = f"blocks.{li}."
            blk.ln1.gamma.data[...] = state[pre + "ln1.gamma"]
            blk.ln1.beta.data[...] = state[pre + "ln1.beta"]
            blk.ln2.gamma.data[...] = state[pre + "ln2.gamma"]
            blk.ln2.beta.data[...] = state[pre + "ln2.beta"]
            wq, wk, wv = np.split(state[pre + "attn.qkv.weight"], 3, axis=1)
            bq, bk, bv = np.split(state[pre + "attn.qkv.bias"], 3)
            h = wq.shape[0]
            hp = h // t
            for i in range(t):
                sl = slice(i * hp, (i + 1) * hp)
                blk.attn.qkv_shards[i].data[...] = np.concatenate(
                    [wq[:, sl], wk[:, sl], wv[:, sl]], axis=1
                )
                blk.attn.qkv_bias_shards[i].data[...] = np.concatenate(
                    [bq[sl], bk[sl], bv[sl]]
                )
            for i, shard in enumerate(
                np.split(state[pre + "attn.proj.weight"], t, axis=0)
            ):
                blk.attn.proj.weight_shards[i].data[...] = shard
            blk.attn.proj.bias.data[...] = state[pre + "attn.proj.bias"]
            for i, shard in enumerate(
                np.split(state[pre + "mlp.fc1.weight"], t, axis=1)
            ):
                blk.mlp.fc1.weight_shards[i].data[...] = shard
            for i, shard in enumerate(
                np.split(state[pre + "mlp.fc1.bias"], t)
            ):
                blk.mlp.fc1.bias_shards[i].data[...] = shard
            for i, shard in enumerate(
                np.split(state[pre + "mlp.fc2.weight"], t, axis=0)
            ):
                blk.mlp.fc2.weight_shards[i].data[...] = shard
            blk.mlp.fc2.bias.data[...] = state[pre + "mlp.fc2.bias"]
        self.head.ln_f.gamma.data[...] = state["head.ln_f.gamma"]
        self.head.ln_f.beta.data[...] = state["head.ln_f.beta"]
        # Tied head shards: if the pipeline engine untied them, refresh
        # the copies from the embedding values.
        if self.head.tied_shards is not self.embedding.wte_shards:
            for dst, shard in zip(
                self.head.tied_shards,
                np.split(state["embedding.wte.weight"], t, axis=0),
            ):
                dst.data[...] = shard
