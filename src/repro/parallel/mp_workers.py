"""Real-process data-parallel replica workers for the mp backend.

:class:`ReplicaWorkerGroup` runs each **data-parallel replica** of a
:class:`~repro.parallel.trainer.PTDTrainer` as its own OS process — the
process granularity of the mp backend (DESIGN.md "Running on real
processes").  Each worker owns one full pipeline/tensor-parallel
replica (the ``p·t`` virtual ranks of that replica execute
cooperatively inside the worker, exactly as in the oracle) and the
workers jointly run the §3.3.1 gradient ring all-reduce over
``multiprocessing.shared_memory`` float64 buffers, one barrier per ring
step.

Bit-exactness contract (asserted by the cross-backend conformance grid
and ``repro verify --only backend``): the per-step chunk slices the
cooperative ring reads are disjoint from the slices written in the same
step, so executing the per-rank step bodies concurrently with a barrier
between steps performs the identical float64 operation sequence per
element; the post-ring ``/d`` average, loss-scale unwind, global-norm
clip (every worker computes the same norm from identical averaged
gradients) and Adam step likewise replicate the serial order.

Traffic accounting stays in the parent: workers return their replica's
:class:`~repro.comm.traffic.TrafficLog` records for the step (appended
in data-parallel order, matching the oracle's sequential execution) and
the parent replays the gradient-ring hop plan analytically.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback

import numpy as np

from repro.comm.shm_ring import (
    POOL_TIMEOUT,
    _start_method,
    create_segment,
    destroy_segment,
    disable_child_shm_tracking,
    ring_chunk_bounds,
)
from repro.comm.traffic import TrafficKind


def _grad_ring_step(params, d: int, dp: int, mine: np.ndarray,
                    prev: np.ndarray, barrier) -> None:
    """Run the data-parallel gradient ring for every parameter.

    ``mine``/``prev`` are float64 views of this rank's and the previous
    rank's shared segments (sized to hold *all* parameters at their
    flat offsets).  Transcribes the cooperative ring per-rank: phase-1
    step ``s`` accumulates chunk ``(dp-1-s)``, phase-2 step ``s``
    copies chunk ``(dp-s)`` — but iterates ring steps *outermost*, all
    parameters inside one step, so a full step costs one barrier
    instead of one per parameter.  Per element the float64 operation
    sequence is unchanged (each parameter still runs its own
    chunk-bound schedule in the same step order; only the interleaving
    across independent parameters moves), so the result stays
    bit-identical to the cooperative oracle, and the per-step barrier
    preserves the no-race invariant for every parameter at once:
    reads in step ``s`` touch only chunks written in step ``s-1``.
    """
    plans = []
    offset = 0
    for p in params:
        n = p.grad.size
        mine[offset:offset + n] = p.grad.ravel()
        plans.append((p, offset, ring_chunk_bounds(n, d)))
        offset += n
    barrier.wait(POOL_TIMEOUT)  # all copy-ins visible
    for step in range(d - 1):
        for _, off, bounds in plans:
            j = (dp - 1 - step) % d
            sl = slice(off + bounds[j], off + bounds[j + 1])
            mine[sl] += prev[sl]
        barrier.wait(POOL_TIMEOUT)
    for step in range(d - 1):
        for _, off, bounds in plans:
            j = (dp - step) % d
            sl = slice(off + bounds[j], off + bounds[j + 1])
            mine[sl] = prev[sl]
        barrier.wait(POOL_TIMEOUT)
    for p, off, _ in plans:
        n = p.grad.size
        p.grad[...] = mine[off:off + n].reshape(p.grad.shape) / d
    barrier.wait(POOL_TIMEOUT)  # all reads done before the next copy-in


def _replica_worker_main(dp: int, conn, barrier, seg_names, init) -> None:
    """Worker entry point: build the replica, then serve commands."""
    disable_child_shm_tracking()
    from multiprocessing import shared_memory

    from repro.comm import TrafficLog
    from repro.nn import Adam
    from repro.parallel.pipeline_parallel import (
        PipelineParallelGPT,
        make_microbatches,
    )
    from repro.schedule import make_schedule

    try:
        d = init["d"]
        schedule = make_schedule(
            init["schedule"],
            init["parallel"].pipeline_parallel_size,
            init["parallel"].num_microbatches,
            init["parallel"].num_model_chunks,
        )
        log = TrafficLog()
        replica = PipelineParallelGPT(
            init["config"],
            schedule,
            tensor_parallel_size=init["parallel"].tensor_parallel_size,
            seed=init["seed"],
            dropout=init["dropout"],
            attention_dropout=init["attention_dropout"],
            recompute_activations=init["recompute_activations"],
            log=log,
            pipeline_ranks=init["pipeline_ranks"],
        )
        optimizer = Adam(replica.parameters(), lr=init["lr"], betas=init["betas"])
        m = init["parallel"].num_microbatches
        loss_scale = init["loss_scale"]
        grad_clip_norm = init["grad_clip_norm"]
        mine = prev = None
        segs = []
        if d > 1:
            mine_seg = shared_memory.SharedMemory(name=seg_names[dp])
            prev_seg = shared_memory.SharedMemory(name=seg_names[(dp - 1) % d])
            segs = [mine_seg, prev_seg]
            total = sum(p.size for p in replica.parameters())
            mine = np.ndarray((total,), dtype=np.float64, buffer=mine_seg.buf)
            prev = np.ndarray((total,), dtype=np.float64, buffer=prev_seg.buf)
        conn.send(("ok", None))
    except Exception:
        conn.send(("err", traceback.format_exc()))
        return

    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):  # parent died
            break
        try:
            if op == "exit":
                conn.send(("ok", None))
                break
            elif op == "step":
                ids, targets = payload
                step_start = time.perf_counter()
                log_start = len(log.records)
                replica.zero_grad()
                microbatches = make_microbatches(ids, targets, m)
                loss = replica.run_iteration(
                    microbatches, grad_scale=loss_scale / m
                )
                if d > 1:
                    _grad_ring_step(
                        replica.parameters(), d, dp, mine, prev, barrier
                    )
                if loss_scale != 1.0:
                    for p in replica.parameters():
                        p.grad /= loss_scale
                norm = None
                if grad_clip_norm is not None:
                    sq = 0.0
                    for p in replica.parameters_for_norm():
                        sq += float(np.sum(p.grad * p.grad))
                    norm = float(np.sqrt(sq))
                    if norm > grad_clip_norm and norm != 0.0:
                        scale = grad_clip_norm / norm
                        for p in replica.parameters():
                            p.grad *= scale
                optimizer.step()
                records = [
                    (r.src, r.dst, r.nbytes, r.kind.value, r.tag)
                    for r in log.records[log_start:]
                ]
                seconds = time.perf_counter() - step_start
                conn.send(("ok", (loss, records, norm, seconds)))
            elif op == "get_state":
                state = {
                    "params": [p.data.copy() for p in replica.parameters()],
                    "m": [a.copy() for a in optimizer._m],
                    "v": [a.copy() for a in optimizer._v],
                    "step_count": optimizer.step_count,
                }
                conn.send(("ok", state))
            elif op == "set_state":
                for p, arr in zip(replica.parameters(), payload["params"]):
                    p.data[...] = arr
                for a, arr in zip(optimizer._m, payload["m"]):
                    a[...] = arr
                for a, arr in zip(optimizer._v, payload["v"]):
                    a[...] = arr
                optimizer.step_count = payload["step_count"]
                conn.send(("ok", None))
            else:
                raise ValueError(f"unknown worker op {op!r}")
        except Exception:
            try:
                barrier.abort()
            except Exception:
                pass
            conn.send(("err", traceback.format_exc()))
    for seg in segs:
        try:
            seg.close()
        except OSError:
            pass


class ReplicaWorkerGroup:
    """``d`` replica worker processes plus their shared grad-ring segments."""

    def __init__(
        self,
        *,
        config,
        parallel,
        schedule: str,
        seed: int,
        lr: float,
        betas,
        dropout: float,
        attention_dropout: float,
        recompute_activations: bool,
        grad_clip_norm,
        loss_scale: float,
        pipeline_ranks_per_dp: list[list[int]],
        total_param_size: int,
        timeout: float = POOL_TIMEOUT,
    ):
        d = parallel.data_parallel_size
        self.d = d
        self.timeout = timeout
        self._ctx = mp.get_context(_start_method())
        self._barrier = self._ctx.Barrier(d)
        self._segments = []
        if d > 1:
            self._segments = [
                create_segment(max(1, total_param_size) * 8)
                for _ in range(d)
            ]
        seg_names = [seg.name for seg in self._segments]
        self._conns = []
        self._procs = []
        self._closed = False
        for dp in range(d):
            init = {
                "d": d,
                "config": config,
                "parallel": parallel,
                "schedule": schedule,
                "seed": seed,
                "lr": lr,
                "betas": betas,
                "dropout": dropout,
                "attention_dropout": attention_dropout,
                "recompute_activations": recompute_activations,
                "grad_clip_norm": grad_clip_norm,
                "loss_scale": loss_scale,
                "pipeline_ranks": pipeline_ranks_per_dp[dp],
            }
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_replica_worker_main,
                args=(dp, child_conn, self._barrier, seg_names, init),
                daemon=True,
                name=f"repro-replica-{dp}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._collect()  # init acks

    def _collect(self) -> list:
        results = []
        errors = []
        for dp, conn in enumerate(self._conns):
            try:
                if not conn.poll(self.timeout):
                    raise TimeoutError(f"replica worker {dp} timed out")
                status, payload = conn.recv()
            except (EOFError, OSError, TimeoutError) as exc:
                self.close()
                raise RuntimeError(
                    f"replica worker {dp} died: {exc}"
                ) from exc
            if status != "ok":
                errors.append(f"replica worker {dp}:\n{payload}")
            results.append(payload)
        if errors:
            self._barrier.reset()
            raise RuntimeError("replica worker failure\n" + "\n".join(errors))
        return results

    def _broadcast(self, op: str, payloads) -> list:
        if self._closed:
            raise RuntimeError("replica worker group is closed")
        for conn, payload in zip(self._conns, payloads):
            conn.send((op, payload))
        return self._collect()

    def step(self, shards) -> list[tuple[float, list, float | None]]:
        """One training step: ``shards[dp]`` is ``(ids, targets)`` for
        replica dp.  Returns per-replica ``(loss, records, grad_norm)``."""
        return self._broadcast("step", shards)

    def get_state(self, dp: int = 0) -> dict:
        """Pull replica ``dp``'s parameters + optimizer state."""
        conn = self._conns[dp]
        conn.send(("get_state", None))
        if not conn.poll(self.timeout):
            self.close()
            raise RuntimeError(f"replica worker {dp} timed out on get_state")
        status, payload = conn.recv()
        if status != "ok":
            raise RuntimeError(f"get_state failed:\n{payload}")
        return payload

    def set_state(self, state: dict) -> None:
        """Push identical parameters + optimizer state to every worker."""
        self._broadcast("set_state", [state] * self.d)

    def close(self) -> None:
        """Stop workers and unlink the grad-ring segments."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for seg in self._segments:
            destroy_segment(seg)
        self._segments = []

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def replay_records(log, records) -> None:
    """Append worker-returned ``(src, dst, nbytes, kind, tag)`` tuples to
    the parent's TrafficLog (restoring the TrafficKind enum)."""
    for src, dst, nbytes, kind_value, tag in records:
        log.add(src, dst, nbytes, TrafficKind(kind_value), tag)
