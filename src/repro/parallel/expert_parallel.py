"""Expert (mixture-of-experts) parallelism -- the Switch-Transformer
extension the paper's related work points at (§6, Fedus et al.).

Implements top-1 ("Switch") routing:

- :class:`SwitchMLP` -- a drop-in replacement for the dense MLP: a
  linear router scores ``E`` expert MLPs per token, each token is
  dispatched to its argmax expert, and the expert output is scaled by
  the router probability (which carries the router's gradient).  The
  Switch auxiliary load-balancing loss (``E * sum_e f_e * P_e``) is
  computed alongside.
- :class:`ExpertParallelSwitchMLP` -- the same layer with experts
  sharded across an expert-parallel group: tokens are exchanged with the
  :func:`~repro.comm.extras.all_to_all` primitive (the defining MoE
  collective), each rank runs only its local experts, and outputs return
  via a second all-to-all.  Numerically identical to the single-rank
  layer -- the same strict-semantics standard as the rest of the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm import TrafficKind, TrafficLog, all_to_all
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.transformer import MLP


class SwitchMLP(Module):
    """Top-1 routed mixture of expert MLPs (Switch Transformer)."""

    def __init__(
        self,
        hidden_size: int,
        ffn_hidden_size: int,
        num_experts: int,
        *,
        rng: np.random.Generator | None = None,
    ):
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.router = Parameter(
            rng.normal(0.0, 0.02, size=(hidden_size, num_experts))
        )
        self.experts = [
            MLP(hidden_size, ffn_hidden_size, rng=rng) for _ in range(num_experts)
        ]

    # -- routing --------------------------------------------------------------
    def route(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(probs, chosen expert per token, gate per token) for flat x."""
        logits = x @ self.router.data
        probs, _ = F.softmax_forward(logits)
        chosen = np.argmax(probs, axis=-1)
        gates = probs[np.arange(x.shape[0]), chosen]
        return probs, chosen, gates

    def forward(self, x, *, training=True, rng=None):
        orig_shape = x.shape
        flat = x.reshape(-1, self.hidden_size)
        probs, chosen, gates = self.route(flat)
        out = np.zeros_like(flat)
        expert_caches: list = [None] * self.num_experts
        token_idx: list = [None] * self.num_experts
        for e in range(self.num_experts):
            idx = np.nonzero(chosen == e)[0]
            token_idx[e] = idx
            if idx.size == 0:
                continue
            y, cache = self.experts[e].forward(
                flat[idx], training=training, rng=rng
            )
            out[idx] = gates[idx, None] * y
            expert_caches[e] = (cache, y)
        aux = self.aux_loss(probs, chosen)
        cache = (flat, probs, chosen, gates, expert_caches, token_idx, orig_shape)
        return out.reshape(orig_shape), (cache, aux)

    def backward(self, dy, cache_and_aux):
        cache, _aux = cache_and_aux
        flat_x, probs, chosen, gates, expert_caches, token_idx, orig_shape = cache
        n = flat_x.shape[0]
        dflat = dy.reshape(n, self.hidden_size)
        dx = np.zeros_like(flat_x)
        dgates = np.zeros(n)
        for e in range(self.num_experts):
            idx = token_idx[e]
            if idx is None or idx.size == 0:
                continue
            ex_cache, y = expert_caches[e]
            # d/dy_expert = gate * dy ; d/dgate = dy . y
            dgates[idx] = np.einsum("ij,ij->i", dflat[idx], y)
            dx_expert = self.experts[e].backward(
                gates[idx, None] * dflat[idx], ex_cache
            )
            dx[idx] += dx_expert
        # Router gradient: gate = softmax(logits)[chosen]; upstream dgates.
        dprobs = np.zeros_like(probs)
        dprobs[np.arange(n), chosen] = dgates
        dlogits = F.softmax_backward(dprobs, probs)
        self.router.grad += flat_x.T @ dlogits
        dx += dlogits @ self.router.data.T
        return dx.reshape(orig_shape)

    def aux_loss(self, probs: np.ndarray, chosen: np.ndarray) -> float:
        """Switch load-balancing loss: ``E * sum_e f_e * P_e`` where
        f_e is the fraction of tokens routed to expert e and P_e the
        mean router probability of e.  Equals 1.0 under perfect balance."""
        E = self.num_experts
        f = np.bincount(chosen, minlength=E) / max(1, chosen.size)
        P = probs.mean(axis=0)
        return float(E * np.sum(f * P))


@dataclass
class ExpertParallelGroup:
    """The expert-parallel process group."""

    ranks: list[int]
    log: TrafficLog = field(default_factory=TrafficLog)

    @property
    def size(self) -> int:
        return len(self.ranks)


class ExpertParallelSwitchMLP(Module):
    """Switch MLP with experts sharded over an expert-parallel group.

    Rank r owns experts ``[r*E/e, (r+1)*E/e)``.  Per forward pass:
    tokens are bucketed by destination rank, exchanged with all-to-all,
    processed by the local experts, and returned with a second
    all-to-all -- the canonical MoE communication pattern, byte-logged.
    """

    def __init__(self, serial: SwitchMLP, group: ExpertParallelGroup):
        e = group.size
        if serial.num_experts % e != 0:
            raise ValueError(
                f"{serial.num_experts} experts not divisible over "
                f"{e} expert-parallel ranks"
            )
        self.group = group
        self.serial = serial  # shares Parameters: shard-free weights
        self.experts_per_rank = serial.num_experts // e
        self.hidden_size = serial.hidden_size
        self.num_experts = serial.num_experts

    def expert_rank(self, expert: np.ndarray) -> np.ndarray:
        return expert // self.experts_per_rank

    def forward(self, x, *, training=True, rng=None):
        orig_shape = x.shape
        flat = x.reshape(-1, self.hidden_size)
        probs, chosen, gates = self.serial.route(flat)
        e = self.group.size
        dest = self.expert_rank(chosen)
        # Every rank holds the full (replicated) input here; bucket the
        # tokens by destination rank and exchange them.  chunks[i][j] is
        # what rank i sends rank j: its 1/e slice of tokens bound for j.
        owner = np.arange(flat.shape[0]) % e  # which rank "has" each token
        send_idx = [[np.nonzero((owner == i) & (dest == j))[0]
                     for j in range(e)] for i in range(e)]
        chunks = [[flat[send_idx[i][j]] for j in range(e)] for i in range(e)]
        received = all_to_all(
            chunks, self.group.ranks, self.group.log,
            TrafficKind.OTHER, "moe.dispatch",
        )
        # Rank j processes its local experts on everything it received.
        out = np.zeros_like(flat)
        expert_caches: list = [None] * self.num_experts
        token_idx: list = [None] * self.num_experts
        for j in range(e):
            idx = np.concatenate([send_idx[i][j] for i in range(e)])
            if idx.size == 0:
                continue
            for local in range(self.experts_per_rank):
                ex = j * self.experts_per_rank + local
                sel = idx[chosen[idx] == ex]
                token_idx[ex] = sel
                if sel.size == 0:
                    continue
                y, cache = self.serial.experts[ex].forward(
                    flat[sel], training=training, rng=rng
                )
                out[sel] = gates[sel, None] * y
                expert_caches[ex] = (cache, y)
                # Return path: results travel back to the token's owner.
                for i in range(e):
                    back = np.intersect1d(sel, send_idx[i][j])
                    if back.size and i != j:
                        self.group.log.add(
                            self.group.ranks[j], self.group.ranks[i],
                            int(back.size * self.hidden_size * 8),
                            TrafficKind.OTHER, "moe.combine",
                        )
        aux = self.serial.aux_loss(probs, chosen)
        cache = (flat, probs, chosen, gates, expert_caches, token_idx, orig_shape)
        return out.reshape(orig_shape), (cache, aux)

    def backward(self, dy, cache_and_aux):
        # The backward dataflow retraces the all-to-all (logged as one
        # combined volume); the math is identical to the serial layer's.
        cache, _ = cache_and_aux
        flat = cache[0]
        e = self.group.size
        if e > 1:
            per_rank = flat.nbytes // e
            for i in range(e):
                for j in range(e):
                    if i != j:
                        self.group.log.add(
                            self.group.ranks[i], self.group.ranks[j],
                            per_rank // e, TrafficKind.OTHER, "moe.bwd",
                        )
        return self.serial.backward(dy, cache_and_aux)

    def parameters(self):
        return self.serial.parameters()

    def zero_grad(self):
        self.serial.zero_grad()
