"""Data parallelism (§2.1): replicas + gradient all-reduce.

Each data-parallel rank holds a replica of (a shard of) the model and
processes its own slice of the global batch; after the local backward
passes, gradients are averaged with a ring all-reduce over the
data-parallel group (once per batch -- the infrequency §3.3.2 credits
data parallelism with).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import TrafficKind, TrafficLog, ring_all_reduce
from repro.nn.module import Parameter


def all_reduce_gradients(
    replica_params: Sequence[Sequence[Parameter]],
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    *,
    average: bool = True,
) -> None:
    """Average corresponding parameter gradients across replicas.

    ``replica_params[r]`` is the parameter list of data-parallel rank r;
    lists must be positionally aligned (same build order).  Gradients
    are replaced in place by the (averaged) sum, exactly what
    DistributedDataParallel's bucket all-reduce computes.
    """
    d = len(replica_params)
    if d != len(ranks):
        raise ValueError(f"{d} replicas but {len(ranks)} ranks")
    if d == 0:
        raise ValueError("no replicas")
    n_params = len(replica_params[0])
    for params in replica_params:
        if len(params) != n_params:
            raise ValueError("replica parameter lists are not aligned")
    if d == 1:
        return
    for i in range(n_params):
        grads = [replica_params[r][i].grad for r in range(d)]
        shapes = {g.shape for g in grads}
        if len(shapes) != 1:
            raise ValueError(f"parameter {i} has mismatched shapes across replicas")
        reduced = ring_all_reduce(
            grads, ranks, log, TrafficKind.DATA_PARALLEL, f"dp.grad.{i}"
        )
        for r in range(d):
            out = reduced[r]
            if average:
                out = out / d
            replica_params[r][i].grad[...] = out


def scatter_batch(
    ids: np.ndarray, targets: np.ndarray, data_parallel_size: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shard a global batch across data-parallel ranks (axis 0)."""
    if ids.shape[0] % data_parallel_size != 0:
        raise ValueError(
            f"global batch {ids.shape[0]} not divisible by d={data_parallel_size}"
        )
    return list(
        zip(
            np.split(ids, data_parallel_size),
            np.split(targets, data_parallel_size),
        )
    )


def data_parallel_comm_bytes(num_parameters: int, d: int, dtype_size: int = 2) -> float:
    """Per-rank bytes moved by one gradient all-reduce:
    ``2 (d-1)/d * P * dtype_size`` (§3.3.1's ring-scaling argument)."""
    if d < 1:
        raise ValueError("d must be >= 1")
    if d == 1:
        return 0.0
    return 2 * (d - 1) / d * num_parameters * dtype_size
