"""PTD-P parallel training: tensor, pipeline, data parallelism, ZeRO-3."""

from .expert_parallel import (
    ExpertParallelGroup,
    ExpertParallelSwitchMLP,
    SwitchMLP,
)
from .data_parallel import (
    all_reduce_gradients,
    data_parallel_comm_bytes,
    scatter_batch,
)
from .pipeline_parallel import (
    PipelineParallelGPT,
    PipelineStage,
    make_microbatches,
    split_layers_into_stages,
)
from .tensor_parallel import (
    ColumnParallelLinear,
    ParallelAttention,
    ParallelMLP,
    ParallelTransformerBlock,
    RowParallelLinear,
    TensorParallelGPT,
    TensorParallelGroup,
    VocabParallelEmbedding,
    VocabParallelOutputHead,
)
from .trainer import PTDTrainer
from .zero import Zero3Engine, ZeroShardedParameter, zero3_comm_bytes

__all__ = [
    "TensorParallelGroup",
    "TensorParallelGPT",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "ParallelMLP",
    "ParallelAttention",
    "ParallelTransformerBlock",
    "VocabParallelEmbedding",
    "VocabParallelOutputHead",
    "PipelineParallelGPT",
    "PipelineStage",
    "split_layers_into_stages",
    "make_microbatches",
    "all_reduce_gradients",
    "scatter_batch",
    "data_parallel_comm_bytes",
    "Zero3Engine",
    "ZeroShardedParameter",
    "zero3_comm_bytes",
    "PTDTrainer",
    "SwitchMLP",
    "ExpertParallelGroup",
    "ExpertParallelSwitchMLP",
]
