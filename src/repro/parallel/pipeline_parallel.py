"""Pipeline model parallelism -- §2.2.

A GPT's layer list (embedding, l blocks, head) is partitioned into
``p * v`` global stages (§2.2.2 interleaved layout: chunk c on pipeline
rank r is global stage ``c*p + r``).  A
:class:`~repro.schedule.ir.PipelineSchedule` drives execution through
the dependency executor: every forward/backward of every microbatch runs
in an order the validator proved legal, activations are stashed per
in-flight microbatch (exactly the memory the 1F1B schedule bounds), and
stage boundaries communicate through the logged p2p ``send`` primitive.

Features reproduced:

- strict optimizer semantics: a pipeline flush ends every iteration; the
  equivalence tests show training is bit-identical to serial execution;
- activation recomputation (§3.5): stash only stage inputs, re-run the
  stage forward before its backward (dropout rngs are re-derived from
  (stage, microbatch), so the replay is exact);
- tied embeddings across stages: the head's copy of the vocabulary
  matrix is synchronized with the first stage's by summing their
  gradients after the flush (Megatron's embedding all-reduce).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.comm import TrafficKind, TrafficLog, ring_all_reduce, send
from repro.config import GPTConfig
from repro.nn import GPTModel
from repro.nn.module import Module, Parameter
from repro.schedule import OpKind, PipelineSchedule, ScheduleOp, execute

from .tensor_parallel import TensorParallelGPT, TensorParallelGroup


class PipelineStage:
    """The layers of one global pipeline stage, with microbatch state."""

    def __init__(
        self,
        stage_id: int,
        layers: list[Module],
        *,
        is_first: bool,
        is_last: bool,
        recompute: bool = False,
        rng_seed: int = 0,
    ):
        self.stage_id = stage_id
        self.layers = layers
        self.is_first = is_first
        self.is_last = is_last
        self.recompute = recompute
        self.rng_seed = rng_seed
        # Per-microbatch state: input + caches (or input only w/ recompute).
        self._stash: dict[int, tuple[Any, list | None]] = {}

    def _make_rng(self, microbatch: int) -> np.random.Generator:
        """Deterministic per-(stage, microbatch) stream; recomputation
        re-derives the identical stream (§3.5 exact replay)."""
        return np.random.default_rng(
            np.random.SeedSequence([self.rng_seed, self.stage_id, microbatch])
        )

    def _run_forward(self, x: Any, microbatch: int, training: bool) -> tuple[Any, list]:
        rng = self._make_rng(microbatch)
        caches = []
        for layer in self.layers:
            x, c = layer.forward(x, training=training, rng=rng)
            caches.append(c)
        return x, caches

    def forward_microbatch(self, microbatch: int, x: Any, *, training: bool = True) -> Any:
        if microbatch in self._stash:
            raise RuntimeError(
                f"stage {self.stage_id}: microbatch {microbatch} already in flight"
            )
        out, caches = self._run_forward(x, microbatch, training)
        self._stash[microbatch] = (x, None if self.recompute else caches)
        return out

    def backward_microbatch(self, microbatch: int, dy: Any) -> Any:
        if microbatch not in self._stash:
            raise RuntimeError(
                f"stage {self.stage_id}: no stashed forward for microbatch {microbatch}"
            )
        x, caches = self._stash.pop(microbatch)
        if caches is None:  # activation recomputation
            _, caches = self._run_forward(x, microbatch, training=True)
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward(dy, cache)
        return dy

    @property
    def in_flight(self) -> int:
        return len(self._stash)

    def parameters(self) -> list[Parameter]:
        seen: set[int] = set()
        out: list[Parameter] = []
        for layer in self.layers:
            for p in layer.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append(p)
        return out

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()


def split_layers_into_stages(
    layers: list[Module],
    num_stages: int,
    num_chunks: int,
    *,
    recompute: bool = False,
    rng_seed: int = 0,
) -> list[PipelineStage]:
    """Partition [embedding, blocks..., head] into p*v global stages.

    Transformer blocks are split evenly (§2.2: "each device can be
    assigned an equal number of transformer layers"); the embedding
    joins the first stage, the head the last.
    """
    total = num_stages * num_chunks
    blocks = layers[1:-1]
    if len(blocks) % total != 0:
        raise ValueError(
            f"{len(blocks)} transformer layers cannot be split into "
            f"{total} equal stages"
        )
    per = len(blocks) // total
    stages = []
    for g in range(total):
        stage_layers: list[Module] = list(blocks[g * per : (g + 1) * per])
        if g == 0:
            stage_layers.insert(0, layers[0])
        if g == total - 1:
            stage_layers.append(layers[-1])
        stages.append(
            PipelineStage(
                g,
                stage_layers,
                is_first=(g == 0),
                is_last=(g == total - 1),
                recompute=recompute,
                rng_seed=rng_seed,
            )
        )
    return stages


class PipelineParallelGPT:
    """A GPT executed under a pipeline schedule, optionally tensor-parallel.

    Parameters
    ----------
    config:
        Model architecture.
    schedule:
        A validated :class:`PipelineSchedule`; its (p, v) determine the
        stage partitioning.
    tensor_parallel_size:
        t; t > 1 shards every layer over a tensor-parallel group.
    seed:
        Weight-init seed (must match the serial model to compare).
    recompute_activations:
        §3.5 activation recomputation.
    pipeline_ranks:
        Global device rank of each pipeline stage's tp-rank-0 GPU, for
        traffic logging (defaults to 0..p-1).
    """

    def __init__(
        self,
        config: GPTConfig,
        schedule: PipelineSchedule,
        *,
        tensor_parallel_size: int = 1,
        seed: int = 0,
        dropout: float = 0.0,
        attention_dropout: float = 0.0,
        recompute_activations: bool = False,
        log: TrafficLog | None = None,
        pipeline_ranks: list[int] | None = None,
        data_rng_seed: int = 1234,
        backend: Any = None,
    ):
        self.config = config
        self.schedule = schedule
        self.t = tensor_parallel_size
        self.log = log if log is not None else TrafficLog()
        #: Execution backend for the schedule executor's collectives and
        #: p2p transfers (None -> the coop oracle primitives).
        self.backend = backend
        p = schedule.num_stages
        self.pipeline_ranks = pipeline_ranks or list(range(p))
        if len(self.pipeline_ranks) != p:
            raise ValueError("pipeline_ranks must have one entry per stage")

        if tensor_parallel_size > 1:
            self.tp_group = TensorParallelGroup(
                ranks=list(range(tensor_parallel_size)), log=self.log,
                backend=backend,
            )
            self._model = TensorParallelGPT(
                config,
                self.tp_group,
                seed=seed,
                dropout=dropout,
                attention_dropout=attention_dropout,
            )
        else:
            self.tp_group = None
            self._model = GPTModel(
                config, seed=seed, dropout=dropout,
                attention_dropout=attention_dropout,
            )

        layers = self._model.layers
        self.total_stages = schedule.total_stages
        # Tie handling: with >1 stages, give the head its own copy of the
        # embedding weights; gradients are summed after each flush.
        self.tied_pairs: list[tuple[Parameter, Parameter]] = []
        if self.total_stages > 1:
            self._untie_embeddings()
        self.stages = split_layers_into_stages(
            layers,
            schedule.num_stages,
            schedule.num_chunks,
            recompute=recompute_activations,
            rng_seed=data_rng_seed,
        )
        self._loss_cache: dict[int, Any] = {}
        self._losses: dict[int, float] = {}
        self._targets: dict[int, np.ndarray] = {}

    def _untie_embeddings(self) -> None:
        head = self._model.head
        if self.t > 1:
            emb_shards = self._model.embedding.wte_shards
            new_shards = [Parameter(p.data.copy()) for p in emb_shards]
            head.tied_shards = new_shards
            self.tied_pairs = list(zip(emb_shards, new_shards))
        else:
            emb = self._model.embedding.wte.weight
            new = Parameter(emb.data.copy())
            head.tied = new
            self.tied_pairs = [(emb, new)]

    # -- iteration ----------------------------------------------------------
    def run_iteration(
        self,
        microbatches: list[tuple[np.ndarray, np.ndarray]],
        *,
        training: bool = True,
        grad_scale: float | None = None,
    ) -> float:
        """Run one full batch (a list of (ids, targets) microbatches).

        Executes the schedule via the dependency executor, computing the
        loss on the last stage and back-propagating with per-microbatch
        gradient scale ``grad_scale`` (default ``1/m`` so the batch
        gradient is the gradient of the mean loss).  Returns mean loss.
        """
        m = self.schedule.num_microbatches
        if len(microbatches) != m:
            raise ValueError(
                f"expected {m} microbatches, got {len(microbatches)}"
            )
        scale = grad_scale if grad_scale is not None else 1.0 / m
        self._loss_cache.clear()
        self._losses.clear()
        self._targets = {i: t for i, (_, t) in enumerate(microbatches)}
        inputs = {i: ids for i, (ids, _) in enumerate(microbatches)}
        act_inbox: dict[tuple[int, int], Any] = {}
        grad_inbox: dict[tuple[int, int], Any] = {}

        def handler(rank: int, op: ScheduleOp) -> None:
            stage_id = self.schedule.global_stage(rank, op.chunk)
            stage = self.stages[stage_id]
            mb = op.microbatch
            if op.kind is OpKind.FORWARD:
                if stage.is_first:
                    x = inputs[mb]
                else:
                    x = act_inbox.pop((mb, stage_id))
                out = stage.forward_microbatch(mb, x, training=training)
                if stage.is_last:
                    self._compute_loss(mb, out)
                else:
                    nxt = stage_id + 1
                    act_inbox[(mb, nxt)] = self._p2p(out, stage_id, nxt, "act")
            else:
                if stage.is_last:
                    dy = self._loss_grad(mb, scale)
                else:
                    dy = grad_inbox.pop((mb, stage_id))
                dx = stage.backward_microbatch(mb, dy)
                if not stage.is_first:
                    prev = stage_id - 1
                    grad_inbox[(mb, prev)] = self._p2p(dx, stage_id, prev, "grad")

        execute(self.schedule, handler, span_ranks=self.pipeline_ranks)
        if act_inbox or grad_inbox:
            raise RuntimeError("pipeline finished with undelivered tensors")
        for stage in self.stages:
            if stage.in_flight:
                raise RuntimeError(
                    f"stage {stage.stage_id} finished with stashed activations"
                )
        self._sync_tied_embeddings()
        return float(np.mean([self._losses[i] for i in range(m)]))

    def _compute_loss(self, mb: int, out: Any) -> None:
        targets = self._targets[mb]
        if self.t > 1:
            loss, cache = self._model.head.loss(out, targets)
        else:
            from repro.nn import functional as F

            loss, cache = F.cross_entropy_forward(out, targets)
        self._losses[mb] = loss
        self._loss_cache[mb] = cache

    def _loss_grad(self, mb: int, scale: float) -> Any:
        cache = self._loss_cache.pop(mb)
        if self.t > 1:
            return self._model.head.loss_backward(cache, scale)
        from repro.nn import functional as F

        return F.cross_entropy_backward(cache, scale)

    def _p2p(self, tensor: Any, src_stage: int, dst_stage: int, tag: str) -> Any:
        """Send one stage-boundary tensor; logs bytes between the stages'
        pipeline ranks (per tensor-parallel rank pair, §4.1's redundancy)."""
        src_rank = self.pipeline_ranks[src_stage % self.schedule.num_stages]
        dst_rank = self.pipeline_ranks[dst_stage % self.schedule.num_stages]
        if src_rank == dst_rank:
            return np.asarray(tensor).copy()
        arr = np.asarray(tensor)
        copies = max(1, self.t)
        p2p = self.backend.send if self.backend is not None else send
        for _ in range(copies):
            out = p2p(arr, src_rank, dst_rank, self.log,
                      TrafficKind.PIPELINE_P2P, tag)
        return out

    def _sync_tied_embeddings(self) -> None:
        """Megatron's embedding-gradient all-reduce between the first and
        last pipeline stages (keeps the two tied copies identical)."""
        if not self.tied_pairs:
            return
        first = self.pipeline_ranks[0]
        last = self.pipeline_ranks[-1]
        ranks = [first, last] if first != last else [first]
        for emb_p, head_p in self.tied_pairs:
            if len(ranks) == 1:
                total = emb_p.grad + head_p.grad
            else:
                reduce = (
                    self.backend.all_reduce
                    if self.backend is not None else ring_all_reduce
                )
                total = reduce(
                    [emb_p.grad, head_p.grad], ranks, self.log,
                    TrafficKind.PIPELINE_P2P, "tied-embedding",
                )[0]
            emb_p.grad[...] = total
            head_p.grad[...] = total

    # -- parameter plumbing ---------------------------------------------------
    def parameters(self) -> list[Parameter]:
        seen: set[int] = set()
        out: list[Parameter] = []
        for stage in self.stages:
            for p in stage.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append(p)
        return out

    def zero_grad(self) -> None:
        for stage in self.stages:
            stage.zero_grad()

    def parameters_for_norm(self) -> list[Parameter]:
        """Parameters entering the global gradient norm.

        The head's copy of each tied embedding holds the same (synced)
        gradient as the first stage's copy; counting both would square
        the tied parameter's contribution twice, so the head copies are
        excluded -- matching the serial model where the tie is a single
        Parameter.
        """
        head_copies = {id(head_p) for _, head_p in self.tied_pairs}
        return [p for p in self.parameters() if id(p) not in head_copies]

    def gather_state_dict(self) -> dict[str, np.ndarray]:
        """Full serial-layout weights (tied copies collapse to one)."""
        if self.t > 1:
            return self._model.gather_state_dict()
        state = self._model.state_dict()
        # Drop the head's duplicated tied copy if present (serial layout
        # names only the embedding copy).
        state.pop("head.tied", None)
        return state

    def load_gathered_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load serial-layout weights, re-sharding as needed.

        Accepts the output of :meth:`gather_state_dict` from *any*
        parallel configuration of the same architecture (checkpoint
        resharding).
        """
        if self.t > 1:
            self._model.load_gathered_state_dict(state)
            return
        mine = dict(self._model.named_parameters())
        for name, p in mine.items():
            if name == "head.tied":
                continue
            if name not in state:
                raise ValueError(f"checkpoint missing parameter {name}")
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs "
                    f"{state[name].shape}"
                )
            p.data[...] = state[name]
        # Refresh the untied head copy from the embedding weights.
        for emb_p, head_p in self.tied_pairs:
            head_p.data[...] = emb_p.data

    def max_stashed_microbatches(self) -> int:
        """Peak activation stash over the iteration (schedule property)."""
        return max(
            self.schedule.max_in_flight_microbatches(r)
            for r in range(self.schedule.num_stages)
        )


def make_microbatches(
    ids: np.ndarray,
    targets: np.ndarray,
    num_microbatches: int,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split a batch along axis 0 into equal microbatches."""
    if ids.shape[0] % num_microbatches != 0:
        raise ValueError(
            f"batch of {ids.shape[0]} not divisible into {num_microbatches} "
            "microbatches"
        )
    return list(
        zip(np.split(ids, num_microbatches), np.split(targets, num_microbatches))
    )
