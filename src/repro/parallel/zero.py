"""ZeRO-3 baseline (§5.2): fully-sharded data parallelism.

Implements the algorithm the paper compares against: parameters,
gradients and optimizer state are sharded across the ``d`` data-parallel
ranks; each rank

1. **all-gathers** the parameters it needs before the forward pass,
2. all-gathers them again for the backward pass (ZeRO-3 frees gathered
   weights after use),
3. **reduce-scatters** gradients so each rank keeps only its shard's sum,
4. runs the (sharded) Adam step on its own shard.

Numerically this is *exactly* vanilla data parallelism -- the tests
assert bit-equality with serial training -- but the communication volume
per rank rises from ``2 (d-1)/d P`` (one all-reduce) to ``3 (d-1)/d P``
(two all-gathers + one reduce-scatter), all of it crossing nodes when
``d`` spans servers.  That extra, unhideable cross-node communication is
the §5.2 performance story.

The single-process engine stores one canonical copy of each full
parameter (replicas are identical by construction) plus the true
per-rank shards; every gather/scatter runs the real ring primitives so
the traffic log carries the honest per-rank byte counts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm import TrafficKind, TrafficLog, all_gather, reduce_scatter
from repro.nn import Adam
from repro.nn.module import Parameter


class ZeroShardedParameter:
    """One parameter sharded over ``d`` ranks (flattened, padded)."""

    def __init__(self, param: Parameter, d: int):
        self.param = param
        self.d = d
        flat = param.data.ravel()
        pad = (-flat.size) % d
        self.padded_size = flat.size + pad
        self.shard_size = self.padded_size // d
        padded = np.concatenate([flat, np.zeros(pad)])
        self.shards = [s.copy() for s in np.split(padded, d)]

    def gather(self, ranks: Sequence[int], log: TrafficLog | None, tag: str,
               *, backend=None) -> None:
        """All-gather shards into the full parameter (phases 1 and 2)."""
        if self.d > 1:
            gather_fn = backend.all_gather if backend is not None else all_gather
            full = gather_fn(
                self.shards, ranks, log, TrafficKind.DATA_PARALLEL, tag
            )[0]
        else:
            full = self.shards[0]
        self.param.data[...] = full[: self.param.size].reshape(self.param.shape)

    def reduce_scatter_grads(
        self,
        replica_grads: Sequence[np.ndarray],
        ranks: Sequence[int],
        log: TrafficLog | None,
        *,
        average: bool = True,
        backend=None,
    ) -> list[np.ndarray]:
        """Reduce-scatter per-replica gradients; returns per-rank shards."""
        padded = []
        for g in replica_grads:
            flat = g.ravel()
            pad = self.padded_size - flat.size
            padded.append(np.concatenate([flat, np.zeros(pad)]))
        stacked = [p.reshape(self.d, self.shard_size) for p in padded]
        rs = backend.reduce_scatter if backend is not None else reduce_scatter
        shards = rs(stacked, ranks, log, TrafficKind.DATA_PARALLEL, "zero.rs")
        out = [s.ravel() for s in shards]
        if average:
            out = [s / self.d for s in out]
        return out


class Zero3Engine:
    """ZeRO-3 training engine over one model's parameter list.

    The model replicas share the canonical parameter storage (their
    forward/backward read ``Parameter.data`` which :meth:`gather_params`
    refreshes from the shards), so any model built on the
    :mod:`repro.nn` substrate can be trained under ZeRO-3.
    """

    def __init__(
        self,
        params: list[Parameter],
        data_parallel_size: int,
        ranks: Sequence[int] | None = None,
        *,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        log: TrafficLog | None = None,
        backend: str | None = None,
    ):
        if data_parallel_size < 1:
            raise ValueError("data_parallel_size must be >= 1")
        from repro.comm.backend import Backend, get_backend

        #: Execution backend for the gather/reduce-scatter collectives
        #: (None/"coop" -> the single-process oracle, "mp" -> real
        #: processes over shared memory).  Stored resolved; callers that
        #: pass "mp" should ``close()`` the engine when done.
        self.backend = (
            backend if isinstance(backend, Backend)
            else get_backend(backend)
        )
        self.d = data_parallel_size
        self.ranks = list(ranks) if ranks is not None else list(range(self.d))
        if len(self.ranks) != self.d:
            raise ValueError("need one rank per data-parallel shard")
        self.log = log if log is not None else TrafficLog()
        self.sharded = [ZeroShardedParameter(p, self.d) for p in params]
        # Sharded Adam: one shard-sized optimizer per rank per parameter.
        self._shard_params = [
            [Parameter(sp.shards[r]) for sp in self.sharded] for r in range(self.d)
        ]
        self._optimizers = [
            Adam([p for p in self._shard_params[r]], lr=lr, betas=betas, eps=eps)
            for r in range(self.d)
        ]

    def gather_params(self, phase: str) -> None:
        """Phase 1/2: materialize full parameters from the shards."""
        for sp in self.sharded:
            sp.gather(self.ranks, self.log, f"zero.gather.{phase}",
                      backend=self.backend)

    def close(self) -> None:
        """Release backend resources (worker processes, shm segments)."""
        self.backend.close()

    def reduce_and_step(self, replica_grads: list[list[np.ndarray]]) -> None:
        """Phase 3+4: reduce-scatter grads, sharded Adam step.

        ``replica_grads[r][i]`` is rank r's gradient for parameter i
        (each rank computed grads from its own microbatches).
        """
        if len(replica_grads) != self.d:
            raise ValueError(f"expected {self.d} replicas of gradients")
        for i, sp in enumerate(self.sharded):
            grads = [replica_grads[r][i] for r in range(self.d)]
            shard_grads = sp.reduce_scatter_grads(
                grads, self.ranks, self.log, backend=self.backend
            )
            for r in range(self.d):
                self._shard_params[r][i].grad[...] = shard_grads[r]
        for r in range(self.d):
            self._optimizers[r].step()
        # Shard storage is aliased into ZeroShardedParameter.shards via
        # the Parameter constructor? No -- Parameter copies.  Write back.
        for i, sp in enumerate(self.sharded):
            for r in range(self.d):
                sp.shards[r][...] = self._shard_params[r][i].data

    def comm_bytes_per_iteration(self, dtype_size: int = 2) -> float:
        """Analytic per-rank volume: 3 (d-1)/d * P * dtype_size
        (gather-fwd + gather-bwd + reduce-scatter)."""
        P = sum(sp.padded_size for sp in self.sharded)
        if self.d == 1:
            return 0.0
        return 3 * (self.d - 1) / self.d * P * dtype_size


def zero3_comm_bytes(num_parameters: int, d: int, dtype_size: int = 2) -> float:
    """Module-level helper mirroring :meth:`Zero3Engine.comm_bytes_per_iteration`."""
    if d < 1:
        raise ValueError("d must be >= 1")
    if d == 1:
        return 0.0
    return 3 * (d - 1) / d * num_parameters * dtype_size
