"""PTD-P trainer: pipeline + tensor + data parallelism composed (§2).

``PTDTrainer`` builds ``d`` data-parallel replicas, each a
:class:`PipelineParallelGPT` (``p`` pipeline stages, optionally ``v``
interleaved chunks, each stage tensor-parallel over ``t`` ranks), places
them on the Megatron rank grid (`repro.comm.groups`), and runs strict
synchronous training:

1. the global batch is scattered across replicas,
2. each replica pipelines its ``m`` microbatches under the chosen
   schedule (flush at the end: strict optimizer semantics),
3. gradients are averaged across the data-parallel group with ring
   all-reduces (once per batch),
4. every replica's Adam takes the same step.

Because every stage of this is exact, PTD-P training is bit-identical
to serial training on the same global batch -- the property the paper
calls "retaining strict optimizer semantics", and the one the
integration tests assert for many (p, t, d, v) combinations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.comm import ProcessGroups, TrafficLog
from repro.config import GPTConfig, ParallelConfig
from repro.nn import Adam
from repro.obs import span as obs_span
from repro.obs.runlog import current_run_logger
from repro.obs.tracer import current_tracer
from repro.schedule import make_schedule

from .data_parallel import all_reduce_gradients, scatter_batch
from .pipeline_parallel import PipelineParallelGPT, make_microbatches


class PTDTrainer:
    """Train a GPT with composed pipeline/tensor/data parallelism."""

    def __init__(
        self,
        config: GPTConfig,
        parallel: ParallelConfig,
        *,
        schedule: str = "1f1b",
        seed: int = 0,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        recompute_activations: bool = False,
        dropout: float = 0.0,
        attention_dropout: float = 0.0,
        grad_clip_norm: float | None = None,
        loss_scale: float = 1.0,
        log: TrafficLog | None = None,
    ):
        parallel.validate_for_model(config)
        self.config = config
        self.parallel = parallel
        self.groups = ProcessGroups(parallel)
        self.log = log if log is not None else TrafficLog()
        self.schedule = make_schedule(
            schedule,
            parallel.pipeline_parallel_size,
            parallel.num_microbatches,
            parallel.num_model_chunks,
        )
        self.replicas: list[PipelineParallelGPT] = []
        for dp in range(parallel.data_parallel_size):
            pipeline_ranks = [
                self.groups.rank_of(pp, dp, 0)
                for pp in range(parallel.pipeline_parallel_size)
            ]
            self.replicas.append(
                PipelineParallelGPT(
                    config,
                    self.schedule,
                    tensor_parallel_size=parallel.tensor_parallel_size,
                    seed=seed,
                    dropout=dropout,
                    attention_dropout=attention_dropout,
                    recompute_activations=recompute_activations,
                    log=self.log,
                    pipeline_ranks=pipeline_ranks,
                )
            )
        self._dp_ranks = self.groups.data_group(pp=0, tp=0)
        self.optimizers = [
            Adam(replica.parameters(), lr=lr, betas=betas)
            for replica in self.replicas
        ]
        if grad_clip_norm is not None and grad_clip_norm <= 0:
            raise ValueError("grad_clip_norm must be positive")
        if loss_scale <= 0:
            raise ValueError("loss_scale must be positive")
        self.grad_clip_norm = grad_clip_norm
        self.loss_scale = loss_scale
        self.recompute_activations = recompute_activations
        self.last_grad_norm: float | None = None
        self.iteration = 0
        #: Callables invoked with the trainer at the top of every
        #: ``train_step``, before any compute.  The chaos harness
        #: (:mod:`repro.resilience.harness`) injects rank failures here;
        #: an exception propagates out of ``train_step`` with no state
        #: mutated, modelling a rank dying between iterations.
        self.pre_step_hooks: list = []

    def train_step(self, ids: np.ndarray, targets: np.ndarray) -> float:
        """One strict synchronous iteration on the global batch.

        ``ids``/``targets``: (B, s) integer arrays, B the global batch
        size of the parallel config.  Returns the global mean loss.
        """
        B = self.parallel.global_batch_size
        if ids.shape[0] != B:
            raise ValueError(
                f"expected global batch of {B} sequences, got {ids.shape[0]}"
            )
        for hook in list(self.pre_step_hooks):
            hook(self)
        d = self.parallel.data_parallel_size
        m = self.parallel.num_microbatches
        shards = scatter_batch(ids, targets, d)
        losses = []
        tracer = current_tracer()
        runlog = current_run_logger()
        observed = tracer is not None or runlog is not None
        step_start = time.perf_counter() if observed else 0.0
        rank_busy: dict[int, float] | None = {} if runlog is not None else None
        with obs_span("iteration", phase="iteration", iteration=self.iteration):
            with obs_span("pipeline", phase="pipeline"):
                for dp, (replica, (rid, rtgt)) in enumerate(
                    zip(self.replicas, shards)
                ):
                    replica_start = (
                        time.perf_counter() if rank_busy is not None else 0.0
                    )
                    replica.zero_grad()
                    microbatches = make_microbatches(rid, rtgt, m)
                    losses.append(
                        replica.run_iteration(
                            microbatches, grad_scale=self.loss_scale / m
                        )
                    )
                    if rank_busy is not None:
                        rank_busy[dp] = time.perf_counter() - replica_start
            if d > 1:
                with obs_span("grad-allreduce", phase="grad-allreduce"):
                    all_reduce_gradients(
                        [replica.parameters() for replica in self.replicas],
                        self._dp_ranks,
                        self.log,
                        average=True,
                    )
            with obs_span("optimizer", phase="optimizer"):
                if self.loss_scale != 1.0:
                    for replica in self.replicas:
                        for p in replica.parameters():
                            p.grad /= self.loss_scale
                if self.grad_clip_norm is not None:
                    self._clip_gradients()
                for opt in self.optimizers:
                    opt.step()
        mean_loss = float(np.mean(losses))
        if observed:
            seconds = time.perf_counter() - step_start
            if tracer is not None:
                self._publish_telemetry(tracer, seconds)
            if runlog is not None:
                self._publish_runlog(
                    runlog, mean_loss, seconds, rank_busy or {}
                )
        self.iteration += 1
        return mean_loss

    def _publish_telemetry(self, tracer, seconds: float) -> None:
        """Table-1 throughput gauges + per-GPU memory counter samples.

        Only runs under an active tracer (the untraced hot path pays a
        single ``current_tracer()`` check).  FLOPs are the eq. (3)
        closed form — the same number ``repro.verify``'s conservation
        check pins to the FlopMeter — so trainer MFU, simulator MFU,
        and the analytic model agree by construction; the *measured*
        quantity is the wall-clock iteration time.
        """
        from repro.hardware import a100_80gb
        from repro.obs.telemetry import (
            MemoryBreakdown,
            sample_memory,
            sample_throughput,
            throughput_report,
        )
        from repro.perf.memory import memory_footprint, parameters_per_rank

        report = throughput_report(
            self.config, self.parallel, seconds,
            peak_flops=a100_80gb().peak_flops,
            with_recompute=self.recompute_activations,
        )
        sample_throughput(tracer, report)
        fp = memory_footprint(
            self.config, self.parallel,
            recompute=self.recompute_activations,
        )
        sample_memory(
            tracer,
            MemoryBreakdown(parameters_per_rank(self.config, self.parallel)),
            fp.activations + fp.stage_inputs,
        )

    def _publish_runlog(self, runlog, loss: float, seconds: float,
                        rank_busy: dict[int, float]) -> None:
        """One run-log heartbeat round + iteration record.

        ``rank_busy`` carries per-data-parallel-replica pipeline self
        times (the live engine's per-rank span self-time proxy — the
        replicas are the concurrently-schedulable units here).  Only
        runs when a run logger is active; the bare hot path pays a
        single ``current_run_logger()`` check
        (``benchmarks/bench_monitor_overhead.py``).
        """
        from repro.hardware import a100_80gb

        if not hasattr(self, "_runlog_flops"):
            self._runlog_flops = self.config.flops_per_iteration(
                self.parallel.global_batch_size,
                with_recompute=self.recompute_activations,
            )
            self._runlog_peak = a100_80gb().peak_flops
        world = self.parallel.world_size
        tokens = self.parallel.global_batch_size * self.config.seq_length
        runlog.heartbeat(range(world), self.iteration)
        runlog.iteration(
            self.iteration, loss, seconds,
            tokens_per_s=tokens / seconds,
            mfu=self._runlog_flops / world / seconds / self._runlog_peak,
            grad_norm=self.last_grad_norm,
            rank_busy=rank_busy,
        )

    def _clip_gradients(self) -> None:
        """Clip by the *global* gradient norm (Megatron semantics): the
        norm is taken over the full model -- all model-parallel shards,
        tied parameters counted once -- and the same scale is applied to
        every shard on every replica (replicas hold identical averaged
        gradients, so replica 0's norm is the global norm)."""
        replica = self.replicas[0]
        sq = 0.0
        for p in replica.parameters_for_norm():
            sq += float(np.sum(p.grad * p.grad))
        norm = float(np.sqrt(sq))
        self.last_grad_norm = norm
        if norm <= self.grad_clip_norm or norm == 0.0:
            return
        scale = self.grad_clip_norm / norm
        for rep in self.replicas:
            for p in rep.parameters():
                p.grad *= scale

    def evaluate(self, ids: np.ndarray, targets: np.ndarray) -> float:
        """Loss without gradient accumulation or update (replica 0)."""
        m = self.parallel.num_microbatches
        d = self.parallel.data_parallel_size
        per = ids.shape[0] // d
        replica = self.replicas[0]
        replica.zero_grad()
        microbatches = make_microbatches(ids[:per], targets[:per], m)
        loss = replica.run_iteration(microbatches, training=False, grad_scale=0.0)
        replica.zero_grad()
        return loss

    def gather_state_dict(self) -> dict[str, np.ndarray]:
        """Replica 0's full serial-layout weights."""
        return self.replicas[0].gather_state_dict()

    def parameters_per_rank(self) -> int:
        """Trainable parameters held by one GPU (model-parallel shard)."""
        total = sum(p.size for p in self.replicas[0].parameters())
        return total // max(1, 1)  # replica already holds only its shard
