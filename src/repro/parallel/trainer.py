"""PTD-P trainer: pipeline + tensor + data parallelism composed (§2).

``PTDTrainer`` builds ``d`` data-parallel replicas, each a
:class:`PipelineParallelGPT` (``p`` pipeline stages, optionally ``v``
interleaved chunks, each stage tensor-parallel over ``t`` ranks), places
them on the Megatron rank grid (`repro.comm.groups`), and runs strict
synchronous training:

1. the global batch is scattered across replicas,
2. each replica pipelines its ``m`` microbatches under the chosen
   schedule (flush at the end: strict optimizer semantics),
3. gradients are averaged across the data-parallel group with ring
   all-reduces (once per batch),
4. every replica's Adam takes the same step.

Because every stage of this is exact, PTD-P training is bit-identical
to serial training on the same global batch -- the property the paper
calls "retaining strict optimizer semantics", and the one the
integration tests assert for many (p, t, d, v) combinations.
"""

from __future__ import annotations

import time

import numpy as np

from repro.comm import BACKENDS, Backend, ProcessGroups, TrafficLog
from repro.comm.primitives import ring_all_reduce_hops
from repro.comm.traffic import TrafficKind
from repro.config import GPTConfig, ParallelConfig
from repro.nn import Adam
from repro.obs import span as obs_span
from repro.obs.runlog import current_run_logger
from repro.obs.tracer import current_tracer
from repro.schedule import make_schedule
from repro.verify.sanitizer import record_collective as _sanitize

from .data_parallel import all_reduce_gradients, scatter_batch
from .pipeline_parallel import PipelineParallelGPT, make_microbatches


class PTDTrainer:
    """Train a GPT with composed pipeline/tensor/data parallelism.

    ``backend`` selects the execution substrate:

    - ``"coop"`` (default): every virtual rank executes cooperatively in
      this process — the bit-exact oracle.
    - ``"mp"``: each data-parallel replica runs as a real OS process
      (:class:`~repro.parallel.mp_workers.ReplicaWorkerGroup`); the
      gradient ring all-reduce runs over shared-memory buffers with one
      barrier per ring step.  Losses, parameters, optimizer state and
      the :class:`TrafficLog` are bit-identical to the oracle (asserted
      by ``repro verify --only backend``).  The parent keeps canonical
      replicas/optimizers for checkpointing; state is pulled from
      worker 0 lazily (replicas are identical across the data-parallel
      group by construction).  Call :meth:`close` (or use the trainer
      as a context manager) to release the worker processes.
    """

    def __init__(
        self,
        config: GPTConfig,
        parallel: ParallelConfig,
        *,
        schedule: str = "1f1b",
        seed: int = 0,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        recompute_activations: bool = False,
        dropout: float = 0.0,
        attention_dropout: float = 0.0,
        grad_clip_norm: float | None = None,
        loss_scale: float = 1.0,
        log: TrafficLog | None = None,
        backend: str | Backend = "coop",
    ):
        parallel.validate_for_model(config)
        self.config = config
        self.parallel = parallel
        self.backend_name = (
            backend.name if isinstance(backend, Backend) else backend
        )
        if self.backend_name not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.groups = ProcessGroups(parallel, backend=backend)
        self.log = log if log is not None else TrafficLog()
        self.schedule = make_schedule(
            schedule,
            parallel.pipeline_parallel_size,
            parallel.num_microbatches,
            parallel.num_model_chunks,
        )
        self.replicas: list[PipelineParallelGPT] = []
        for dp in range(parallel.data_parallel_size):
            pipeline_ranks = [
                self.groups.rank_of(pp, dp, 0)
                for pp in range(parallel.pipeline_parallel_size)
            ]
            self.replicas.append(
                PipelineParallelGPT(
                    config,
                    self.schedule,
                    tensor_parallel_size=parallel.tensor_parallel_size,
                    seed=seed,
                    dropout=dropout,
                    attention_dropout=attention_dropout,
                    recompute_activations=recompute_activations,
                    log=self.log,
                    pipeline_ranks=pipeline_ranks,
                )
            )
        self._dp_ranks = self.groups.data_group(pp=0, tp=0)
        self.optimizers = [
            Adam(replica.parameters(), lr=lr, betas=betas)
            for replica in self.replicas
        ]
        if grad_clip_norm is not None and grad_clip_norm <= 0:
            raise ValueError("grad_clip_norm must be positive")
        if loss_scale <= 0:
            raise ValueError("loss_scale must be positive")
        self.grad_clip_norm = grad_clip_norm
        self.loss_scale = loss_scale
        self.recompute_activations = recompute_activations
        self.last_grad_norm: float | None = None
        self.iteration = 0
        # mp backend: one real process per data-parallel replica.  The
        # parent's replicas stay the canonical checkpoint state; the
        # staleness flags track which side holds the freshest weights.
        self._workers = None
        self._parent_stale = False
        self._workers_stale = False
        if self.backend_name == "mp":
            from .mp_workers import ReplicaWorkerGroup

            self._workers = ReplicaWorkerGroup(
                config=config,
                parallel=parallel,
                schedule=schedule,
                seed=seed,
                lr=lr,
                betas=betas,
                dropout=dropout,
                attention_dropout=attention_dropout,
                recompute_activations=recompute_activations,
                grad_clip_norm=grad_clip_norm,
                loss_scale=loss_scale,
                pipeline_ranks_per_dp=[
                    replica.pipeline_ranks for replica in self.replicas
                ],
                total_param_size=sum(
                    p.size for p in self.replicas[0].parameters()
                ),
            )
        #: Callables invoked with the trainer at the top of every
        #: ``train_step``, before any compute.  The chaos harness
        #: (:mod:`repro.resilience.harness`) injects rank failures here;
        #: an exception propagates out of ``train_step`` with no state
        #: mutated, modelling a rank dying between iterations.
        self.pre_step_hooks: list = []

    def train_step(self, ids: np.ndarray, targets: np.ndarray) -> float:
        """One strict synchronous iteration on the global batch.

        ``ids``/``targets``: (B, s) integer arrays, B the global batch
        size of the parallel config.  Returns the global mean loss.
        """
        B = self.parallel.global_batch_size
        if ids.shape[0] != B:
            raise ValueError(
                f"expected global batch of {B} sequences, got {ids.shape[0]}"
            )
        for hook in list(self.pre_step_hooks):
            hook(self)
        d = self.parallel.data_parallel_size
        m = self.parallel.num_microbatches
        shards = scatter_batch(ids, targets, d)
        losses = []
        tracer = current_tracer()
        runlog = current_run_logger()
        observed = tracer is not None or runlog is not None
        step_start = time.perf_counter() if observed else 0.0
        rank_busy: dict[int, float] | None = {} if runlog is not None else None
        with obs_span("iteration", phase="iteration", iteration=self.iteration):
            if self._workers is not None:
                self._run_step_mp(shards, d, losses, rank_busy)
            else:
                self._run_step_coop(shards, d, m, losses, rank_busy)
        mean_loss = float(np.mean(losses))
        if observed:
            seconds = time.perf_counter() - step_start
            if tracer is not None:
                self._publish_telemetry(tracer, seconds)
            if runlog is not None:
                self._publish_runlog(
                    runlog, mean_loss, seconds, rank_busy or {}
                )
        self.iteration += 1
        return mean_loss

    def _run_step_coop(self, shards, d, m, losses, rank_busy) -> None:
        """The cooperative oracle step (single process, every virtual
        rank in turn) — the reference the mp path is conformed against."""
        with obs_span("pipeline", phase="pipeline"):
            for dp, (replica, (rid, rtgt)) in enumerate(
                zip(self.replicas, shards)
            ):
                replica_start = (
                    time.perf_counter() if rank_busy is not None else 0.0
                )
                replica.zero_grad()
                microbatches = make_microbatches(rid, rtgt, m)
                losses.append(
                    replica.run_iteration(
                        microbatches, grad_scale=self.loss_scale / m
                    )
                )
                if rank_busy is not None:
                    rank_busy[dp] = time.perf_counter() - replica_start
        if d > 1:
            with obs_span("grad-allreduce", phase="grad-allreduce"):
                all_reduce_gradients(
                    [replica.parameters() for replica in self.replicas],
                    self._dp_ranks,
                    self.log,
                    average=True,
                )
        with obs_span("optimizer", phase="optimizer"):
            if self.loss_scale != 1.0:
                for replica in self.replicas:
                    for p in replica.parameters():
                        p.grad /= self.loss_scale
            if self.grad_clip_norm is not None:
                self._clip_gradients()
            for opt in self.optimizers:
                opt.step()

    def _run_step_mp(self, shards, d, losses, rank_busy) -> None:
        """One step on real processes: each replica worker runs its
        pipeline and the shared-memory gradient ring, then steps its
        Adam locally.  The parent replays the workers' replica-local
        traffic (in data-parallel order, matching the oracle's
        sequential execution) and the analytic §3.3.1 gradient-ring hop
        plan, so ``self.log`` is record-for-record identical to coop.
        """
        from .mp_workers import replay_records

        if self._workers_stale:
            self._push_worker_state()
        with obs_span("pipeline", phase="pipeline"):
            results = self._workers.step(list(shards))
            for dp, (loss, records, norm, seconds) in enumerate(results):
                losses.append(loss)
                replay_records(self.log, records)
                if rank_busy is not None:
                    rank_busy[dp] = seconds
                if dp == 0:
                    self.last_grad_norm = norm
        if d > 1:
            with obs_span("grad-allreduce", phase="grad-allreduce"):
                for i, p in enumerate(self.replicas[0].parameters()):
                    _sanitize("all_reduce", self._dp_ranks, p.data.shape,
                              p.data.dtype, f"dp.grad.{i}")
                    hops = ring_all_reduce_hops(p.data.size, 8, d)
                    for si, di, nbytes in hops:
                        self.log.add(
                            self._dp_ranks[si], self._dp_ranks[di], nbytes,
                            TrafficKind.DATA_PARALLEL, f"dp.grad.{i}",
                        )
        with obs_span("optimizer", phase="optimizer"):
            pass  # loss-scale unwind, clip and Adam ran inside the workers
        self._parent_stale = True

    def _pull_worker_state(self) -> None:
        """Refresh the parent's canonical replicas/optimizers from
        worker 0 (replicas are bit-identical across the data-parallel
        group, so one pull covers all of them)."""
        state = self._workers.get_state(0)
        for replica in self.replicas:
            for p, arr in zip(replica.parameters(), state["params"]):
                p.data[...] = arr
        for opt in self.optimizers:
            for a, arr in zip(opt._m, state["m"]):
                a[...] = arr
            for a, arr in zip(opt._v, state["v"]):
                a[...] = arr
            opt.step_count = state["step_count"]
        self._parent_stale = False

    def _push_worker_state(self) -> None:
        """Push the parent's canonical state to every worker (after a
        checkpoint restore)."""
        state = {
            "params": [p.data.copy() for p in self.replicas[0].parameters()],
            "m": [a.copy() for a in self.optimizers[0]._m],
            "v": [a.copy() for a in self.optimizers[0]._v],
            "step_count": self.optimizers[0].step_count,
        }
        self._workers.set_state(state)
        self._workers_stale = False

    def invalidate_workers(self) -> None:
        """Mark worker state stale after the parent's replicas were
        mutated externally (checkpoint restore); a no-op on coop."""
        if self._workers is not None:
            self._workers_stale = True

    def sync_from_workers(self) -> None:
        """Ensure the parent replicas hold the freshest parameters."""
        if self._workers is not None and self._parent_stale:
            self._pull_worker_state()

    def close(self) -> None:
        """Release backend resources (mp worker processes + segments)."""
        if self._workers is not None:
            self._workers.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _publish_telemetry(self, tracer, seconds: float) -> None:
        """Table-1 throughput gauges + per-GPU memory counter samples.

        Only runs under an active tracer (the untraced hot path pays a
        single ``current_tracer()`` check).  FLOPs are the eq. (3)
        closed form — the same number ``repro.verify``'s conservation
        check pins to the FlopMeter — so trainer MFU, simulator MFU,
        and the analytic model agree by construction; the *measured*
        quantity is the wall-clock iteration time.
        """
        from repro.hardware import a100_80gb
        from repro.obs.telemetry import (
            MemoryBreakdown,
            sample_memory,
            sample_throughput,
            throughput_report,
        )
        from repro.perf.memory import memory_footprint, parameters_per_rank

        report = throughput_report(
            self.config, self.parallel, seconds,
            peak_flops=a100_80gb().peak_flops,
            with_recompute=self.recompute_activations,
        )
        sample_throughput(tracer, report)
        fp = memory_footprint(
            self.config, self.parallel,
            recompute=self.recompute_activations,
        )
        sample_memory(
            tracer,
            MemoryBreakdown(parameters_per_rank(self.config, self.parallel)),
            fp.activations + fp.stage_inputs,
        )

    def _publish_runlog(self, runlog, loss: float, seconds: float,
                        rank_busy: dict[int, float]) -> None:
        """One run-log heartbeat round + iteration record.

        ``rank_busy`` carries per-data-parallel-replica pipeline self
        times (the live engine's per-rank span self-time proxy — the
        replicas are the concurrently-schedulable units here).  Only
        runs when a run logger is active; the bare hot path pays a
        single ``current_run_logger()`` check
        (``benchmarks/bench_monitor_overhead.py``).
        """
        from repro.hardware import a100_80gb

        if not hasattr(self, "_runlog_flops"):
            self._runlog_flops = self.config.flops_per_iteration(
                self.parallel.global_batch_size,
                with_recompute=self.recompute_activations,
            )
            self._runlog_peak = a100_80gb().peak_flops
        world = self.parallel.world_size
        tokens = self.parallel.global_batch_size * self.config.seq_length
        runlog.heartbeat(range(world), self.iteration)
        runlog.iteration(
            self.iteration, loss, seconds,
            tokens_per_s=tokens / seconds,
            mfu=self._runlog_flops / world / seconds / self._runlog_peak,
            grad_norm=self.last_grad_norm,
            rank_busy=rank_busy,
        )

    def _clip_gradients(self) -> None:
        """Clip by the *global* gradient norm (Megatron semantics): the
        norm is taken over the full model -- all model-parallel shards,
        tied parameters counted once -- and the same scale is applied to
        every shard on every replica (replicas hold identical averaged
        gradients, so replica 0's norm is the global norm)."""
        replica = self.replicas[0]
        sq = 0.0
        for p in replica.parameters_for_norm():
            sq += float(np.sum(p.grad * p.grad))
        norm = float(np.sqrt(sq))
        self.last_grad_norm = norm
        if norm <= self.grad_clip_norm or norm == 0.0:
            return
        scale = self.grad_clip_norm / norm
        for rep in self.replicas:
            for p in rep.parameters():
                p.grad *= scale

    def evaluate(self, ids: np.ndarray, targets: np.ndarray) -> float:
        """Loss without gradient accumulation or update (replica 0)."""
        self.sync_from_workers()
        m = self.parallel.num_microbatches
        d = self.parallel.data_parallel_size
        per = ids.shape[0] // d
        replica = self.replicas[0]
        replica.zero_grad()
        microbatches = make_microbatches(ids[:per], targets[:per], m)
        loss = replica.run_iteration(microbatches, training=False, grad_scale=0.0)
        replica.zero_grad()
        return loss

    def gather_state_dict(self) -> dict[str, np.ndarray]:
        """Replica 0's full serial-layout weights."""
        self.sync_from_workers()
        return self.replicas[0].gather_state_dict()

    def parameters_per_rank(self) -> int:
        """Trainable parameters held by one GPU (model-parallel shard)."""
        total = sum(p.size for p in self.replicas[0].parameters())
        return total // max(1, 1)  # replica already holds only its shard
