"""Distributed checkpoint save/load for the numeric PTD-P engine (§5.10).

Layout on disk::

    <directory>/
      metadata.json            # architecture, parallel config, iteration
      model.npz                # serial-layout (gathered) weights
      optimizer_rank<r>.npz    # per-data-parallel-rank Adam state (sharded
                               # exactly as the replica's parameter list)

Two resume modes, mirroring what real systems support:

- **same parallel configuration**: weights *and* Adam moments restore,
  so resumed training is bit-identical to uninterrupted training
  (tested);
- **different (p, t, d, v)** ("resharding"): the gathered weights load
  into any configuration of the same architecture; optimizer state is
  reset (the function reports this via its return value).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.config import GPTConfig, ParallelConfig

from .trainer import PTDTrainer


def _parallel_signature(parallel: ParallelConfig) -> dict:
    return {
        "p": parallel.pipeline_parallel_size,
        "t": parallel.tensor_parallel_size,
        "d": parallel.data_parallel_size,
        "b": parallel.microbatch_size,
        "B": parallel.global_batch_size,
        "v": parallel.num_model_chunks,
    }


def _model_signature(config: GPTConfig) -> dict:
    return {
        "num_layers": config.num_layers,
        "hidden_size": config.hidden_size,
        "num_attention_heads": config.num_attention_heads,
        "vocab_size": config.vocab_size,
        "seq_length": config.seq_length,
        "ffn_hidden_size": config.ffn_hidden_size,
    }


def save_checkpoint(trainer: PTDTrainer, directory: str) -> None:
    """Write a checkpoint of ``trainer`` to ``directory``."""
    os.makedirs(directory, exist_ok=True)
    meta = {
        "format_version": 1,
        "iteration": trainer.iteration,
        "model": _model_signature(trainer.config),
        "parallel": _parallel_signature(trainer.parallel),
    }
    with open(os.path.join(directory, "metadata.json"), "w") as f:
        json.dump(meta, f, indent=2)
    state = trainer.gather_state_dict()
    np.savez(os.path.join(directory, "model.npz"), **state)
    # Optimizer state, sharded as the replica parameter lists are.
    for r, opt in enumerate(trainer.optimizers):
        arrays = {"step_count": np.array(opt.step_count)}
        for i, (m, v) in enumerate(zip(opt._m, opt._v)):
            arrays[f"m_{i}"] = m
            arrays[f"v_{i}"] = v
        np.savez(os.path.join(directory, f"optimizer_rank{r}.npz"), **arrays)


def load_checkpoint(trainer: PTDTrainer, directory: str) -> bool:
    """Restore ``trainer`` from ``directory``.

    Returns True if the optimizer state was restored (same parallel
    configuration), False if only weights were loaded (resharded resume).
    Raises on architecture mismatch.
    """
    meta_path = os.path.join(directory, "metadata.json")
    if not os.path.exists(meta_path):
        raise FileNotFoundError(f"no checkpoint at {directory}")
    with open(meta_path) as f:
        meta = json.load(f)
    if meta.get("format_version") != 1:
        raise ValueError(f"unknown checkpoint format {meta.get('format_version')}")
    if meta["model"] != _model_signature(trainer.config):
        raise ValueError(
            "checkpoint architecture mismatch: "
            f"{meta['model']} vs {_model_signature(trainer.config)}"
        )
    with np.load(os.path.join(directory, "model.npz")) as data:
        state = {k: data[k] for k in data.files}
    for replica in trainer.replicas:
        replica.load_gathered_state_dict(state)
    trainer.iteration = int(meta["iteration"])

    same_parallel = meta["parallel"] == _parallel_signature(trainer.parallel)
    if not same_parallel:
        return False
    for r, opt in enumerate(trainer.optimizers):
        path = os.path.join(directory, f"optimizer_rank{r}.npz")
        if not os.path.exists(path):
            return False
        with np.load(path) as data:
            opt.step_count = int(data["step_count"])
            for i in range(len(opt._m)):
                if data[f"m_{i}"].shape != opt._m[i].shape:
                    raise ValueError(
                        f"optimizer shard {i} shape mismatch on rank {r}"
                    )
                opt._m[i][...] = data[f"m_{i}"]
                opt._v[i][...] = data[f"v_{i}"]
    return True
