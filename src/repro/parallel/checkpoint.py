"""Durable distributed checkpointing for the numeric PTD-P engine (§5.10).

Layout on disk::

    <directory>/
      metadata.json            # architecture, parallel config, iteration,
                               # and per-file integrity digests
      model.npz                # serial-layout (gathered) weights
      optimizer_rank<r>.npz    # per-data-parallel-rank Adam state (sharded
                               # exactly as the replica's parameter list)

Two resume modes, mirroring what real systems support:

- **same parallel configuration**: weights *and* Adam moments restore,
  so resumed training is bit-identical to uninterrupted training
  (tested);
- **different (p, t, d, v)** ("resharding"): the gathered weights load
  into any configuration of the same architecture; optimizer state is
  reset (the function reports this via its return value).

Crash consistency follows the discipline of production checkpoint
stacks (CheckFreq, Mohan et al., FAST '21): a checkpoint is staged into
a temp directory on the same filesystem, every file is fsynced and its
CRC32/SHA256 recorded in ``metadata.json`` (written last), and the
whole directory is published with a single ``rename``.  A reader can
therefore never observe a half-written checkpoint, and
:func:`verify_checkpoint` can prove, offline, that a checkpoint on disk
is exactly what the writer committed.

:class:`CheckpointStore` layers run-level management on top: numbered
``step-<iteration>`` snapshots under one root, a ``LATEST`` pointer
that is advanced only after the committed checkpoint passes integrity
verification, last-*k* retention with garbage collection, and
newest-verified-first restore that skips corrupted snapshots.

All failure modes raise from one hierarchy rooted at
:class:`CheckpointError`; the subclasses double as the builtin types
callers historically caught (``FileNotFoundError`` for a missing
checkpoint, ``ValueError`` for a format/architecture mismatch,
``OSError`` for corruption and commit refusals).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import GPTConfig, ParallelConfig

from .trainer import PTDTrainer

FORMAT_VERSION = 2
_LATEST = "LATEST"
_STEP_PREFIX = "step-"


class CheckpointError(Exception):
    """Base class for every checkpoint failure mode."""


class CheckpointNotFoundError(CheckpointError, FileNotFoundError):
    """No checkpoint exists where one was requested."""


class CheckpointCorruptError(CheckpointError, OSError):
    """A checkpoint exists but fails integrity verification: missing or
    truncated files, checksum mismatches, unreadable arrays, or
    optimizer shards whose shapes disagree with the metadata."""


class CheckpointMismatchError(CheckpointError, ValueError):
    """A (valid) checkpoint is incompatible with the requested load:
    unknown format version or a different model architecture."""


class CheckpointCommitError(CheckpointError, OSError):
    """Refusing to commit: the target exists and is not a recognised
    checkpoint (or empty directory), so overwriting it would destroy
    unrelated data."""


def _parallel_signature(parallel: ParallelConfig) -> dict:
    return {
        "p": parallel.pipeline_parallel_size,
        "t": parallel.tensor_parallel_size,
        "d": parallel.data_parallel_size,
        "b": parallel.microbatch_size,
        "B": parallel.global_batch_size,
        "v": parallel.num_model_chunks,
    }


def _model_signature(config: GPTConfig) -> dict:
    return {
        "num_layers": config.num_layers,
        "hidden_size": config.hidden_size,
        "num_attention_heads": config.num_attention_heads,
        "vocab_size": config.vocab_size,
        "seq_length": config.seq_length,
        "ffn_hidden_size": config.ffn_hidden_size,
    }


# -- integrity ---------------------------------------------------------------


def _file_digests(path: str, chunk_size: int = 1 << 20) -> dict:
    crc = 0
    sha = hashlib.sha256()
    size = 0
    with open(path, "rb") as f:
        while True:
            chunk = f.read(chunk_size)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
            sha.update(chunk)
            size += len(chunk)
    return {
        "size": size,
        "crc32": format(crc & 0xFFFFFFFF, "08x"),
        "sha256": sha.hexdigest(),
    }


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_metadata(directory: str) -> dict:
    """Parse ``metadata.json``; raises the appropriate hierarchy error."""
    if not os.path.isdir(directory):
        raise CheckpointNotFoundError(f"no checkpoint at {directory}")
    meta_path = os.path.join(directory, "metadata.json")
    if not os.path.exists(meta_path):
        raise CheckpointCorruptError(
            f"checkpoint {directory} has no metadata.json"
        )
    try:
        with open(meta_path) as f:
            meta = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {directory}: unreadable metadata.json: {exc}"
        ) from exc
    version = meta.get("format_version")
    if version not in (1, FORMAT_VERSION):
        raise CheckpointMismatchError(
            f"unknown checkpoint format {version}"
        )
    for key in ("iteration", "model", "parallel"):
        if key not in meta:
            raise CheckpointCorruptError(
                f"checkpoint {directory}: metadata.json is missing {key!r}"
            )
    return meta


def verify_checkpoint(directory: str) -> dict:
    """Prove a committed checkpoint is intact; returns its metadata.

    Every file recorded in the metadata must exist with the recorded
    size, CRC32, and SHA256 (format-version-1 checkpoints predate the
    digests: only file presence is checked).  Raises
    :class:`CheckpointNotFoundError` / :class:`CheckpointCorruptError` /
    :class:`CheckpointMismatchError`.
    """
    meta = _read_metadata(directory)
    if meta["format_version"] == 1:
        if not os.path.exists(os.path.join(directory, "model.npz")):
            raise CheckpointCorruptError(
                f"checkpoint {directory} is missing model.npz"
            )
        return meta
    files = meta.get("files")
    if not isinstance(files, dict) or "model.npz" not in files:
        raise CheckpointCorruptError(
            f"checkpoint {directory}: metadata.json has no file manifest"
        )
    for name, want in files.items():
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise CheckpointCorruptError(
                f"checkpoint {directory} is missing {name}"
            )
        got = _file_digests(path)
        for key in ("size", "crc32", "sha256"):
            if got[key] != want.get(key):
                raise CheckpointCorruptError(
                    f"checkpoint {directory}: {name} fails integrity "
                    f"verification ({key} {got[key]!r} != recorded "
                    f"{want.get(key)!r})"
                )
    return meta


# -- save --------------------------------------------------------------------


def _write_checkpoint_files(
    trainer: PTDTrainer, directory: str, *, durable: bool
) -> dict:
    """Write model/optimizer files into ``directory``; returns metadata."""
    state = trainer.gather_state_dict()
    model_path = os.path.join(directory, "model.npz")
    np.savez(model_path, **state)
    filenames = ["model.npz"]
    # Optimizer state, sharded as the replica parameter lists are.
    for r, opt in enumerate(trainer.optimizers):
        arrays = {"step_count": np.array(opt.step_count)}
        for i, (m, v) in enumerate(zip(opt._m, opt._v)):
            arrays[f"m_{i}"] = m
            arrays[f"v_{i}"] = v
        name = f"optimizer_rank{r}.npz"
        np.savez(os.path.join(directory, name), **arrays)
        filenames.append(name)
    meta = {
        "format_version": FORMAT_VERSION,
        "iteration": trainer.iteration,
        "model": _model_signature(trainer.config),
        "parallel": _parallel_signature(trainer.parallel),
        "files": {
            name: _file_digests(os.path.join(directory, name))
            for name in filenames
        },
    }
    if durable:
        for name in filenames:
            _fsync_file(os.path.join(directory, name))
    meta_path = os.path.join(directory, "metadata.json")
    with open(meta_path, "w") as f:
        json.dump(meta, f, indent=2)
    if durable:
        _fsync_file(meta_path)
        _fsync_dir(directory)
    return meta


def is_checkpoint_dir(directory: str) -> bool:
    """True if ``directory`` looks like a committed checkpoint (any
    format version) -- the only kind of existing directory
    :func:`save_checkpoint` will replace (besides an empty one)."""
    try:
        _read_metadata(directory)
    except CheckpointError:
        return False
    return True


def _check_replaceable(directory: str) -> None:
    if not os.path.isdir(directory):
        raise CheckpointCommitError(
            f"refusing to commit over {directory}: exists and is not a "
            f"directory"
        )
    if os.listdir(directory) and not is_checkpoint_dir(directory):
        raise CheckpointCommitError(
            f"refusing to commit over {directory}: existing directory is "
            f"not a recognised checkpoint"
        )


def save_checkpoint(
    trainer: PTDTrainer,
    directory: str,
    *,
    atomic: bool = True,
    fault_hook: Callable[[str], None] | None = None,
) -> dict:
    """Write a checkpoint of ``trainer`` to ``directory``; returns the
    committed metadata.

    With ``atomic=True`` (the default) the checkpoint is staged in a
    sibling temp directory, checksummed, fsynced, and published with a
    single rename -- an interrupted save never leaves a partial
    checkpoint at ``directory``.  The target may only already exist as
    an empty directory or a previous checkpoint
    (:class:`CheckpointCommitError` otherwise).

    ``atomic=False`` is the pre-hardening writer (direct in-place file
    writes, no fsync), retained as the baseline for
    ``benchmarks/bench_chaos.py``'s commit-overhead measurement.

    ``fault_hook`` is the chaos-injection point: it is called with the
    stage names ``"write"`` (before any file exists), ``"pre-commit"``
    (temp directory fully written, nothing published), and
    ``"post-commit"`` (rename done); any exception it raises aborts the
    save at exactly that point, cleaning up staged state.
    """
    hook = fault_hook if fault_hook is not None else (lambda stage: None)
    if not atomic:
        hook("write")
        os.makedirs(directory, exist_ok=True)
        meta = _write_checkpoint_files(trainer, directory, durable=False)
        hook("pre-commit")
        hook("post-commit")
        return meta

    parent = os.path.dirname(os.path.abspath(directory))
    os.makedirs(parent, exist_ok=True)
    if os.path.lexists(directory):
        _check_replaceable(directory)
    hook("write")
    tmp = tempfile.mkdtemp(
        prefix=os.path.basename(directory) + ".tmp-", dir=parent
    )
    displaced = None
    try:
        meta = _write_checkpoint_files(trainer, tmp, durable=True)
        hook("pre-commit")
        if os.path.lexists(directory):
            _check_replaceable(directory)  # re-check: races with writers
            displaced = tempfile.mkdtemp(
                prefix=os.path.basename(directory) + ".old-", dir=parent
            )
            os.rmdir(displaced)
            os.rename(directory, displaced)
        os.rename(tmp, directory)
        _fsync_dir(parent)
        hook("post-commit")
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        if displaced is not None and not os.path.lexists(directory):
            os.rename(displaced, directory)
            displaced = None
        raise
    finally:
        if displaced is not None:
            shutil.rmtree(displaced, ignore_errors=True)
    return meta


# -- load --------------------------------------------------------------------


def _load_npz(directory: str, name: str) -> dict[str, np.ndarray]:
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        raise CheckpointCorruptError(
            f"checkpoint {directory} is missing {name}"
        )
    try:
        with np.load(path) as data:
            return {k: data[k] for k in data.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {directory}: unreadable {name}: {exc}"
        ) from exc


def load_checkpoint(
    trainer: PTDTrainer, directory: str, *, verify: bool = True
) -> bool:
    """Restore ``trainer`` from ``directory``.

    Returns True if the optimizer state was restored (same parallel
    configuration), False if only weights were loaded (resharded resume;
    the caller's fresh optimizer state is kept).  ``verify=True`` (the
    default) checks every file's recorded checksums first, so corruption
    surfaces as :class:`CheckpointCorruptError` before any state is
    touched.  Architecture mismatches raise
    :class:`CheckpointMismatchError`.
    """
    meta = verify_checkpoint(directory) if verify else _read_metadata(directory)
    if meta["model"] != _model_signature(trainer.config):
        raise CheckpointMismatchError(
            "checkpoint architecture mismatch: "
            f"{meta['model']} vs {_model_signature(trainer.config)}"
        )
    state = _load_npz(directory, "model.npz")
    try:
        for replica in trainer.replicas:
            replica.load_gathered_state_dict(state)
    except KeyError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {directory}: model.npz is missing parameter {exc}"
        ) from exc
    trainer.iteration = int(meta["iteration"])
    # The parent's canonical state changed under the trainer: on the mp
    # backend the replica workers must re-sync before the next step.
    trainer.invalidate_workers()

    same_parallel = meta["parallel"] == _parallel_signature(trainer.parallel)
    if not same_parallel:
        return False
    for r, opt in enumerate(trainer.optimizers):
        arrays = _load_npz(directory, f"optimizer_rank{r}.npz")
        try:
            opt.step_count = int(arrays["step_count"])
            for i in range(len(opt._m)):
                if arrays[f"m_{i}"].shape != opt._m[i].shape:
                    raise CheckpointCorruptError(
                        f"checkpoint {directory}: optimizer shard {i} shape "
                        f"mismatch on rank {r}"
                    )
                opt._m[i][...] = arrays[f"m_{i}"]
                opt._v[i][...] = arrays[f"v_{i}"]
        except KeyError as exc:
            raise CheckpointCorruptError(
                f"checkpoint {directory}: optimizer_rank{r}.npz is missing "
                f"array {exc}"
            ) from exc
    return True


# -- run-level store ---------------------------------------------------------


@dataclass
class RestoreResult:
    """What :meth:`CheckpointStore.restore` actually restored."""

    iteration: int
    path: str
    optimizer_restored: bool
    #: (iteration, error message) for every newer checkpoint skipped
    #: because it failed integrity verification or could not be loaded.
    skipped: list[tuple[int, str]] = field(default_factory=list)


class CheckpointStore:
    """Numbered checkpoints under one root with a verified ``LATEST``
    pointer, last-*k* retention, and corruption-skipping restore.

    ``save_fault`` is the chaos hook: called as ``save_fault(iteration,
    stage)`` at each :func:`save_checkpoint` stage plus ``"pre-latest"``
    (checkpoint committed and verified, pointer not yet advanced); an
    exception aborts the save at that point.  Because the pointer is
    only advanced after the committed checkpoint passes
    :func:`verify_checkpoint`, ``LATEST`` never names a checkpoint that
    fails integrity verification at commit time.
    """

    def __init__(
        self,
        root: str,
        *,
        keep_last: int = 2,
        save_fault: Callable[[int, str], None] | None = None,
    ):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.root = root
        self.keep_last = keep_last
        self.save_fault = save_fault

    def path_for(self, iteration: int) -> str:
        return os.path.join(self.root, f"{_STEP_PREFIX}{iteration:08d}")

    def iterations(self) -> list[int]:
        """Committed checkpoint iterations, ascending."""
        if not os.path.isdir(self.root):
            return []
        found = []
        for name in os.listdir(self.root):
            if not name.startswith(_STEP_PREFIX):
                continue
            suffix = name[len(_STEP_PREFIX):]
            if suffix.isdigit() and os.path.isdir(
                os.path.join(self.root, name)
            ):
                found.append(int(suffix))
        return sorted(found)

    def latest_iteration(self) -> int | None:
        """Iteration named by the ``LATEST`` pointer, if it resolves."""
        path = os.path.join(self.root, _LATEST)
        try:
            with open(path) as f:
                name = f.read().strip()
        except OSError:
            return None
        if not name.startswith(_STEP_PREFIX):
            return None
        suffix = name[len(_STEP_PREFIX):]
        if not suffix.isdigit():
            return None
        iteration = int(suffix)
        if not os.path.isdir(self.path_for(iteration)):
            return None
        return iteration

    def _write_latest(self, iteration: int) -> None:
        os.makedirs(self.root, exist_ok=True)
        tmp = os.path.join(self.root, _LATEST + ".tmp")
        with open(tmp, "w") as f:
            f.write(f"{_STEP_PREFIX}{iteration:08d}\n")
        _fsync_file(tmp)
        os.replace(tmp, os.path.join(self.root, _LATEST))
        _fsync_dir(self.root)

    def save(self, trainer: PTDTrainer) -> str:
        """Commit a verified checkpoint of ``trainer``, advance
        ``LATEST``, and garbage-collect old snapshots; returns the
        committed path."""
        iteration = trainer.iteration
        target = self.path_for(iteration)
        os.makedirs(self.root, exist_ok=True)
        hook = None
        if self.save_fault is not None:
            fault = self.save_fault

            def hook(stage: str) -> None:
                fault(iteration, stage)

        save_checkpoint(trainer, target, fault_hook=hook)
        verify_checkpoint(target)
        if hook is not None:
            hook("pre-latest")
        self._write_latest(iteration)
        self.garbage_collect()
        return target

    def garbage_collect(self) -> list[int]:
        """Remove snapshots beyond the newest ``keep_last`` (never the
        one ``LATEST`` points at); returns the removed iterations."""
        iterations = self.iterations()
        keep = set(iterations[-self.keep_last:])
        latest = self.latest_iteration()
        if latest is not None:
            keep.add(latest)
        removed = []
        for iteration in iterations:
            if iteration not in keep:
                shutil.rmtree(self.path_for(iteration), ignore_errors=True)
                removed.append(iteration)
        return removed

    def restore(self, trainer: PTDTrainer) -> RestoreResult:
        """Restore ``trainer`` from the newest checkpoint that passes
        integrity verification, skipping (and reporting) corrupted ones.

        The ``LATEST`` pointer is a hint, not an authority: candidates
        are every committed snapshot, newest first, so a corrupted
        newest checkpoint falls back to an older verified one.  Raises
        :class:`CheckpointNotFoundError` when no usable checkpoint
        remains.
        """
        skipped: list[tuple[int, str]] = []
        candidates = sorted(self.iterations(), reverse=True)
        for iteration in candidates:
            path = self.path_for(iteration)
            try:
                verify_checkpoint(path)
                optimizer_restored = load_checkpoint(
                    trainer, path, verify=False
                )
            except CheckpointError as exc:
                skipped.append((iteration, str(exc)))
                continue
            return RestoreResult(
                iteration=iteration,
                path=path,
                optimizer_restored=optimizer_restored,
                skipped=skipped,
            )
        if skipped:
            raise CheckpointNotFoundError(
                f"no usable checkpoint under {self.root}: all "
                f"{len(skipped)} candidates failed verification"
            )
        raise CheckpointNotFoundError(f"no checkpoints under {self.root}")
