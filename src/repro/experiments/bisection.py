"""§5.9: effective inter-node communication bandwidth at 3072 GPUs.

For the trillion-parameter configuration (t=8, p=64, d=6, 384 nodes)
this experiment reports

- the aggregate *pipeline* point-to-point bandwidth across the cluster
  midpoint: at the stage boundary straddling the bisection, every
  (tensor x data) rank pair drives its own InfiniBand HCA, so the
  effective bandwidth is (t*d) concurrent streams at their achieved
  per-stream rate (paper: 892 GB/s);
- the aggregate *data-parallel* all-reduce bandwidth while the gradient
  all-reduce is active, summed over all t*p concurrent data-parallel
  rings (paper reports 12.9-13 TB/s; our number counts all inter-node
  ring traffic rather than only bisection-crossing bytes, so it is an
  upper bound with the same >10x separation from the pipeline number);
- the fat-tree's theoretical bisection bandwidth from the topology
  min-cut, for reference.
"""

from __future__ import annotations

from repro.comm import CommCostModel, ProcessGroups
from repro.config import ParallelConfig, gpt_1t
from repro.hardware import cluster_for_gpus
from repro.perf import MODEL_STATE_BYTES_PER_PARAM, parameters_per_rank

from .report import ExperimentResult


def run() -> ExperimentResult:
    model = gpt_1t()
    parallel = ParallelConfig(
        pipeline_parallel_size=64, tensor_parallel_size=8,
        data_parallel_size=6, microbatch_size=1, global_batch_size=3072,
    )
    topo = cluster_for_gpus(parallel.world_size)
    comm = CommCostModel(topo)
    groups = ProcessGroups(parallel)

    # Pipeline p2p across the midpoint: one stage boundary straddles it;
    # t*d rank pairs transfer simultaneously, one HCA each (§4.1).
    b, s, h = parallel.b, model.seq_length, model.hidden_size
    bytes_per_pair = b * s * h * 2 / parallel.t  # scatter/gather split
    pipe_ranks = groups.pipeline_group(dp=0, tp=0)
    mid = parallel.p // 2
    per_pair_time = comm.p2p_time(
        pipe_ranks[mid - 1], pipe_ranks[mid], bytes_per_pair
    )
    streams = parallel.t * parallel.d
    pipeline_bw = streams * bytes_per_pair / per_pair_time

    # Data-parallel all-reduce: t*p concurrent rings over the fp16
    # gradient shard of each rank.
    grad_bytes = parameters_per_rank(model, parallel) * 2
    dp_ranks = groups.data_group(pp=0, tp=0)
    ar_time = comm.all_reduce_time(dp_ranks, grad_bytes)
    per_rank_moved = 2 * (parallel.d - 1) / parallel.d * grad_bytes
    group_bw = parallel.d * per_rank_moved / ar_time
    dp_bw = parallel.t * parallel.p * group_bw

    result = ExperimentResult(
        experiment_id="bisection",
        title="Effective inter-node bandwidth, 1T model on 3072 GPUs (§5.9)",
        columns=("metric", "value_GBps", "paper_GBps"),
    )
    result.add("pipeline p2p (bisection streams)", round(pipeline_bw / 1e9, 0), 892)
    result.add("data-parallel all-reduce (aggregate)", round(dp_bw / 1e9, 0), 12900)
    result.add(
        "fat-tree theoretical bisection", round(topo.bisection_bandwidth() / 1e9, 0),
        float("nan"),
    )
    result.notes = (
        "Shape target: data-parallel all-reduce bandwidth exceeds the "
        "pipeline p2p bisection bandwidth by >10x; both are far below "
        "the tree's theoretical bisection, i.e. the partitioning, not "
        "the network, sets the communication intensity."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
