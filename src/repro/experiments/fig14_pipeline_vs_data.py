"""Figure 14: pipeline vs data parallelism tradeoff.

5.9B-parameter GPT (32 layers, hidden 3840, 32 heads) on 64 GPUs, t=1,
(p, d) from (2, 32) to (32, 2), microbatch 1, batches 32/128/512.
"""

from __future__ import annotations

from repro.config import ParallelConfig, fig14_model
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

COMBOS = ((2, 32), (4, 16), (8, 8), (16, 4), (32, 2))
BATCH_SIZES = (32, 128, 512)


def run() -> ExperimentResult:
    model = fig14_model()
    result = ExperimentResult(
        experiment_id="fig14",
        title="Pipeline vs data parallelism (5.9B model, 64 GPUs, b=1)",
        columns=("batch", "p", "d", "tflops_gpu"),
    )
    for B in BATCH_SIZES:
        for p, d in COMBOS:
            if B % d:
                continue
            par = ParallelConfig(
                pipeline_parallel_size=p, tensor_parallel_size=1,
                data_parallel_size=d, microbatch_size=1, global_batch_size=B,
            )
            res = simulate_iteration(
                model, par, options=SimOptions(schedule_name="1f1b")
            )
            result.add(B, p, d, round(res.tflops_per_gpu, 1))
    result.notes = (
        "Shape target: throughput decreases as p grows at every batch "
        "size ((n-d)/b' bubble, §3.3.1); larger batches help."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
