"""§5.8: performance impact of operator fusion.

Simulates GPT-3 (175B, 96 GPUs) and the 530B model (280 GPUs) with and
without the fused bias+GeLU / bias+dropout+add / scale+mask+softmax
kernels.  Paper: +19% (175B, 113 -> 135 Tflop/s) and +11% (530B,
133 -> 148).
"""

from __future__ import annotations

from repro.config import ParallelConfig, gpt3_175b, gpt_530b
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

CASES = (
    ("175B", gpt3_175b, 8, 12, 1, 48, 19),
    ("530B", gpt_530b, 8, 35, 1, 70, 11),
)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fused_ops",
        title="Operator fusion (§5.8)",
        columns=("model", "gpus", "unfused_tflops", "fused_tflops",
                 "gain_pct", "paper_gain_pct"),
    )
    for name, ctor, t, p, d, B, paper_gain in CASES:
        model = ctor()
        par = ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1, global_batch_size=B,
        )
        un = simulate_iteration(
            model, par, options=SimOptions(fused_kernels=False)
        ).tflops_per_gpu
        fu = simulate_iteration(
            model, par, options=SimOptions(fused_kernels=True)
        ).tflops_per_gpu
        result.add(name, par.world_size, round(un, 1), round(fu, 1),
                   round(100 * (fu / un - 1), 1), paper_gain)
    result.notes = (
        "Shape target: fusion helps both models, more for the smaller-h "
        "model (elementwise traffic is a larger share of its time)."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
