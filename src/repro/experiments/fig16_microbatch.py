"""Figure 16: microbatch size at scale.

91B-parameter GPT, (t, p) = (8, 8) on 64 GPUs, batch sizes 128 and 512,
microbatch sizes 1..8 -- full simulation (not just eq. (1)).
"""

from __future__ import annotations

from repro.config import ParallelConfig, fig16_model
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

BATCH_SIZES = (128, 512)
MICROBATCHES = (1, 2, 4, 8)
T, P = 8, 8


def run() -> ExperimentResult:
    model = fig16_model()
    result = ExperimentResult(
        experiment_id="fig16",
        title="Microbatch size at scale (91B model, (t,p)=(8,8))",
        columns=("batch", "microbatch", "tflops_gpu", "is_best"),
    )
    for B in BATCH_SIZES:
        rows = []
        for b in MICROBATCHES:
            if B % b:
                continue
            par = ParallelConfig(
                pipeline_parallel_size=P, tensor_parallel_size=T,
                data_parallel_size=1, microbatch_size=b, global_batch_size=B,
            )
            res = simulate_iteration(
                model, par, options=SimOptions(schedule_name="1f1b")
            )
            rows.append((b, res.tflops_per_gpu))
        best_b = max(rows, key=lambda r: r[1])[0]
        for b, tf in rows:
            result.add(B, b, round(tf, 1), "*" if b == best_b else "")
    result.notes = (
        "Shape target: interior optimum (paper: b=2 for this model); "
        "B=512 dominates B=128 at every microbatch size."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
