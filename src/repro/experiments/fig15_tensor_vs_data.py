"""Figure 15: tensor vs data parallelism tradeoff.

Same 5.9B model and 64 GPUs as Figure 14, p=1, (t, d) from (2, 32) to
(32, 2), microbatch 1.
"""

from __future__ import annotations

from repro.config import ParallelConfig, fig14_model
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

COMBOS = ((2, 32), (4, 16), (8, 8), (16, 4), (32, 2))
BATCH_SIZES = (32, 128, 512)


def run() -> ExperimentResult:
    model = fig14_model()
    result = ExperimentResult(
        experiment_id="fig15",
        title="Tensor vs data parallelism (5.9B model, 64 GPUs, b=1)",
        columns=("batch", "t", "d", "tflops_gpu"),
    )
    for B in BATCH_SIZES:
        for t, d in COMBOS:
            if B % d:
                continue
            par = ParallelConfig(
                pipeline_parallel_size=1, tensor_parallel_size=t,
                data_parallel_size=d, microbatch_size=1, global_batch_size=B,
            )
            res = simulate_iteration(
                model, par, options=SimOptions(schedule_name="1f1b")
            )
            result.add(B, t, d, round(res.tflops_per_gpu, 1))
    result.notes = (
        "Shape target: throughput drops as t grows, with a cliff past the "
        "node boundary (t > 8); per-microbatch all-reduces dominate."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
