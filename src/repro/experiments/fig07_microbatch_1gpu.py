"""Figure 7: per-GPU throughput vs microbatch size on a single GPU.

The figure's model: ~1B parameters, 128 attention heads, hidden 4096,
4 transformer layers.  Throughput comes from the roofline kernel model
(no parallelism, no recompute): larger microbatches raise GEMM
arithmetic efficiency until saturation.
"""

from __future__ import annotations

from repro.config import fig7_model
from repro.hardware import ComputeModel, a100_80gb
from repro.perf import stage_compute_cost

from .report import ExperimentResult

MICROBATCH_SIZES = (1, 2, 4, 8, 16)


def run() -> ExperimentResult:
    cfg = fig7_model()
    cm = ComputeModel(device=a100_80gb())
    result = ExperimentResult(
        experiment_id="fig07",
        title="Single-GPU throughput vs microbatch size (1B model)",
        columns=("microbatch", "tflops_gpu", "seq_per_s", "speedup_vs_b1"),
    )
    base = None
    for b in MICROBATCH_SIZES:
        cost = stage_compute_cost(
            cm, cfg, cfg.num_layers, b, 1,
            is_first=True, is_last=True, recompute=False,
        )
        flops = cfg.flops_per_iteration(b, with_recompute=False)
        tflops = flops / cost.total / 1e12
        if base is None:
            base = tflops
        result.add(
            b, round(tflops, 1), round(b / cost.total, 2),
            round(tflops / base, 3),
        )
    result.notes = (
        "Shape target: throughput increases with b then saturates (paper: "
        "up to 1.3x; our roofline model reproduces the shape with a "
        "smaller amplitude, see EXPERIMENTS.md)."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
