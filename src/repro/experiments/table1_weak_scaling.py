"""Table 1: weak-scaling throughput, 1.7B to 1T parameters.

Simulates every Table-1 configuration end to end (interleaved schedule
is used for p > 1 in the paper; per-row microbatch sizes are not
published, we use b = 1) and reports achieved Tflop/s per GPU, the
percentage of the 312 Tflop/s peak, and the aggregate Pflop/s, next to
the paper's measured values.
"""

from __future__ import annotations

from repro.config import TABLE1_ROWS
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Weak-scaling throughput for GPT models (1B to 1T params)",
        columns=(
            "params_B", "heads", "hidden", "layers", "t", "p", "gpus",
            "batch", "tflops_gpu", "paper_tflops", "peak_frac",
            "paper_frac", "agg_pflops", "paper_agg",
        ),
    )
    for row in TABLE1_ROWS:
        res = simulate_iteration(
            row.model, row.parallel, options=SimOptions(schedule_name="1f1b")
        )
        result.add(
            row.reported_params_billion,
            row.model.num_attention_heads,
            row.model.hidden_size,
            row.model.num_layers,
            row.parallel.tensor_parallel_size,
            row.parallel.pipeline_parallel_size,
            row.parallel.world_size,
            row.parallel.global_batch_size,
            round(res.tflops_per_gpu, 1),
            row.reported_tflops_per_gpu,
            round(res.peak_fraction, 3),
            row.reported_peak_fraction,
            round(res.aggregate_pflops, 1),
            row.reported_aggregate_pflops,
        )
    result.notes = (
        "Shape target: utilization grows with model size (44% -> 52% in the "
        "paper); aggregate throughput ~= n x per-GPU."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())


if __name__ == "__main__":  # pragma: no cover
    main()
