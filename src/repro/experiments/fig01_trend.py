"""Figure 1: trend of state-of-the-art NLP model sizes over time.

A static dataset (model, year, parameters) showing the exponential
growth the paper's introduction motivates; the experiment fits the
exponent and reports the doubling time.
"""

from __future__ import annotations

import math

from .report import ExperimentResult

#: (model, year, parameters)
MODEL_SIZES = (
    ("ELMo", 2018.2, 94e6),
    ("GPT-1", 2018.5, 110e6),
    ("BERT-Large", 2018.8, 340e6),
    ("GPT-2", 2019.1, 1.5e9),
    ("Megatron-LM", 2019.7, 8.3e9),
    ("T5-11B", 2019.9, 11e9),
    ("Turing-NLG", 2020.1, 17e9),
    ("GPT-3", 2020.4, 175e9),
    ("Megatron-Turing (this paper's 1T run)", 2021.3, 1.008e12),
)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig01",
        title="Growth of NLP model sizes (exponential trend)",
        columns=("model", "year", "parameters", "log10_params"),
    )
    for name, year, params in MODEL_SIZES:
        result.add(name, year, params, round(math.log10(params), 2))
    # Least-squares slope of log10(P) vs year.
    ys = [y for _, y, _ in MODEL_SIZES]
    ls = [math.log10(p) for _, _, p in MODEL_SIZES]
    n = len(ys)
    ybar, lbar = sum(ys) / n, sum(ls) / n
    slope = sum((y - ybar) * (l - lbar) for y, l in zip(ys, ls)) / sum(
        (y - ybar) ** 2 for y in ys
    )
    doubling_months = 12 * math.log10(2) / slope
    result.notes = (
        f"Fitted growth: 10^{slope:.2f} per year "
        f"(doubling every {doubling_months:.1f} months) -- exponential, "
        "as Figure 1 shows."
    )
    return result


def doubling_time_months() -> float:
    res = run()
    return float(res.notes.split("doubling every ")[1].split(" months")[0])


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
