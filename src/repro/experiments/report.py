"""Uniform experiment-result container and text-table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's tables or figures."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.columns}") from None
        return [r[idx] for r in self.rows]

    def to_text(self) -> str:
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.4g}"
            return str(v)

        table = [tuple(map(fmt, self.columns))] + [
            tuple(map(fmt, r)) for r in self.rows
        ]
        widths = [max(len(row[i]) for row in table) for i in range(len(self.columns))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for j, row in enumerate(table):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if j == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


def print_result(result: ExperimentResult) -> None:  # pragma: no cover
    print(result.to_text())
    print()


def series_monotone(values: Sequence[float], *, decreasing: bool = False) -> bool:
    """Whether a series is (weakly) monotone -- used in shape assertions."""
    pairs = zip(values, values[1:])
    if decreasing:
        return all(a >= b for a, b in pairs)
    return all(a <= b for a, b in pairs)
