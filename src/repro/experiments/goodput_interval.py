"""Goodput vs checkpoint interval for the 1T run (§5.10 + resilience).

Sweeps the checkpoint interval for the trillion-parameter preset on its
384-node deployment, using the §5.10 filesystem model for save/load
costs and the expected-goodput overhead decomposition
(``save/c + (c/2 + detect + load) / MTBF``).  The curve is U-shaped in
overhead (too-frequent saves vs too much lost work) and its argmax
agrees with the Young/Daly interval ``sqrt(2 * save * MTBF)`` within
one sweep step.
"""

from __future__ import annotations

from repro.resilience import (
    RestartPolicy,
    goodput_scenarios,
    log_spaced_intervals,
    sweep_checkpoint_interval,
)

from .report import ExperimentResult

SWEEP_POINTS = 21


def run() -> ExperimentResult:
    scenario = goodput_scenarios()["1t"]
    policy = RestartPolicy.from_io_model(
        scenario.model, scenario.parallel, scenario.num_nodes
    )
    mtbf = scenario.cluster_mtbf_seconds
    intervals = log_spaced_intervals(
        2.0 * policy.save_seconds, mtbf, SWEEP_POINTS
    )
    sweep = sweep_checkpoint_interval(
        intervals,
        mtbf_seconds=mtbf,
        save_seconds=policy.save_seconds,
        load_seconds=policy.load_seconds,
        detection_seconds=policy.detector.expected_latency(),
    )
    result = ExperimentResult(
        experiment_id="goodput_interval",
        title="Goodput vs checkpoint interval, 1T model (§5.10)",
        columns=("interval_s", "goodput", "overhead", "optimum"),
    )
    for i, point in enumerate(sweep.points):
        result.add(
            round(point.interval_seconds, 1),
            round(point.goodput, 4),
            round(1.0 / point.goodput - 1.0, 4),
            "<--" if i == sweep.best_index else "",
        )
    analytic = sweep.analytic_interval_seconds
    result.notes = (
        f"save={policy.save_seconds:.1f}s load={policy.load_seconds:.1f}s "
        f"cluster MTBF={mtbf:.0f}s ({scenario.num_nodes} nodes); "
        f"Young/Daly optimum {analytic:.1f}s, sweep argmax within one "
        f"step: {sweep.agrees_within_one_step}"
    )
    if not sweep.is_interior:
        result.notes += " [WARNING: optimum on sweep boundary]"
    return result


def main() -> None:  # pragma: no cover
    from .plots import line_chart
    from .report import print_result

    result = run()
    print_result(result)
    print(
        line_chart(
            [float(v) for v in result.column("interval_s")],
            {"goodput": [float(v) for v in result.column("goodput")]},
            title="goodput vs checkpoint interval (log-spaced sweep)",
            y_label="goodput",
        )
    )
