"""Figures 3 and 4: pipeline schedule timelines and bubbles.

Renders the GPipe, default 1F1B, and interleaved 1F1B timelines for the
figures' setting (p=4, m=8, backward = 2x forward) and reports measured
vs analytical bubble fractions and peak in-flight microbatches.
"""

from __future__ import annotations

from repro.schedule import (
    bubble_overhead,
    gpipe_schedule,
    interleaved_schedule,
    make_schedule,
    one_f_one_b_schedule,
    render_schedule,
    simulate_times,
)

from .report import ExperimentResult

P, M, V = 4, 8, 2


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig03_fig04",
        title="Pipeline schedules: GPipe vs 1F1B vs interleaved (p=4, m=8)",
        columns=(
            "schedule", "makespan", "bubble_measured", "bubble_analytic",
            "max_in_flight_rank0",
        ),
    )
    for name, sched in (
        ("gpipe", gpipe_schedule(P, M)),
        ("1f1b", one_f_one_b_schedule(P, M)),
        ("interleaved(v=2)", interleaved_schedule(P, M, V)),
    ):
        tl = simulate_times(sched)
        v = sched.num_chunks
        result.add(
            name,
            tl.makespan,
            round(tl.bubble_fraction(), 4),
            round(bubble_overhead(P, M, v), 4),
            sched.max_in_flight_microbatches(0),
        )
    result.notes = (
        "Interleaving shrinks the bubble by v and flushes sooner "
        "(smaller makespan); GPipe stashes m=8 microbatches vs p=4 for 1F1B."
    )
    return result


def render_all() -> str:
    """The actual Figure 3/4 timelines as text."""
    parts = []
    for name, v in (("gpipe", 1), ("1f1b", 1), ("interleaved", V)):
        parts.append(render_schedule(make_schedule(name, P, M, v)))
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
    print(render_all())
