"""Figure 11: weak scaling of pipeline parallelism in isolation.

Model: hidden 20480, 128 heads, 3 layers per pipeline stage (15B params
at p=1 to 121B at p=8), t=8, microbatch 1, batch sizes 8 and 128.
The pipeline bubble (p-1)/m makes the small batch scale poorly.
"""

from __future__ import annotations

from repro.config import ParallelConfig, fig11_model
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

PIPELINE_SIZES = (1, 2, 4, 8)
BATCH_SIZES = (8, 128)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig11",
        title="Pipeline-parallel weak scaling (t=8, b=1)",
        columns=("batch", "p", "gpus", "params_B", "tflops_gpu", "bubble"),
    )
    for B in BATCH_SIZES:
        for p in PIPELINE_SIZES:
            model = fig11_model(p)
            par = ParallelConfig(
                pipeline_parallel_size=p,
                tensor_parallel_size=8,
                data_parallel_size=1,
                microbatch_size=1,
                global_batch_size=B,
            )
            res = simulate_iteration(
                model, par, options=SimOptions(schedule_name="1f1b")
            )
            result.add(
                B, p, par.world_size,
                round(model.num_parameters() / 1e9, 1),
                round(res.tflops_per_gpu, 1),
                round((p - 1) / par.num_microbatches, 3),
            )
    result.notes = (
        "Shape target: batch 128 sustains throughput as p grows; batch 8 "
        "degrades steeply (bubble (p-1)/m)."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
