"""Figure 13: tensor vs pipeline parallelism tradeoff.

162B-parameter GPT (32 layers, hidden 20480, 128 heads) on 64 GPUs,
(t, p) from (2, 32) to (32, 2), batch sizes 32 and 128, microbatch 1.
Peak throughput should land at t = 8 = GPUs per node (Takeaway #1).
"""

from __future__ import annotations

from repro.config import ParallelConfig, fig13_model
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

COMBOS = ((2, 32), (4, 16), (8, 8), (16, 4), (32, 2))
BATCH_SIZES = (32, 128)


def run() -> ExperimentResult:
    model = fig13_model()
    result = ExperimentResult(
        experiment_id="fig13",
        title="Tensor vs pipeline parallelism (162B model, 64 GPUs)",
        columns=("batch", "t", "p", "tflops_gpu"),
    )
    for B in BATCH_SIZES:
        for t, p in COMBOS:
            par = ParallelConfig(
                pipeline_parallel_size=p, tensor_parallel_size=t,
                data_parallel_size=1, microbatch_size=1, global_batch_size=B,
            )
            res = simulate_iteration(
                model, par, options=SimOptions(schedule_name="1f1b")
            )
            result.add(B, t, p, round(res.tflops_per_gpu, 1))
    result.notes = (
        "Shape target: peak at t=8 (node size); both extremes lose up to "
        "~2x (cross-node all-reduce on one side, pipeline bubble on the other)."
    )
    return result


def best_tensor_parallel_size(result, batch: int) -> int:
    rows = [r for r in result.rows if r[0] == batch]
    return max(rows, key=lambda r: r[3])[1]


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
