"""Figure 18: the scatter/gather communication optimization (§4.1).

GPT-3 (175B) on 96 GPUs with the interleaved schedule; with the
optimization each inter-node pipeline hop carries bsh/t bytes over
InfiniBand (plus a fast NVLink all-gather) instead of bsh on every
tensor-parallel rank pair.
"""

from __future__ import annotations

from repro.config import ParallelConfig, gpt3_175b
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

BATCH_SIZES = (12, 24, 36, 48, 60)
T, P, V = 8, 12, 2


def run() -> ExperimentResult:
    model = gpt3_175b()
    result = ExperimentResult(
        experiment_id="fig18",
        title="Scatter/gather optimization (GPT-175B, 96 GPUs, interleaved)",
        columns=("batch", "unoptimized", "optimized", "gain_pct"),
    )
    for B in BATCH_SIZES:
        par = ParallelConfig(
            pipeline_parallel_size=P, tensor_parallel_size=T,
            data_parallel_size=1, microbatch_size=1, global_batch_size=B,
            num_model_chunks=V,
        )
        un = simulate_iteration(
            model, par,
            options=SimOptions(schedule_name="interleaved", scatter_gather=False),
        ).tflops_per_gpu
        opt = simulate_iteration(
            model, par,
            options=SimOptions(schedule_name="interleaved", scatter_gather=True),
        ).tflops_per_gpu
        result.add(B, round(un, 1), round(opt, 1),
                   round(100 * (opt / un - 1), 1))
    result.notes = (
        "Shape target: consistent throughput gain for the "
        "communication-intensive interleaved schedule (paper: up to 11%)."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
