"""Figure 17: throughput with and without activation recomputation.

145B-parameter GPT (80 layers, hidden 12288, 96 heads), 128 GPUs,
(t, p) = (8, 16), microbatch 2, sweeping the batch size.  Without
recomputation the activation stash (up to min(p, m) in-flight
microbatches x 5 layers each) exhausts the 80 GB device beyond a batch
size; with recomputation memory stays flat and large batches amortize
the pipeline bubble to ~2x the best no-recompute throughput.
"""

from __future__ import annotations

from repro.config import ParallelConfig, fig17_model
from repro.hardware import a100_80gb
from repro.perf import fits_in_memory
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

BATCH_SIZES = (2, 4, 8, 16, 32, 64, 128)
T, P, B_MICRO = 8, 16, 2


def run() -> ExperimentResult:
    model = fig17_model()
    device = a100_80gb()
    result = ExperimentResult(
        experiment_id="fig17",
        title="Activation recomputation (145B model, (t,p)=(8,16))",
        columns=("batch", "recompute", "fits", "seq_per_s"),
    )
    for rc in (False, True):
        for B in BATCH_SIZES:
            par = ParallelConfig(
                pipeline_parallel_size=P, tensor_parallel_size=T,
                data_parallel_size=1, microbatch_size=B_MICRO,
                global_batch_size=B,
            )
            fits = fits_in_memory(model, par, device, recompute=rc)
            if fits:
                res = simulate_iteration(
                    model, par,
                    options=SimOptions(
                        schedule_name="1f1b", recompute_activations=rc
                    ),
                )
                seq_s = round(res.sequences_per_second, 2)
            else:
                seq_s = float("nan")
            result.add(B, rc, fits, seq_s)
    result.notes = (
        "Shape target: without recomputation, higher throughput at small "
        "batches (~33% in the paper) but OOM beyond a batch size; with "
        "recomputation, large batches reach up to ~2x the best "
        "no-recompute throughput."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
