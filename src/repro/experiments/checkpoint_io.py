"""§5.10: checkpoint loading and saving for the trillion-parameter model."""

from __future__ import annotations

from repro.config import ParallelConfig, gpt_1t
from repro.io_sim import checkpoint_size_bytes, load_time, save_time

from .report import ExperimentResult

NUM_NODES = 384


def run() -> ExperimentResult:
    model = gpt_1t()
    parallel = ParallelConfig(
        pipeline_parallel_size=64, tensor_parallel_size=8,
        data_parallel_size=6, microbatch_size=1, global_batch_size=3072,
    )
    size = checkpoint_size_bytes(model)
    lt = load_time(model, parallel, NUM_NODES)
    st = save_time(model, parallel, NUM_NODES)
    result = ExperimentResult(
        experiment_id="checkpoint_io",
        title="Checkpoint I/O for the 1T model (§5.10)",
        columns=("metric", "value", "paper"),
    )
    result.add("checkpoint size (TB)", round(size / 1e12, 1), 13.8)
    result.add("load bandwidth (GB/s)", round(lt.achieved_bandwidth / 1e9, 0), 1000)
    result.add("load time (s)", round(lt.duration_seconds, 0), float("nan"))
    result.add("save bandwidth (GB/s)", round(st.achieved_bandwidth / 1e9, 0), 273)
    result.add("save time (s)", round(st.duration_seconds, 0), float("nan"))
    result.notes = (
        "Shape target: ~14 TB checkpoint; load saturates the filesystem's "
        "1 TB/s read peak; saves reach 40% of peak write."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
