"""Figure 8: eq. (1) estimated throughput vs microbatch size.

Same 1B model as Figure 7, (p, t) = (8, 8), batch sizes 128 and 512:
time = (b'/b + p - 1)(t_f(b) + t_b(b)).  The optimum microbatch size
balances arithmetic intensity against pipeline-bubble growth.
"""

from __future__ import annotations

from repro.config import fig7_model
from repro.hardware import ComputeModel, a100_80gb
from repro.perf import sweep_microbatch_sizes

from .report import ExperimentResult

BATCH_SIZES = (128, 512)
P, T = 8, 8


def run() -> ExperimentResult:
    cfg = fig7_model()
    cm = ComputeModel(device=a100_80gb())
    result = ExperimentResult(
        experiment_id="fig08",
        title="Eq. (1) normalized throughput vs microbatch size, (p,t)=(8,8)",
        columns=("batch", "microbatch", "batch_time", "norm_throughput", "is_best"),
    )
    for B in BATCH_SIZES:
        points = sweep_microbatch_sizes(
            cm, cfg, p=P, t=T, b_prime=B, candidates=(1, 2, 4, 8, 16),
        )
        best = max(points, key=lambda p_: p_.throughput)
        peak = best.throughput
        for pt in points:
            result.add(
                B, pt.microbatch_size, round(pt.batch_time, 4),
                round(pt.throughput / peak, 3),
                "*" if pt is best else "",
            )
    result.notes = (
        "Shape target: interior optimum (paper: b = 4 for both batch "
        "sizes); throughput falls off on both sides."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
