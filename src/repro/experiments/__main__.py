"""Print every reproduced table and figure: python -m repro.experiments.

Pass --plot to additionally render ASCII charts of the figure shapes.
"""

import sys

from . import REGISTRY
from .fig03_fig04_schedules import render_all
from .plots import plot_experiment
from .report import print_result


def main(argv: list[str]) -> int:
    plot = "--plot" in argv
    wanted = [a for a in argv if a != "--plot"] or list(REGISTRY)
    for key in wanted:
        if key not in REGISTRY:
            print(f"unknown experiment {key!r}; choose from {sorted(REGISTRY)}")
            return 1
        result = REGISTRY[key]()
        print_result(result)
        if plot:
            chart = plot_experiment(result)
            if chart:
                print(chart)
                print()
        if key == "fig03_fig04":
            print(render_all())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
