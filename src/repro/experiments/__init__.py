"""Experiment harness: one module per table/figure in the paper's §3/§5.

``REGISTRY`` maps experiment ids to their ``run`` callables;
``run_all`` executes everything and returns the results in order.
Run ``python -m repro.experiments`` to print every table.
"""

from . import (
    bisection,
    interconnect,
    strong_scaling,
    what_if_h100,
    checkpoint_io,
    fig01_trend,
    fig03_fig04_schedules,
    fig06_bubble,
    fig07_microbatch_1gpu,
    fig08_microbatch_model,
    fig11_pipeline_scaling,
    fig12_interleaved,
    fig13_tensor_vs_pipeline,
    fig14_pipeline_vs_data,
    fig15_tensor_vs_data,
    fig16_microbatch,
    fig17_recompute,
    fig18_scatter_gather,
    fused_ops,
    goodput_interval,
    table1_weak_scaling,
    table2_zero3,
)
from .report import ExperimentResult

REGISTRY = {
    "fig01": fig01_trend.run,
    "fig03_fig04": fig03_fig04_schedules.run,
    "fig06": fig06_bubble.run,
    "fig07": fig07_microbatch_1gpu.run,
    "fig08": fig08_microbatch_model.run,
    "table1": table1_weak_scaling.run,
    "table2": table2_zero3.run,
    "fig11": fig11_pipeline_scaling.run,
    "fig12": fig12_interleaved.run,
    "fig13": fig13_tensor_vs_pipeline.run,
    "fig14": fig14_pipeline_vs_data.run,
    "fig15": fig15_tensor_vs_data.run,
    "fig16": fig16_microbatch.run,
    "fig17": fig17_recompute.run,
    "fig18": fig18_scatter_gather.run,
    "fused_ops": fused_ops.run,
    "bisection": bisection.run,
    "interconnect": interconnect.run,
    "strong_scaling": strong_scaling.run,
    "what_if_h100": what_if_h100.run,
    "checkpoint_io": checkpoint_io.run,
    "goodput_interval": goodput_interval.run,
}


def run_all() -> list[ExperimentResult]:
    return [fn() for fn in REGISTRY.values()]


__all__ = ["REGISTRY", "run_all", "ExperimentResult"]
