"""§5.9's counterfactual: slower inter-node interconnects hinder scaling.

The paper: "Using slower inter-node interconnects or more
communication-intensive partitionings would hinder scaling performance."
This experiment makes that claim quantitative: the trillion-parameter
configuration is re-simulated with the per-HCA InfiniBand bandwidth
swept from the Selene 25 GB/s (HDR 200 Gbps) down to 3.125 GB/s
(EDR-25-class), and with a cloud-style single-NIC node (one 12.5 GB/s
NIC shared by 8 GPUs).

A second sweep re-runs Figure 13's best configuration to show the
*partitioning* interacting with the interconnect: with slow links even
t = 8 / p = 8 degrades, and cross-node tensor parallelism becomes
catastrophic.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import ParallelConfig, gpt_1t
from repro.hardware import GB, dgx_a100
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

#: per-HCA bandwidths swept (GB/s); 25 = the paper's HDR InfiniBand.
IB_SWEEP = (25.0, 12.5, 6.25, 3.125)


def one_t_parallel() -> ParallelConfig:
    return ParallelConfig(
        pipeline_parallel_size=64, tensor_parallel_size=8,
        data_parallel_size=6, microbatch_size=1, global_batch_size=3072,
    )


def gpt3_parallel() -> ParallelConfig:
    """GPT-3 on 768 GPUs with d=8: data-parallel all-reduce over IB is a
    real fraction of the iteration, unlike the compute-dominated 1T run."""
    return ParallelConfig(
        pipeline_parallel_size=12, tensor_parallel_size=8,
        data_parallel_size=8, microbatch_size=1, global_batch_size=512,
    )


def run() -> ExperimentResult:
    from repro.config import gpt3_175b

    result = ExperimentResult(
        experiment_id="interconnect",
        title="Inter-node bandwidth sensitivity (§5.9's counterfactual)",
        columns=("workload", "node_variant", "ib_GBps_per_hca",
                 "tflops_gpu", "vs_selene"),
    )
    workloads = (
        ("1T/3072gpus", gpt_1t(), one_t_parallel()),
        ("175B/768gpus,B=512", gpt3_175b(), gpt3_parallel()),
    )
    for name, model, parallel in workloads:
        base = None
        for bw in IB_SWEEP:
            node = replace(dgx_a100(), ib_bandwidth_per_hca=bw * GB)
            res = simulate_iteration(
                model, parallel, options=SimOptions(), node=node
            )
            if base is None:
                base = res.tflops_per_gpu
            result.add(name, "8-HCA DGX", bw, round(res.tflops_per_gpu, 1),
                       round(res.tflops_per_gpu / base, 3))
        # Cloud-style node: one shared 100 Gbps NIC for all 8 GPUs.
        cloud = replace(
            dgx_a100(), ib_bandwidth_per_hca=12.5 * GB, num_ib_hcas=1
        )
        res = simulate_iteration(model, parallel, options=SimOptions(), node=cloud)
        result.add(name, "single-NIC cloud node", 12.5,
                   round(res.tflops_per_gpu, 1),
                   round(res.tflops_per_gpu / base, 3))
    result.notes = (
        "Shape target: throughput degrades monotonically as inter-node "
        "bandwidth shrinks, and sharing one NIC across 8 GPUs is far "
        "worse than the same bandwidth per-GPU; the paper's 52%-of-peak "
        "depends on the 8x-HDR-per-node fabric."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
