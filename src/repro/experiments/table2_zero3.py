"""Table 2 + Figure 10: PTD Parallelism vs. ZeRO-3 without model parallelism.

Reproduces both halves of Table 2 for the 175B GPT-3 and the 530B model:
ZeRO-3 at (n, b) = the paper's settings, PTD-P at the paper's
model-parallel sizes (t=8, p=12 -> M=96 for 175B; t=8, p=35 -> M=280 for
530B) with b=1, plus eq. (4) training times for 300B tokens.
"""

from __future__ import annotations

from repro.config import ParallelConfig, gpt3_175b, gpt_530b
from repro.perf import training_time_days
from repro.sim import SimOptions, simulate_iteration, simulate_zero3_iteration

from .report import ExperimentResult

#: (scheme, model name, batch, gpus, microbatch, paper tflops, paper days)
PAPER_ROWS = (
    ("zero3", "175B", 1536, 384, 4, 144, 90),
    ("zero3", "175B", 1536, 768, 2, 88, 74),
    ("zero3", "175B", 1536, 1536, 1, 44, 74),
    ("zero3", "530B", 2560, 640, 4, 138, 169),
    ("zero3", "530B", 2240, 1120, 2, 98, 137),
    ("zero3", "530B", 2240, 2240, 1, 48, 140),
    ("ptd", "175B", 1536, 384, 1, 153, 84),
    ("ptd", "175B", 1536, 768, 1, 149, 43),
    ("ptd", "175B", 1536, 1536, 1, 141, 23),
    ("ptd", "530B", 2240, 560, 1, 171, 156),
    ("ptd", "530B", 2240, 1120, 1, 167, 80),
    ("ptd", "530B", 2240, 2240, 1, 159, 42),
)

_MODELS = {"175B": gpt3_175b, "530B": gpt_530b}
_PTD_SHAPE = {"175B": (8, 12), "530B": (8, 35)}  # (t, p)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="PTD Parallelism vs ZeRO-3 (Table 2 / Figure 10)",
        columns=(
            "scheme", "model", "batch", "gpus", "b",
            "tflops_gpu", "paper_tflops", "days_300B", "paper_days",
        ),
    )
    for scheme, name, batch, gpus, b, paper_tf, paper_days in PAPER_ROWS:
        model = _MODELS[name]()
        if scheme == "zero3":
            res = simulate_zero3_iteration(model, gpus, batch, b)
            tflops = res.tflops_per_gpu
        else:
            t, p = _PTD_SHAPE[name]
            d = gpus // (t * p)
            par = ParallelConfig(
                pipeline_parallel_size=p,
                tensor_parallel_size=t,
                data_parallel_size=d,
                microbatch_size=b,
                global_batch_size=batch,
            )
            res = simulate_iteration(
                model, par, options=SimOptions(schedule_name="1f1b")
            )
            tflops = res.tflops_per_gpu
        days = training_time_days(
            model.num_parameters(), 300e9, gpus, tflops * 1e12
        )
        result.add(
            scheme, name, batch, gpus, b,
            round(tflops, 1), paper_tf, round(days, 1), paper_days,
        )
    result.notes = (
        "Shape target: PTD-P >= ZeRO-3 at the smallest GPU count; PTD-P "
        "scales near-linearly while ZeRO-3 collapses when GPUs double at "
        "fixed batch (the paper's ~70% gap)."
    )
    return result


def ptd_advantage_at_doubled_gpus(result: ExperimentResult) -> float:
    """PTD-P throughput advantage over ZeRO-3 at 768 GPUs (175B)."""
    rows = {(r[0], r[3]): r[5] for r in result.rows if r[1] == "175B"}
    return rows[("ptd", 768)] / rows[("zero3", 768)] - 1.0


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())


if __name__ == "__main__":  # pragma: no cover
    main()
