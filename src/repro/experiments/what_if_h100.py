"""What-if extension: the paper's Table 1 on an H100-generation cluster.

The discussion section notes the ideas are accelerator-agnostic.  This
experiment re-runs the Table-1 weak-scaling configurations on a
DGX-H100-like node (989 Tflop/s fp16/bf16 dense peak, 3.35 TB/s HBM3,
NVLink4 at 450 GB/s/dir, 8x NDR 400 Gbps InfiniBand) and reports how the
utilization story changes: peak FLOP/s grew ~3.2x but HBM and network
bandwidth grew less, so the achieved *fraction* of peak drops even
though absolute Tflop/s rise -- the standard roofline consequence.
"""

from __future__ import annotations

from repro.config import TABLE1_ROWS
from repro.hardware import GB, TB, TFLOP, DeviceSpec, NodeSpec
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult


def h100_80gb() -> DeviceSpec:
    return DeviceSpec(
        name="H100-80GB",
        peak_flops=989 * TFLOP,
        memory_bandwidth=3.35 * TB,
        memory_capacity=80e9,
    )


def dgx_h100() -> NodeSpec:
    return NodeSpec(
        device=h100_80gb(),
        gpus_per_node=8,
        nvlink_bandwidth=450 * GB,
        ib_bandwidth_per_hca=50 * GB,  # NDR 400 Gbps
        num_ib_hcas=8,
    )


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="what_if_h100",
        title="Table 1 re-simulated on a DGX-H100 cluster (extension)",
        columns=("params_B", "gpus", "a100_tflops", "h100_tflops",
                 "speedup", "a100_frac", "h100_frac"),
    )
    node = dgx_h100()
    for row in TABLE1_ROWS[::3] + (TABLE1_ROWS[-1],):
        a100 = simulate_iteration(row.model, row.parallel,
                                  options=SimOptions())
        h100 = simulate_iteration(row.model, row.parallel,
                                  options=SimOptions(), node=node)
        result.add(
            row.reported_params_billion,
            row.parallel.world_size,
            round(a100.tflops_per_gpu, 1),
            round(h100.tflops_per_gpu, 1),
            round(h100.tflops_per_gpu / a100.tflops_per_gpu, 2),
            round(a100.peak_fraction, 3),
            round(h100.peak_fraction, 3),
        )
    result.notes = (
        "Shape target: large absolute speedups, lower fraction of peak "
        "(compute grew faster than memory/network bandwidth)."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
