"""Terminal plots for the reproduced figures.

Dependency-free ASCII charts so `python -m repro.experiments --plot`
can show the figures' *shapes* (the reproduction target) directly in the
terminal: multi-series line charts for throughput-vs-x figures and bar
charts for categorical comparisons.
"""

from __future__ import annotations

from typing import Mapping, Sequence

BLOCKS = " ▁▂▃▄▅▆▇█"
MARKERS = "ox+*#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart; bars scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values):
        raise ValueError("bar_chart requires non-negative values")
    peak = max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = int(round(value / peak * width))
        lines.append(f"{str(label):>{label_w}} | {'█' * n} {value:g}")
    return "\n".join(lines)


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a marker from :data:`MARKERS`; x positions are
    mapped by value (so uneven batch-size grids render to scale).
    """
    if not series:
        raise ValueError("no series to plot")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    if len(x) < 2:
        raise ValueError("need at least two x points")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        raise ValueError("x values are all equal")

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = MARKERS[si % len(MARKERS)]
        for xv, yv in zip(x, ys):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_min:<10g}" + " " * max(0, width - 20) + f"{x_max:>10g}"
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + (f"   [y: {y_label}]" if y_label else ""))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character sparkline."""
    if not values:
        raise ValueError("nothing to plot")
    lo, hi = min(values), max(values)
    if hi == lo:
        return BLOCKS[4] * len(values)
    out = []
    for v in values:
        idx = int(round((v - lo) / (hi - lo) * (len(BLOCKS) - 2))) + 1
        out.append(BLOCKS[idx])
    return "".join(out)


def plot_experiment(result) -> str:
    """Best-effort chart for an ExperimentResult.

    Figures whose rows are (group, x, ..., value) render as a line chart
    grouped by the first column; two-column results render as bars.
    Returns "" when no sensible chart exists.
    """
    rows = result.rows
    if not rows:
        return ""
    numeric_cols = [
        i for i in range(len(result.columns))
        if all(isinstance(r[i], (int, float)) and not isinstance(r[i], bool)
               for r in rows)
    ]
    if len(numeric_cols) < 2:
        return ""
    x_col, y_col = numeric_cols[0], numeric_cols[-1]
    group_col = 0 if x_col != 0 else None
    series: dict[str, tuple[list[float], list[float]]] = {}
    for r in rows:
        key = str(r[group_col]) if group_col is not None else "series"
        xs, ys = series.setdefault(key, ([], []))
        if not isinstance(r[y_col], (int, float)) or r[y_col] != r[y_col]:
            continue  # skip NaNs (e.g. OOM cells)
        xs.append(float(r[x_col]))
        ys.append(float(r[y_col]))
    # Align series on the union grid only if identical; otherwise plot
    # the first complete series set.
    lengths = {len(xs) for xs, _ in series.values()}
    if len(lengths) != 1 or min(lengths) < 2:
        return ""
    x0 = next(iter(series.values()))[0]
    if any(xs != x0 for xs, _ in series.values()):
        return ""
    return line_chart(
        x0,
        {k: ys for k, (xs, ys) in series.items()},
        title=f"{result.experiment_id}: {result.title}",
        y_label=result.columns[y_col],
    )
