"""Figure 12: interleaved vs non-interleaved schedule, GPT-3 on 96 GPUs.

(t, p) = (8, 12), v = 2 model chunks for the interleaved schedule, with
the scatter/gather optimization enabled; batch sizes 12..60.
"""

from __future__ import annotations

from repro.config import ParallelConfig, gpt3_175b
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

BATCH_SIZES = (12, 24, 36, 48, 60)
T, P, V = 8, 12, 2


def run() -> ExperimentResult:
    model = gpt3_175b()
    result = ExperimentResult(
        experiment_id="fig12",
        title="Interleaved vs non-interleaved 1F1B (GPT-175B, 96 GPUs)",
        columns=("batch", "noninterleaved", "interleaved", "gain_pct"),
    )
    for B in BATCH_SIZES:
        base = simulate_iteration(
            model,
            ParallelConfig(
                pipeline_parallel_size=P, tensor_parallel_size=T,
                data_parallel_size=1, microbatch_size=1, global_batch_size=B,
            ),
            options=SimOptions(schedule_name="1f1b"),
        ).tflops_per_gpu
        inter = simulate_iteration(
            model,
            ParallelConfig(
                pipeline_parallel_size=P, tensor_parallel_size=T,
                data_parallel_size=1, microbatch_size=1, global_batch_size=B,
                num_model_chunks=V,
            ),
            options=SimOptions(schedule_name="interleaved", scatter_gather=True),
        ).tflops_per_gpu
        result.add(B, round(base, 1), round(inter, 1),
                   round(100 * (inter / base - 1), 1))
    result.notes = (
        "Shape target: interleaved wins (10+% at small batch); the gap "
        "closes as the batch grows."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
