"""Figure 6: pipeline bubble size vs data-parallel size.

Evaluates (n - d)/b' for the figure's grid: n in {32, 128}, b' = B/b in
{32, 128, 512}, d over powers of two dividing both.
"""

from __future__ import annotations

from repro.schedule import bubble_fraction_vs_data_parallel

from .report import ExperimentResult

GRID_N = (32, 128)
GRID_BPRIME = (32, 128, 512)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig06",
        title="Bubble fraction (n-d)/b' vs data-parallel size",
        columns=("n", "b_prime", "d", "bubble_fraction"),
    )
    for n in GRID_N:
        for bp in GRID_BPRIME:
            d = 1
            while d <= n:
                if bp % d == 0:
                    result.add(n, bp, d, round(
                        bubble_fraction_vs_data_parallel(n, d, bp), 4))
                d *= 2
    result.notes = (
        "Bubble decreases monotonically in d and reaches 0 at d = n; "
        "larger n raises the whole curve, larger b' lowers it."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
