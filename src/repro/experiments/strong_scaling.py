"""Strong-scaling extension: fixed model + batch, growing GPU count.

The paper reports weak scaling (Table 1) and the fixed-batch GPU sweep
inside Table 2.  This extension completes the picture: GPT-3 (175B) at
its production batch size (1536) from 1 pipeline's worth of GPUs (96)
up to 1536 GPUs, reporting per-GPU throughput, aggregate throughput,
and strong-scaling efficiency (aggregate speedup / GPU-count ratio).

PTD-P's story: data parallelism carries strong scaling almost linearly
until the per-replica microbatch count m = B/(d b) shrinks enough for
the pipeline bubble (p-1)/m to bite -- the same (n-d)/b' tradeoff as
Figure 14, now at production scale.
"""

from __future__ import annotations

from repro.config import ParallelConfig, gpt3_175b
from repro.sim import SimOptions, simulate_iteration

from .report import ExperimentResult

GPU_COUNTS = (96, 192, 384, 768, 1536)
T, P, B = 8, 12, 1536


def run() -> ExperimentResult:
    model = gpt3_175b()
    result = ExperimentResult(
        experiment_id="strong_scaling",
        title="Strong scaling: GPT-175B, batch 1536 (extension)",
        columns=("gpus", "d", "m_per_replica", "tflops_gpu",
                 "aggregate_pflops", "efficiency"),
    )
    base = None
    for n in GPU_COUNTS:
        d = n // (T * P)
        par = ParallelConfig(
            pipeline_parallel_size=P, tensor_parallel_size=T,
            data_parallel_size=d, microbatch_size=1, global_batch_size=B,
        )
        res = simulate_iteration(model, par, options=SimOptions())
        if base is None:
            base = (n, res.aggregate_pflops)
        eff = (res.aggregate_pflops / base[1]) / (n / base[0])
        result.add(n, d, par.num_microbatches, round(res.tflops_per_gpu, 1),
                   round(res.aggregate_pflops, 1), round(eff, 3))
    result.notes = (
        "Shape target: near-linear aggregate scaling (efficiency > 0.85 "
        "through 16x more GPUs); per-GPU throughput decays gently as the "
        "bubble grows with shrinking m."
    )
    return result


def main() -> None:  # pragma: no cover
    from .report import print_result

    print_result(run())
