"""Model and parallelization configuration (paper §3.1 notation)."""

from .model_config import GPTConfig
from .parallel_config import ParallelConfig
from .presets import (
    TABLE1_ROWS,
    Table1Row,
    fig7_model,
    fig11_model,
    fig13_model,
    fig14_model,
    fig16_model,
    fig17_model,
    gpt3_175b,
    gpt_530b,
    gpt_1t,
    tiny_test_model,
)

__all__ = [
    "GPTConfig",
    "ParallelConfig",
    "TABLE1_ROWS",
    "Table1Row",
    "fig7_model",
    "fig11_model",
    "fig13_model",
    "fig14_model",
    "fig16_model",
    "fig17_model",
    "gpt3_175b",
    "gpt_530b",
    "gpt_1t",
    "tiny_test_model",
]
