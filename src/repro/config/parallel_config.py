"""Parallelization configuration: the (p, t, d) triple of §3.1.

Notation follows the paper exactly:

- ``p``: pipeline-model-parallel size
- ``t``: tensor-model-parallel size
- ``d``: data-parallel size
- ``n = p * t * d``: total number of GPUs
- ``B``: global batch size
- ``b``: microbatch size
- ``m = B / (d * b)``: microbatches per pipeline
- ``v``: number of interleaved model chunks per device (v=1 means the
  non-interleaved schedule)
"""

from __future__ import annotations

from dataclasses import dataclass

from .model_config import GPTConfig


@dataclass(frozen=True)
class ParallelConfig:
    """A complete PTD-P parallelization of a training job.

    Raises ``ValueError`` for any combination the paper's system would
    reject: non-divisible batch, microbatch count not a multiple of p for
    the interleaved schedule (§2.2.2), etc.
    """

    pipeline_parallel_size: int = 1
    tensor_parallel_size: int = 1
    data_parallel_size: int = 1
    microbatch_size: int = 1
    global_batch_size: int = 1
    num_model_chunks: int = 1  # v; >1 selects the interleaved schedule

    def __post_init__(self) -> None:
        p, t, d = (
            self.pipeline_parallel_size,
            self.tensor_parallel_size,
            self.data_parallel_size,
        )
        for nm, val in (("pipeline", p), ("tensor", t), ("data", d)):
            if val < 1:
                raise ValueError(f"{nm}-parallel size must be >= 1, got {val}")
        if self.microbatch_size < 1:
            raise ValueError(f"microbatch_size must be >= 1, got {self.microbatch_size}")
        if self.global_batch_size < 1:
            raise ValueError(
                f"global_batch_size must be >= 1, got {self.global_batch_size}"
            )
        if self.num_model_chunks < 1:
            raise ValueError(
                f"num_model_chunks must be >= 1, got {self.num_model_chunks}"
            )
        per_replica = self.microbatch_size * d
        if self.global_batch_size % per_replica != 0:
            raise ValueError(
                f"global batch size {self.global_batch_size} must be divisible by "
                f"microbatch_size * data_parallel_size = {per_replica}"
            )
        if self.num_model_chunks > 1:
            if p < 2:
                raise ValueError(
                    "interleaved schedule (num_model_chunks > 1) requires "
                    f"pipeline_parallel_size >= 2, got {p}"
                )
            if self.num_microbatches % p != 0:
                raise ValueError(
                    "interleaved schedule requires the number of microbatches "
                    f"({self.num_microbatches}) to be a multiple of the pipeline-"
                    f"parallel size ({p}) -- see paper §2.2.2"
                )

    # -- aliases matching the paper's notation ---------------------------
    @property
    def p(self) -> int:
        return self.pipeline_parallel_size

    @property
    def t(self) -> int:
        return self.tensor_parallel_size

    @property
    def d(self) -> int:
        return self.data_parallel_size

    @property
    def b(self) -> int:
        return self.microbatch_size

    @property
    def B(self) -> int:
        return self.global_batch_size

    @property
    def v(self) -> int:
        return self.num_model_chunks

    @property
    def world_size(self) -> int:
        """Total number of GPUs ``n = p * t * d``."""
        return self.p * self.t * self.d

    @property
    def model_parallel_size(self) -> int:
        """``M = t * p`` (Takeaway #2)."""
        return self.t * self.p

    @property
    def num_microbatches(self) -> int:
        """``m = B / (d * b)`` -- microbatches per pipeline per iteration."""
        return self.global_batch_size // (self.data_parallel_size * self.microbatch_size)

    def validate_for_model(self, model: GPTConfig) -> None:
        """Check this configuration can partition ``model``.

        The paper assigns an equal number of transformer layers to each
        pipeline stage (and each model chunk for the interleaved
        schedule), and splits attention heads and MLP columns ``t`` ways.
        """
        stages = self.p * self.v
        if model.num_layers % stages != 0:
            raise ValueError(
                f"model with {model.num_layers} layers cannot be split into "
                f"p*v = {stages} equal pipeline stages"
            )
        if model.num_attention_heads % self.t != 0:
            raise ValueError(
                f"{model.num_attention_heads} attention heads not divisible by "
                f"tensor-parallel size {self.t}"
            )
        if model.ffn_hidden_size % self.t != 0:
            raise ValueError(
                f"ffn_hidden_size {model.ffn_hidden_size} not divisible by "
                f"tensor-parallel size {self.t}"
            )
        if model.vocab_size % self.t != 0:
            raise ValueError(
                f"vocab_size {model.vocab_size} not divisible by "
                f"tensor-parallel size {self.t}"
            )

    def layers_per_stage(self, model: GPTConfig) -> int:
        """Transformer layers per (stage, chunk): ``l / (p * v)``."""
        self.validate_for_model(model)
        return model.num_layers // (self.p * self.v)

    def describe(self) -> str:
        return (
            f"(p={self.p}, t={self.t}, d={self.d}), n={self.world_size}, "
            f"B={self.B}, b={self.b}, m={self.num_microbatches}, v={self.v}"
        )
