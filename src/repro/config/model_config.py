"""GPT model configuration and the paper's closed-form size formulas.

The paper (§5.1) parameterizes GPT models by number of layers ``l``,
hidden size ``h``, attention heads ``a``, vocabulary size ``V`` and
sequence length ``s``, and gives the parameter count

    P = 12 l h^2 (1 + 13/(12h) + (V + s)/(12 l h))        (eq. 2)

and the per-iteration FLOP count (with activation recomputation)

    F = 96 B s l h^2 (1 + s/(6h) + V/(16 l h))            (eq. 3)

Both are implemented here so every experiment shares one definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class GPTConfig:
    """Architecture of a GPT-style decoder-only transformer.

    Attributes
    ----------
    num_layers:
        Number of transformer layers (``l`` in the paper).
    hidden_size:
        Model hidden dimension (``h``).
    num_attention_heads:
        Number of attention heads (``a``); must divide ``hidden_size``.
    vocab_size:
        Vocabulary size (``V``). The paper uses 51,200 (multiple of 1024)
        for all evaluation models.
    seq_length:
        Training sequence length (``s``). The paper uses 2048.
    ffn_hidden_size:
        MLP intermediate size; the paper's models use ``4 h``.
    name:
        Optional human-readable label (e.g. ``"GPT-175B"``).
    """

    num_layers: int
    hidden_size: int
    num_attention_heads: int
    vocab_size: int = 51200
    seq_length: int = 2048
    ffn_hidden_size: int | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.hidden_size < 1:
            raise ValueError(f"hidden_size must be >= 1, got {self.hidden_size}")
        if self.num_attention_heads < 1:
            raise ValueError(
                f"num_attention_heads must be >= 1, got {self.num_attention_heads}"
            )
        if self.hidden_size % self.num_attention_heads != 0:
            raise ValueError(
                "hidden_size must be divisible by num_attention_heads "
                f"({self.hidden_size} % {self.num_attention_heads} != 0)"
            )
        if self.vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {self.vocab_size}")
        if self.seq_length < 1:
            raise ValueError(f"seq_length must be >= 1, got {self.seq_length}")
        if self.ffn_hidden_size is None:
            object.__setattr__(self, "ffn_hidden_size", 4 * self.hidden_size)

    @property
    def head_dim(self) -> int:
        """Per-head dimension ``h / a``."""
        return self.hidden_size // self.num_attention_heads

    @property
    def kv_channels(self) -> int:
        return self.head_dim

    def num_parameters(self) -> int:
        """Parameter count from eq. (2) of the paper.

        This is the formula the paper uses for Table 1's "Number of
        parameters" column (it counts transformer weights + biases, the
        token/position embeddings and the tied output layer).
        """
        l, h = self.num_layers, self.hidden_size
        V, s = self.vocab_size, self.seq_length
        return round(12 * l * h * h * (1 + 13 / (12 * h) + (V + s) / (12 * l * h)))

    def num_parameters_exact(self) -> int:
        """Exact parameter count by summing each weight/bias tensor.

        Counts, per layer: QKV projection (h x 3h + 3h), attention output
        (h x h + h), MLP up (h x 4h + 4h), MLP down (4h x h + h), and two
        LayerNorms (2h each); plus final LayerNorm, token embedding
        (V x h, tied with the output logits) and position embedding
        (s x h).  For ffn = 4h this equals eq. (2) plus the final
        LayerNorm's 2h parameters, which the paper's formula omits.
        """
        h = self.hidden_size
        f = self.ffn_hidden_size
        per_layer = (
            (h * 3 * h + 3 * h)  # QKV
            + (h * h + h)  # attention output projection
            + (h * f + f)  # MLP h -> f
            + (f * h + h)  # MLP f -> h
            + 4 * h  # two LayerNorms (scale + bias each)
        )
        embeddings = self.vocab_size * h + self.seq_length * h
        final_ln = 2 * h
        return self.num_layers * per_layer + embeddings + final_ln

    def flops_per_iteration(self, batch_size: int, *, with_recompute: bool = True) -> int:
        """Model FLOPs per training iteration, eq. (3) of the paper.

        With activation recomputation (the paper's default for large
        models) each transformer layer costs 4x its forward FLOPs
        (1 fwd + 2 bwd + 1 recompute fwd); without recomputation, 3x.
        The logit layer contributes ``6 B s h V`` either way (its inputs
        are not recomputed).
        """
        B, s = batch_size, self.seq_length
        l, h, V = self.num_layers, self.hidden_size, self.vocab_size
        fwd_all_layers = l * (24 * B * s * h * h + 4 * B * s * s * h)
        factor = 4 if with_recompute else 3
        logit = 6 * B * s * h * V
        return factor * fwd_all_layers + logit

    def flops_per_iteration_formula(self, batch_size: int) -> int:
        """Literal eq. (3): ``96 B s l h^2 (1 + s/(6h) + V/(16 l h))``.

        Identical to :meth:`flops_per_iteration` with recomputation;
        retained separately so tests can check the algebra.
        """
        B, s = batch_size, self.seq_length
        l, h, V = self.num_layers, self.hidden_size, self.vocab_size
        return round(96 * B * s * l * h * h * (1 + s / (6 * h) + V / (16 * l * h)))

    def scaled(self, **changes) -> "GPTConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "GPT"
        billions = self.num_parameters() / 1e9
        return (
            f"{label}(l={self.num_layers}, h={self.hidden_size}, "
            f"a={self.num_attention_heads}, P={billions:.1f}B)"
        )
