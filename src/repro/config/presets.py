"""Model and parallel-configuration presets from the paper's evaluation.

``TABLE1_ROWS`` is the paper's Table 1 verbatim: the ten weak-scaling
configurations from 1.7B to 1008B parameters, with the parallel degrees,
GPU counts and batch sizes the authors used, plus their reported
throughput (for EXPERIMENTS.md comparisons).

The section-5.3--5.7 microbenchmark models are provided as named
constructors so every benchmark uses identical architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model_config import GPTConfig
from .parallel_config import ParallelConfig


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    model: GPTConfig
    parallel: ParallelConfig
    reported_params_billion: float
    reported_tflops_per_gpu: float
    reported_peak_fraction: float
    reported_aggregate_pflops: float

    @property
    def num_gpus(self) -> int:
        return self.parallel.world_size


def _row(
    params_b: float,
    heads: int,
    hidden: int,
    layers: int,
    t: int,
    p: int,
    n: int,
    batch: int,
    tflops: float,
    frac: float,
    agg: float,
) -> Table1Row:
    d = n // (t * p)
    model = GPTConfig(
        num_layers=layers,
        hidden_size=hidden,
        num_attention_heads=heads,
        name=f"GPT-{params_b:g}B",
    )
    # Table 1 runs use the interleaved schedule when p > 1 (§5.1); the
    # microbatch sizes are not listed per-row, so we use b chosen such
    # that m is a multiple of p (b=1 keeps every row valid).
    parallel = ParallelConfig(
        pipeline_parallel_size=p,
        tensor_parallel_size=t,
        data_parallel_size=d,
        microbatch_size=1,
        global_batch_size=batch,
        num_model_chunks=1,
    )
    return Table1Row(
        model=model,
        parallel=parallel,
        reported_params_billion=params_b,
        reported_tflops_per_gpu=tflops,
        reported_peak_fraction=frac,
        reported_aggregate_pflops=agg,
    )


#: The ten rows of Table 1: (params, heads, hidden, layers, t, p, GPUs,
#: batch size, achieved Tflop/s per GPU, % of peak, aggregate Pflop/s).
TABLE1_ROWS: tuple[Table1Row, ...] = (
    _row(1.7, 24, 2304, 24, 1, 1, 32, 512, 137, 0.44, 4.4),
    _row(3.6, 32, 3072, 30, 2, 1, 64, 512, 138, 0.44, 8.8),
    _row(7.5, 32, 4096, 36, 4, 1, 128, 512, 142, 0.46, 18.2),
    _row(18.4, 48, 6144, 40, 8, 1, 256, 1024, 135, 0.43, 34.6),
    _row(39.1, 64, 8192, 48, 8, 2, 512, 1536, 138, 0.44, 70.8),
    _row(76.1, 80, 10240, 60, 8, 4, 1024, 1792, 140, 0.45, 143.8),
    _row(145.6, 96, 12288, 80, 8, 8, 1536, 2304, 148, 0.47, 227.1),
    _row(310.1, 128, 16384, 96, 8, 16, 1920, 2160, 155, 0.50, 297.4),
    _row(529.6, 128, 20480, 105, 8, 35, 2520, 2520, 163, 0.52, 410.2),
    _row(1008.0, 160, 25600, 128, 8, 64, 3072, 3072, 163, 0.52, 502.0),
)


def gpt3_175b() -> GPTConfig:
    """The standard GPT-3 architecture (96 layers, h=12288, 96 heads)."""
    return GPTConfig(
        num_layers=96,
        hidden_size=12288,
        num_attention_heads=96,
        name="GPT-3-175B",
    )


def gpt_530b() -> GPTConfig:
    """The 530B model from Table 1 (105 layers, h=20480, 128 heads)."""
    return GPTConfig(
        num_layers=105,
        hidden_size=20480,
        num_attention_heads=128,
        name="GPT-530B",
    )


def gpt_1t() -> GPTConfig:
    """The trillion-parameter model (128 layers, h=25600, 160 heads)."""
    return GPTConfig(
        num_layers=128,
        hidden_size=25600,
        num_attention_heads=160,
        name="GPT-1T",
    )


def fig7_model() -> GPTConfig:
    """Figure 7/8 model: ~1B params, 128 heads, h=4096, 4 layers."""
    return GPTConfig(
        num_layers=4,
        hidden_size=4096,
        num_attention_heads=128,
        name="GPT-Fig7-1B",
    )


def fig11_model(pipeline_parallel_size: int) -> GPTConfig:
    """Figure 11 weak-scaling model: h=20480, 128 heads, 3 layers per
    pipeline stage (p=1 -> 3 layers / 15B params, p=8 -> 24 layers /
    121B params)."""
    return GPTConfig(
        num_layers=3 * pipeline_parallel_size,
        hidden_size=20480,
        num_attention_heads=128,
        name=f"GPT-Fig11-p{pipeline_parallel_size}",
    )


def fig13_model() -> GPTConfig:
    """Figure 13 model: 162B params (32 layers, h=20480, 128 heads)."""
    return GPTConfig(
        num_layers=32,
        hidden_size=20480,
        num_attention_heads=128,
        name="GPT-Fig13-162B",
    )


def fig14_model() -> GPTConfig:
    """Figure 14/15 model: 5.9B params (32 layers, h=3840, 32 heads)."""
    return GPTConfig(
        num_layers=32,
        hidden_size=3840,
        num_attention_heads=32,
        name="GPT-Fig14-5.9B",
    )


def fig16_model() -> GPTConfig:
    """Figure 16 model: 91B params ((t,p)=(8,8); 72 layers, h=10240)."""
    # The paper does not list l/h for the 91B model; 72 layers with
    # h=10240 and 80 heads gives 91.2B by eq. (2) and divides evenly
    # into 8 pipeline stages.
    return GPTConfig(
        num_layers=72,
        hidden_size=10240,
        num_attention_heads=80,
        name="GPT-Fig16-91B",
    )


def fig17_model() -> GPTConfig:
    """Figure 17 model: 145B params (80 layers, h=12288, 96 heads)."""
    return GPTConfig(
        num_layers=80,
        hidden_size=12288,
        num_attention_heads=96,
        name="GPT-Fig17-145B",
    )


def tiny_test_model(
    num_layers: int = 2,
    hidden_size: int = 16,
    num_attention_heads: int = 4,
    vocab_size: int = 64,
    seq_length: int = 8,
) -> GPTConfig:
    """A miniature GPT for unit/integration tests of the numerics."""
    return GPTConfig(
        num_layers=num_layers,
        hidden_size=hidden_size,
        num_attention_heads=num_attention_heads,
        vocab_size=vocab_size,
        seq_length=seq_length,
        name="GPT-tiny",
    )
