"""repro -- reproduction of "Efficient Large-Scale Language Model Training
on GPU Clusters Using Megatron-LM" (Narayanan et al., SC '21).

The package has two halves:

1. **Exact numerics** (`repro.nn`, `repro.parallel`, `repro.comm`): a
   numpy transformer with hand-written backward passes, plus tensor /
   pipeline / data parallelism and a ZeRO-3 baseline implemented over
   virtual ranks with real ring collectives.  Training under any
   (p, t, d, v) is bit-identical to serial training -- the paper's
   "strict optimizer semantics".

2. **Performance simulation** (`repro.hardware`, `repro.sim`,
   `repro.perf`, `repro.io_sim`): a roofline kernel model of A100 GPUs,
   a fat-tree Selene-like cluster, and a discrete-event simulator that
   regenerates every table and figure of the paper's evaluation
   (`repro.experiments`, `python -m repro.experiments`).

Quickstart::

    from repro import GPTConfig, ParallelConfig, PTDTrainer

    model = GPTConfig(num_layers=4, hidden_size=64,
                      num_attention_heads=4, vocab_size=512, seq_length=32)
    parallel = ParallelConfig(pipeline_parallel_size=2,
                              tensor_parallel_size=2,
                              data_parallel_size=2,
                              microbatch_size=1, global_batch_size=8)
    trainer = PTDTrainer(model, parallel)
    loss = trainer.train_step(ids, targets)
"""

from .config import GPTConfig, ParallelConfig
from .parallel import PTDTrainer
from .schedule import (
    gpipe_schedule,
    interleaved_schedule,
    make_schedule,
    one_f_one_b_schedule,
)
from .sim import SimOptions, simulate_iteration, simulate_zero3_iteration

__version__ = "1.0.0"

__all__ = [
    "GPTConfig",
    "ParallelConfig",
    "PTDTrainer",
    "make_schedule",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "interleaved_schedule",
    "SimOptions",
    "simulate_iteration",
    "simulate_zero3_iteration",
    "__version__",
]
