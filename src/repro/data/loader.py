"""Deterministic sharded batch loading for data-parallel training.

With data parallelism the input dataset is sharded so every replica
sees disjoint samples, but all replicas must agree on the global sample
order for strict synchronous semantics (§2.1).  The loader draws a
deterministic shuffled order per epoch from a seeded RNG shared by all
ranks, then hands each data-parallel rank its contiguous slice of every
global batch -- exactly the contract ``repro.parallel.trainer`` assumes
(``scatter_batch`` splits along axis 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .dataset import TokenDataset


@dataclass
class ShardedBatchLoader:
    """Yields (ids, targets) global batches in a deterministic order.

    Attributes
    ----------
    dataset:
        The token dataset.
    global_batch_size:
        Sequences per global batch (the paper's ``B``).
    seed:
        Shuffle seed; identical across all ranks.
    drop_last:
        Drop the trailing partial batch of each epoch (always true for
        fixed-shape training -- kept explicit for clarity).
    """

    dataset: TokenDataset
    global_batch_size: int
    seed: int = 0
    drop_last: bool = True
    _epoch: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.global_batch_size < 1:
            raise ValueError("global_batch_size must be >= 1")
        if len(self.dataset) < self.global_batch_size:
            raise ValueError(
                f"dataset with {len(self.dataset)} samples cannot fill a "
                f"global batch of {self.global_batch_size}"
            )

    @property
    def batches_per_epoch(self) -> int:
        return len(self.dataset) // self.global_batch_size

    def epoch_order(self, epoch: int) -> np.ndarray:
        """The global sample permutation for ``epoch`` (same on all ranks)."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, epoch]))
        return rng.permutation(len(self.dataset))

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = self.epoch_order(self._epoch)
        B = self.global_batch_size
        for i in range(self.batches_per_epoch):
            yield self.dataset.batch(order[i * B : (i + 1) * B])
        self._epoch += 1

    def rank_slice(
        self, batch: tuple[np.ndarray, np.ndarray], dp_rank: int, dp_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The slice of a global batch belonging to one data-parallel rank."""
        ids, targets = batch
        if ids.shape[0] % dp_size != 0:
            raise ValueError(
                f"global batch {ids.shape[0]} not divisible by dp size {dp_size}"
            )
        if not 0 <= dp_rank < dp_size:
            raise ValueError(f"dp_rank {dp_rank} out of range [0, {dp_size})")
        per = ids.shape[0] // dp_size
        sl = slice(dp_rank * per, (dp_rank + 1) * per)
        return ids[sl], targets[sl]
