"""Token datasets for language-model training.

The paper's throughput experiments train GPT on tokenized text with
sequence length 2048; end-to-end throughput "includes all operations
including data loading" (§5.1).  Since the corpus content never affects
throughput (and the real 300B-token corpus is proprietary), this module
provides:

- :class:`TokenDataset`: a flat token stream (in memory or memory-mapped
  from disk) sliced into fixed-length training sequences with
  next-token-prediction targets -- the standard GPT data layout where
  sample i is ``tokens[i*s : i*s + s + 1]``;
- :func:`synthetic_corpus`: a deterministic synthetic stream with a
  Zipfian unigram distribution and short-range repetition structure, so
  models trained on it have a learnable signal (losses drop -- used by
  the convergence tests and examples).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np


def synthetic_corpus(
    num_tokens: int,
    vocab_size: int,
    *,
    seed: int = 0,
    zipf_exponent: float = 1.1,
    repeat_prob: float = 0.3,
) -> np.ndarray:
    """A deterministic synthetic token stream.

    Unigram frequencies follow a Zipf law (like natural text); with
    probability ``repeat_prob`` a token copies the token 2 positions
    back, giving the stream learnable local structure.
    """
    if num_tokens < 1:
        raise ValueError("num_tokens must be >= 1")
    if vocab_size < 2:
        raise ValueError("vocab_size must be >= 2")
    if not 0 <= repeat_prob < 1:
        raise ValueError("repeat_prob must be in [0, 1)")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks**-zipf_exponent
    probs /= probs.sum()
    tokens = rng.choice(vocab_size, size=num_tokens, p=probs).astype(np.int32)
    repeat = rng.random(num_tokens) < repeat_prob
    repeat[:2] = False
    idx = np.nonzero(repeat)[0]
    tokens[idx] = tokens[idx - 2]
    return tokens


@dataclass
class TokenDataset:
    """A flat token stream sliced into training sequences.

    Sample ``i`` is ``(tokens[i*s : i*s+s], tokens[i*s+1 : i*s+s+1])``
    -- inputs and next-token targets.
    """

    tokens: np.ndarray
    seq_length: int

    def __post_init__(self) -> None:
        self.tokens = np.asarray(self.tokens)
        if self.tokens.ndim != 1:
            raise ValueError("tokens must be a 1-D stream")
        if self.seq_length < 1:
            raise ValueError("seq_length must be >= 1")
        if len(self) < 1:
            raise ValueError(
                f"stream of {self.tokens.size} tokens too short for even one "
                f"sequence of length {self.seq_length}"
            )

    def __len__(self) -> int:
        # +1 because targets are shifted by one token.
        return (self.tokens.size - 1) // self.seq_length

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < len(self):
            raise IndexError(f"sample {index} out of range [0, {len(self)})")
        s = self.seq_length
        start = index * s
        chunk = self.tokens[start : start + s + 1]
        return chunk[:-1].copy(), chunk[1:].copy()

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather a batch of samples: returns (B, s) inputs and targets."""
        pairs = [self[int(i)] for i in np.asarray(indices).ravel()]
        ids = np.stack([p[0] for p in pairs])
        targets = np.stack([p[1] for p in pairs])
        return ids, targets

    # -- disk round trip ----------------------------------------------------
    def save(self, path: str) -> None:
        """Write the token stream as a raw int32 file (mmap-able)."""
        self.tokens.astype(np.int32).tofile(path)

    @classmethod
    def load(cls, path: str, seq_length: int, *, mmap: bool = True) -> "TokenDataset":
        """Load a raw int32 token file, optionally memory-mapped."""
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        if mmap:
            tokens = np.memmap(path, dtype=np.int32, mode="r")
        else:
            tokens = np.fromfile(path, dtype=np.int32)
        return cls(tokens=tokens, seq_length=seq_length)
