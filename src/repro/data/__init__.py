"""Data substrate: tokenizer, synthetic corpora, sharded loading."""

from .dataset import TokenDataset, synthetic_corpus
from .loader import ShardedBatchLoader
from .tokenizer import BPETokenizer

__all__ = ["TokenDataset", "synthetic_corpus", "ShardedBatchLoader", "BPETokenizer"]
