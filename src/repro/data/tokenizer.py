"""Byte-pair-encoding tokenizer.

GPT models train on BPE-tokenized text (GPT-2's 50,257-token vocabulary
is why the paper rounds V up to 51,200, "a multiple of 1024").  The
paper's end-to-end throughput includes data processing, so the pipeline
substrate carries a real tokenizer: a compact byte-level BPE with the
standard greedy merge-training loop, deterministic and dependency-free.

- :meth:`BPETokenizer.train` learns merges from text by repeatedly
  fusing the most frequent adjacent symbol pair (ties broken
  lexicographically for determinism);
- :meth:`encode` applies the learned merges in training order (the
  standard BPE encode);
- :meth:`decode` inverts exactly: ``decode(encode(text)) == text`` for
  any input, because the base alphabet is all 256 bytes.
"""

from __future__ import annotations

import json
from collections import Counter


class BPETokenizer:
    """Byte-level BPE: 256 base tokens + learned merges."""

    def __init__(self, merges: list[tuple[int, int]] | None = None):
        self.merges: list[tuple[int, int]] = list(merges or [])
        self._rebuild_tables()

    def _rebuild_tables(self) -> None:
        #: merge pair -> new token id (256 + merge index)
        self.merge_ranks: dict[tuple[int, int], int] = {
            pair: 256 + i for i, pair in enumerate(self.merges)
        }
        #: token id -> bytes
        self.token_bytes: list[bytes] = [bytes([i]) for i in range(256)]
        for a, b in self.merges:
            self.token_bytes.append(self.token_bytes[a] + self.token_bytes[b])

    @property
    def vocab_size(self) -> int:
        return 256 + len(self.merges)

    # -- training -----------------------------------------------------------
    @classmethod
    def train(cls, text: str | bytes, vocab_size: int) -> "BPETokenizer":
        """Learn merges until the vocabulary reaches ``vocab_size``.

        Greedy BPE: each round fuses the most frequent adjacent pair
        (smallest pair wins ties, so training is deterministic).
        """
        if vocab_size < 256:
            raise ValueError("vocab_size must be >= 256 (the byte alphabet)")
        data = text.encode("utf-8") if isinstance(text, str) else bytes(text)
        seq = list(data)
        tok = cls()
        while tok.vocab_size < vocab_size:
            counts = Counter(zip(seq, seq[1:]))
            if not counts:
                break
            best_count = max(counts.values())
            if best_count < 2:
                break  # nothing repeats; further merges are useless
            pair = min(p for p, c in counts.items() if c == best_count)
            new_id = tok.vocab_size
            tok.merges.append(pair)
            tok._rebuild_tables()
            seq = _apply_merge(seq, pair, new_id)
        return tok

    # -- encode / decode ------------------------------------------------------
    def encode(self, text: str | bytes) -> list[int]:
        """Tokenize by applying merges in learned (rank) order."""
        data = text.encode("utf-8") if isinstance(text, str) else bytes(text)
        seq = list(data)
        while len(seq) >= 2:
            pairs = set(zip(seq, seq[1:]))
            ranked = [
                (self.merge_ranks[p], p) for p in pairs if p in self.merge_ranks
            ]
            if not ranked:
                break
            rank, pair = min(ranked)
            seq = _apply_merge(seq, pair, rank)
        return seq

    def decode(self, token_ids: list[int]) -> str:
        out = bytearray()
        for t in token_ids:
            if not 0 <= t < self.vocab_size:
                raise ValueError(f"token id {t} out of range [0, {self.vocab_size})")
            out.extend(self.token_bytes[t])
        return out.decode("utf-8", errors="replace")

    def decode_bytes(self, token_ids: list[int]) -> bytes:
        return b"".join(self.token_bytes[t] for t in token_ids)

    # -- persistence ----------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump({"version": 1, "merges": self.merges}, f)

    @classmethod
    def load(cls, path: str) -> "BPETokenizer":
        with open(path) as f:
            payload = json.load(f)
        if payload.get("version") != 1:
            raise ValueError("unknown tokenizer format")
        return cls(merges=[tuple(m) for m in payload["merges"]])


def _apply_merge(seq: list[int], pair: tuple[int, int], new_id: int) -> list[int]:
    """Replace every non-overlapping occurrence of ``pair`` with ``new_id``."""
    out: list[int] = []
    i = 0
    n = len(seq)
    a, b = pair
    while i < n:
        if i + 1 < n and seq[i] == a and seq[i + 1] == b:
            out.append(new_id)
            i += 2
        else:
            out.append(seq[i])
            i += 1
    return out
