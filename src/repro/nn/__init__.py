"""Numerical NN substrate: explicit-backward numpy transformer."""

from . import functional
from .generate import generate, perplexity
from .gradcheck import check_module_gradients, numerical_gradient
from .layers import Dropout, Embedding, GeLU, LayerNorm, Linear, default_init
from .module import Module, Parameter
from .lr_scheduler import LinearSchedule, WarmupCosineSchedule
from .optim import SGD, Adam, MixedPrecision
from .transformer import (
    MLP,
    CausalSelfAttention,
    EmbeddingStage,
    GPTModel,
    OutputHead,
    TransformerBlock,
)

__all__ = [
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "GeLU",
    "Embedding",
    "default_init",
    "CausalSelfAttention",
    "MLP",
    "TransformerBlock",
    "EmbeddingStage",
    "OutputHead",
    "GPTModel",
    "SGD",
    "Adam",
    "MixedPrecision",
    "generate",
    "perplexity",
    "LinearSchedule",
    "WarmupCosineSchedule",
    "check_module_gradients",
    "numerical_gradient",
]
