"""Basic neural-network layers with explicit backward passes."""

from __future__ import annotations

from typing import Any

import numpy as np

from . import functional as F
from .module import Module, Parameter


def default_init(
    rng: np.random.Generator, fan_in: int, fan_out: int, scale: float = 0.02
) -> np.ndarray:
    """Megatron-style init: N(0, scale^2); scale defaults to GPT-2's 0.02."""
    return rng.normal(0.0, scale, size=(fan_in, fan_out))


class Linear(Module):
    """y = x W + b, W of shape (in_features, out_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
        bias_value: np.ndarray | None = None,
    ):
        if weight is None:
            rng = rng or np.random.default_rng(0)
            weight = default_init(rng, in_features, out_features)
        if weight.shape != (in_features, out_features):
            raise ValueError(
                f"weight shape {weight.shape} != ({in_features}, {out_features})"
            )
        self.weight = Parameter(weight)
        self.bias: Parameter | None = None
        if bias:
            if bias_value is None:
                bias_value = np.zeros(out_features)
            self.bias = Parameter(bias_value)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x, *, training=True, rng=None):
        y, cache = F.linear_forward(
            x, self.weight.data, self.bias.data if self.bias else None
        )
        return y, cache

    def backward(self, dy, cache):
        dx, dw, db = F.linear_backward(dy, cache)
        self.weight.grad += dw
        if self.bias is not None:
            self.bias.grad += db
        return dx


class LayerNorm(Module):
    def __init__(self, hidden_size: int, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(hidden_size))
        self.beta = Parameter(np.zeros(hidden_size))
        self.eps = eps

    def forward(self, x, *, training=True, rng=None):
        return F.layer_norm_forward(x, self.gamma.data, self.beta.data, self.eps)

    def backward(self, dy, cache):
        dx, dgamma, dbeta = F.layer_norm_backward(dy, cache)
        self.gamma.grad += dgamma
        self.beta.grad += dbeta
        return dx


class Dropout(Module):
    """Inverted dropout; stateless apart from the probability.

    The rng must be supplied per forward call by the training loop (a
    deterministic stream keyed on (layer, microbatch) so that activation
    recomputation replays the identical mask, §3.5).
    """

    def __init__(self, p: float):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x, *, training=True, rng=None):
        if training and self.p > 0.0 and rng is None:
            raise ValueError("Dropout with p > 0 requires an rng in training mode")
        return F.dropout_forward(x, self.p, rng, training)

    def backward(self, dy, mask):
        return F.dropout_backward(dy, mask)


class GeLU(Module):
    def forward(self, x, *, training=True, rng=None):
        return F.gelu_forward(x)

    def backward(self, dy, cache):
        return F.gelu_backward(dy, cache)


class Embedding(Module):
    """Token embedding lookup: int ids (...,) -> vectors (..., h)."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        *,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
    ):
        if weight is None:
            rng = rng or np.random.default_rng(0)
            weight = default_init(rng, num_embeddings, embedding_dim)
        self.weight = Parameter(weight)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, ids, *, training=True, rng=None):
        ids = np.asarray(ids)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise ValueError("embedding ids out of range")
        return self.weight.data[ids], ids

    def backward(self, dy, ids):
        np.add.at(self.weight.grad, ids, dy)
        return np.zeros(ids.shape)  # ids carry no gradient
