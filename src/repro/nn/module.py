"""Module base class and Parameter container.

The substrate uses *explicit* backward passes rather than an autograd
tape: every module implements ``forward(x) -> (y, cache)`` and
``backward(dy, cache) -> dx``, accumulating parameter gradients into
``Parameter.grad``.  This mirrors how pipeline parallelism actually
operates (§2.2): the engine stashes each microbatch's ``cache`` between
the forward and backward pass, which is precisely the "stashed
activations" whose count the 1F1B schedule bounds.

Stochastic modules (dropout) accept an optional ``rng`` in ``forward``;
activation recomputation (§3.5) replays the forward with the same rng
and must reproduce the original output bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class; subclasses define forward/backward and _parameters."""

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (name, Parameter) pairs, recursing into child modules.

        Discovers attributes that are Parameters, Modules, or lists of
        Modules, in attribute-insertion order (deterministic).
        """
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        seen: set[int] = set()
        out = []
        for _, p in self.named_parameters():
            if id(p) not in seen:  # tied weights appear once
                seen.add(id(p))
                out.append(p)
        return out

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(
        self, x: np.ndarray, *, training: bool = True, rng: np.random.Generator | None = None
    ) -> tuple[np.ndarray, Any]:
        raise NotImplementedError

    def backward(self, dy: np.ndarray, cache: Any) -> np.ndarray:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        mine = dict(self.named_parameters())
        missing = set(mine) - set(state)
        extra = set(state) - set(mine)
        if missing or extra:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in mine.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs "
                    f"{state[name].shape}"
                )
            p.data[...] = state[name]
