"""FLOP accounting for the numeric engine.

A process-global meter that the numeric modules report their matrix-
multiplication work to.  This closes the loop between the two halves of
the reproduction: the FLOPs *actually executed* by the numpy engine for
one training iteration must equal the paper's closed-form eq. (3)
(tested in ``tests/test_profiler.py``), so the analytical model and the
running system count the same work.

Usage::

    with count_flops() as meter:
        model.loss_backward(caches)
    print(meter.total_flops)

Only GEMM work is counted (the paper's convention: "The majority of
floating-point operations in the model are performed in the matrix
multiplications (GEMMs) in the transformer and logit layers"); a
multiply-add counts as 2 FLOPs.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field


@dataclass
class FlopMeter:
    """Accumulates GEMM FLOPs by category."""

    by_category: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, flops: int) -> None:
        if flops < 0:
            raise ValueError("flops must be >= 0")
        self.by_category[category] = self.by_category.get(category, 0) + flops

    @property
    def total_flops(self) -> int:
        return sum(self.by_category.values())

    def category(self, name: str) -> int:
        return self.by_category.get(name, 0)


_ACTIVE: list[FlopMeter] = []


def record_gemm_flops(category: str, flops: int) -> None:
    """Report GEMM work to every active meter (no-op when none)."""
    for meter in _ACTIVE:
        meter.add(category, flops)


def matmul_flops(*shape: int) -> int:
    """2 * prod(dims): FLOPs of a GEMM with the given m, k, n (, batch)."""
    out = 2
    for d in shape:
        out *= d
    return out


@contextlib.contextmanager
def count_flops():
    """Context manager activating a fresh :class:`FlopMeter`."""
    meter = FlopMeter()
    _ACTIVE.append(meter)
    try:
        yield meter
    finally:
        # Pop by identity, not equality: FlopMeter is a dataclass, so
        # two meters with identical contents (e.g. nested empty meters)
        # compare equal and list.remove would deactivate the wrong one.
        for i in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[i] is meter:
                del _ACTIVE[i]
                break
