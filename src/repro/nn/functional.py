"""Stateless forward/backward math kernels on numpy arrays.

Each ``*_forward`` returns ``(output, cache)``; the matching
``*_backward`` consumes the upstream gradient and the cache and returns
input gradients.  Everything is vectorized (no Python loops over batch
or sequence), per the project's HPC-Python guidelines.

GeLU uses the tanh approximation (the one Megatron's fused
bias-GeLU kernel implements); its derivative is exact for that
approximation, so gradient checks pass to machine precision.
"""

from __future__ import annotations

import numpy as np

SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)
GELU_COEFF = 0.044715


def gelu_forward(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    """Tanh-approximated GeLU: 0.5 x (1 + tanh(√(2/π)(x + 0.044715 x³)))."""
    u = SQRT_2_OVER_PI * (x + GELU_COEFF * x**3)
    t = np.tanh(u)
    y = 0.5 * x * (1.0 + t)
    return y, (x, t)


def gelu_backward(dy: np.ndarray, cache: tuple) -> np.ndarray:
    x, t = cache
    du_dx = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEFF * x**2)
    dt_dx = (1.0 - t**2) * du_dx
    dgelu = 0.5 * (1.0 + t) + 0.5 * x * dt_dx
    return dy * dgelu


def softmax_forward(x: np.ndarray, axis: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Numerically-stable softmax; cache is the output itself."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    y = e / np.sum(e, axis=axis, keepdims=True)
    return y, y


def softmax_backward(dy: np.ndarray, y: np.ndarray, axis: int = -1) -> np.ndarray:
    inner = np.sum(dy * y, axis=axis, keepdims=True)
    return y * (dy - inner)


def layer_norm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> tuple[np.ndarray, tuple]:
    """LayerNorm over the last axis."""
    mu = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mu) * inv_std
    y = xhat * gamma + beta
    return y, (xhat, inv_std, gamma)


def layer_norm_backward(
    dy: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (dx, dgamma, dbeta)."""
    xhat, inv_std, gamma = cache
    h = xhat.shape[-1]
    dgamma = np.sum(dy * xhat, axis=tuple(range(dy.ndim - 1)))
    dbeta = np.sum(dy, axis=tuple(range(dy.ndim - 1)))
    dxhat = dy * gamma
    dx = (
        dxhat
        - np.mean(dxhat, axis=-1, keepdims=True)
        - xhat * np.mean(dxhat * xhat, axis=-1, keepdims=True)
    ) * inv_std
    # h is unused directly but kept for clarity of the 1/h means above.
    del h
    return dx, dgamma, dbeta


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> tuple[np.ndarray, tuple]:
    """y = x @ W + b with x of shape (..., in), W of shape (in, out)."""
    from .profiler import matmul_flops, record_gemm_flops

    y = x @ weight
    if bias is not None:
        y = y + bias
    rows = x.size // x.shape[-1]
    record_gemm_flops("linear", matmul_flops(rows, *weight.shape))
    return y, (x, weight, bias is not None)


def linear_backward(
    dy: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Returns (dx, dweight, dbias)."""
    from .profiler import matmul_flops, record_gemm_flops

    x, weight, has_bias = cache
    dx = dy @ weight.T
    x2 = x.reshape(-1, x.shape[-1])
    dy2 = dy.reshape(-1, dy.shape[-1])
    dweight = x2.T @ dy2
    dbias = dy2.sum(axis=0) if has_bias else None
    record_gemm_flops("linear", 2 * matmul_flops(x2.shape[0], *weight.shape))
    return dx, dweight, dbias


def dropout_forward(
    x: np.ndarray, p: float, rng: np.random.Generator, training: bool = True
) -> tuple[np.ndarray, np.ndarray | None]:
    """Inverted dropout; cache is the scaled keep-mask (None if no-op)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout p must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x, None
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * mask, mask


def dropout_backward(dy: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    if mask is None:
        return dy
    return dy * mask


def cross_entropy_forward(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, tuple]:
    """Mean token-level cross entropy.

    ``logits``: (..., V); ``targets``: integer array matching the leading
    shape.  Returns scalar loss and cache.
    """
    flat = logits.reshape(-1, logits.shape[-1])
    tgt = targets.reshape(-1)
    if tgt.shape[0] != flat.shape[0]:
        raise ValueError("targets shape does not match logits")
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(shifted), axis=-1)) + flat.max(axis=-1)
    picked = flat[np.arange(flat.shape[0]), tgt]
    loss = float(np.mean(logsumexp - picked))
    return loss, (flat, tgt, logits.shape)


def cross_entropy_backward(cache: tuple, scale: float = 1.0) -> np.ndarray:
    """d(loss)/d(logits); ``scale`` multiplies the mean-normalized grad."""
    flat, tgt, shape = cache
    probs, _ = softmax_forward(flat, axis=-1)
    probs[np.arange(flat.shape[0]), tgt] -= 1.0
    probs *= scale / flat.shape[0]
    return probs.reshape(shape)


def causal_mask(seq_len: int) -> np.ndarray:
    """(s, s) additive mask: 0 on/below diagonal, -inf above."""
    mask = np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
    out = np.zeros((seq_len, seq_len))
    out[mask] = -np.inf
    return out
