"""Optimizers: SGD and Adam, plus a mixed-precision wrapper.

Optimizers operate on :class:`~repro.nn.module.Parameter` lists.  The
mixed-precision wrapper emulates the paper's fp16 training (§5: "all of
our results are run with mixed precision"): parameters are cast to
float16 for the forward/backward compute while fp32/fp64 master copies
receive the update, with static loss scaling.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter


class SGD:
    """Plain (optionally momentum) SGD."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with bias correction (the optimizer used for GPT training)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self.step_count
        bc2 = 1.0 - b2**self.step_count
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def state_nbytes(self) -> int:
        """Bytes of optimizer state (m and v) -- the memory ZeRO shards."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))


class MixedPrecision:
    """Static-loss-scaled fp16 emulation around another optimizer.

    Workflow per iteration::

        mp.cast_params_to_half()        # fp16 weights for compute
        loss = model.loss(...)          # caller scales dlogits by mp.loss_scale
        mp.unscale_and_restore()        # fp32 master weights + unscaled grads
        optimizer.step()

    The fp16 round-trip is emulated by casting through ``np.float16``.
    """

    def __init__(self, params: list[Parameter], loss_scale: float = 1024.0):
        if loss_scale <= 0:
            raise ValueError("loss_scale must be positive")
        self.params = list(params)
        self.loss_scale = loss_scale
        self._master: list[np.ndarray] | None = None

    def cast_params_to_half(self) -> None:
        if self._master is not None:
            raise RuntimeError("params already cast; call unscale_and_restore first")
        self._master = [p.data.copy() for p in self.params]
        for p in self.params:
            p.data[...] = p.data.astype(np.float16).astype(np.float64)

    def unscale_and_restore(self) -> bool:
        """Restore master weights; unscale grads.  Returns False (and
        zeroes grads) if any gradient overflowed to inf/nan, mimicking
        dynamic-loss-scale skip behavior."""
        if self._master is None:
            raise RuntimeError("cast_params_to_half was not called")
        ok = True
        for p in self.params:
            if not np.isfinite(p.grad).all():
                ok = False
                break
        for p, master in zip(self.params, self._master):
            p.data[...] = master
            if ok:
                p.grad /= self.loss_scale
            else:
                p.grad.fill(0.0)
        self._master = None
        return ok
