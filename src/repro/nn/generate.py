"""Autoregressive text generation from a trained GPT.

Greedy decoding and temperature/top-k sampling.  Generation is the
consumer-facing half of a language model; having it in the library lets
the examples demonstrate that models trained through the PTD-P engine
actually produce the structure they were trained on.

Decoding recomputes the full forward per step (no KV cache) -- fine for
the model sizes the numeric engine runs, and guaranteed consistent with
the training-path numerics.
"""

from __future__ import annotations

import numpy as np

from .transformer import GPTModel


def generate(
    model: GPTModel,
    prompt_ids: np.ndarray,
    max_new_tokens: int,
    *,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    stop_ids: set[int] | frozenset[int] | None = None,
) -> np.ndarray:
    """Continue ``prompt_ids`` (1-D int array) by ``max_new_tokens``.

    ``temperature = 0`` selects greedy decoding; otherwise logits are
    divided by the temperature and sampled (restricted to the ``top_k``
    most likely tokens when given).  The context window slides so inputs
    never exceed the model's ``seq_length``.

    ``stop_ids`` ends generation early: the first *generated* token that
    is in the set is kept in the output and decoding stops.  Prompt
    tokens never trigger a stop, and ``max_new_tokens=0`` returns the
    prompt unchanged regardless of ``stop_ids``.
    """
    prompt_ids = np.asarray(prompt_ids)
    if prompt_ids.ndim != 1 or prompt_ids.size == 0:
        raise ValueError("prompt_ids must be a non-empty 1-D array")
    if max_new_tokens < 0:
        raise ValueError("max_new_tokens must be >= 0")
    if temperature < 0:
        raise ValueError("temperature must be >= 0")
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be >= 1")
    vocab = model.config.vocab_size
    if prompt_ids.min() < 0 or prompt_ids.max() >= vocab:
        raise ValueError("prompt token out of range")
    stop_ids = frozenset(int(t) for t in stop_ids) if stop_ids else frozenset()
    if any(t < 0 or t >= vocab for t in stop_ids):
        raise ValueError("stop token out of range")
    rng = rng or np.random.default_rng(0)
    window = model.config.seq_length
    out = list(prompt_ids)
    for _ in range(max_new_tokens):
        context = np.array(out[-window:])[None, :]
        logits, _ = model.forward(context, training=False)
        step = logits[0, -1]
        token = _pick(step, temperature, top_k, rng)
        out.append(token)
        if token in stop_ids:
            break
    return np.array(out, dtype=np.int64)


def _pick(
    logits: np.ndarray,
    temperature: float,
    top_k: int | None,
    rng: np.random.Generator,
) -> int:
    if temperature == 0.0:
        return int(np.argmax(logits))
    scaled = logits / temperature
    if top_k is not None and top_k < scaled.size:
        # Keep exactly top_k indices.  A threshold test (scaled >= cutoff)
        # would keep *more* than top_k candidates when logits tie at the
        # cutoff value; argpartition breaks ties by index instead.
        keep = np.argpartition(scaled, -top_k)[-top_k:]
        mask = np.full_like(scaled, -np.inf)
        mask[keep] = scaled[keep]
        scaled = mask
    scaled = scaled - scaled.max()
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(scaled.size, p=probs))


def perplexity(model: GPTModel, ids: np.ndarray, targets: np.ndarray) -> float:
    """exp(mean token cross-entropy) on a batch -- the standard LM metric."""
    loss, _ = model.loss(ids, targets, training=False)
    return float(np.exp(loss))
