"""GPT transformer: attention, MLP, block, embedding and head stages.

The model is organized as a flat list of *pipeline-able layers*
(:attr:`GPTModel.layers`): an embedding stage, ``l`` transformer blocks,
and an output head.  Every layer implements the uniform
``forward -> (y, cache)`` / ``backward(dy, cache) -> dx`` protocol, so
the pipeline-parallel engine can split the list at any block boundary
(§2.2's "each device can be assigned an equal number of transformer
layers").

The output head ties its projection to the token-embedding matrix by
sharing the same :class:`Parameter` (gradients from both uses accumulate
into one tensor), matching Megatron's weight tying.  When the model is
split across pipeline stages the tie becomes two copies synchronized by
an all-reduce -- see ``repro.parallel.pipeline_parallel``.
"""

from __future__ import annotations

import numpy as np

from repro.config import GPTConfig

from . import functional as F
from .layers import Dropout, Embedding, GeLU, LayerNorm, Linear, default_init
from .profiler import matmul_flops, record_gemm_flops
from .module import Module, Parameter


class CausalSelfAttention(Module):
    """Multi-head self-attention with implicit causal masking.

    QKV weight layout is ``concat([Wq, Wk, Wv], axis=1)`` with heads
    occupying contiguous column blocks -- the layout Megatron's
    column-parallel split assumes.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        *,
        attention_dropout: float = 0.0,
        rng: np.random.Generator | None = None,
        qkv_weight: np.ndarray | None = None,
        qkv_bias: np.ndarray | None = None,
        proj_weight: np.ndarray | None = None,
        proj_bias: np.ndarray | None = None,
    ):
        if hidden_size % num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.qkv = Linear(
            hidden_size,
            3 * hidden_size,
            rng=rng,
            weight=qkv_weight,
            bias_value=qkv_bias,
        )
        self.proj = Linear(
            hidden_size,
            hidden_size,
            rng=rng,
            weight=proj_weight,
            bias_value=proj_bias,
        )
        self.attn_dropout = Dropout(attention_dropout)

    def forward(self, x, *, training=True, rng=None):
        b, s, h = x.shape
        a, dk = self.num_heads, self.head_dim
        qkv, qkv_cache = self.qkv.forward(x)
        q, k, v = np.split(qkv, 3, axis=-1)
        # (b, s, h) -> (b, a, s, dk)
        q = q.reshape(b, s, a, dk).transpose(0, 2, 1, 3)
        k = k.reshape(b, s, a, dk).transpose(0, 2, 1, 3)
        v = v.reshape(b, s, a, dk).transpose(0, 2, 1, 3)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(dk)
        scores = scores + F.causal_mask(s)
        probs, probs_cache = F.softmax_forward(scores)
        dropped, drop_mask = self.attn_dropout.forward(probs, training=training, rng=rng)
        ctx = dropped @ v  # (b, a, s, dk)
        record_gemm_flops("attention", 2 * matmul_flops(b, a, s, dk, s))
        merged = ctx.transpose(0, 2, 1, 3).reshape(b, s, h)
        out, proj_cache = self.proj.forward(merged)
        cache = (qkv_cache, q, k, v, probs_cache, drop_mask, dropped, proj_cache, (b, s))
        return out, cache

    def forward_step(self, x, past_kv=None):
        """Inference-only incremental forward over cached keys/values.

        ``x`` holds the ``s_new`` *newest* tokens' hidden states
        (b, s_new, h); ``past_kv`` is ``(k, v)`` for the ``s_past``
        tokens already decoded, each (b, a, s_past, dk), or ``None`` at
        prefill.  Attention runs from the new queries over past + new
        positions with the matching rows of the causal mask, so a
        prefill (``past_kv=None``, ``s_new == s_total``) computes
        exactly what :meth:`forward` computes in inference mode.
        Returns ``(out, (k_new, v_new))`` — only the *new* tokens'
        keys/values, for the caller's cache to absorb.
        """
        b, s_new, h = x.shape
        a, dk = self.num_heads, self.head_dim
        qkv, _ = self.qkv.forward(x)
        q, k, v = np.split(qkv, 3, axis=-1)
        q = q.reshape(b, s_new, a, dk).transpose(0, 2, 1, 3)
        k = k.reshape(b, s_new, a, dk).transpose(0, 2, 1, 3)
        v = v.reshape(b, s_new, a, dk).transpose(0, 2, 1, 3)
        if past_kv is not None:
            past_k, past_v = past_kv
            k_all = np.concatenate([past_k, k], axis=2)
            v_all = np.concatenate([past_v, v], axis=2)
        else:
            k_all, v_all = k, v
        s_total = k_all.shape[2]
        scores = q @ k_all.transpose(0, 1, 3, 2) / np.sqrt(dk)
        # The last s_new rows of the full causal mask: new position i
        # (global index s_total - s_new + i) sees everything up to and
        # including itself.  Adding the zero entries keeps the prefill
        # arithmetic identical to forward()'s ``scores + mask``.
        scores = scores + F.causal_mask(s_total)[s_total - s_new:]
        probs, _ = F.softmax_forward(scores)
        ctx = probs @ v_all  # (b, a, s_new, dk)
        record_gemm_flops("attention", 2 * matmul_flops(b, a, s_new, dk, s_total))
        merged = ctx.transpose(0, 2, 1, 3).reshape(b, s_new, h)
        out, _ = self.proj.forward(merged)
        return out, (k, v)

    def backward(self, dy, cache):
        qkv_cache, q, k, v, probs_cache, drop_mask, dropped, proj_cache, (b, s) = cache
        a, dk, h = self.num_heads, self.head_dim, self.hidden_size
        dmerged = self.proj.backward(dy, proj_cache)
        dctx = dmerged.reshape(b, s, a, dk).transpose(0, 2, 1, 3)
        ddropped = dctx @ v.transpose(0, 1, 3, 2)
        dv = dropped.transpose(0, 1, 3, 2) @ dctx
        dprobs = self.attn_dropout.backward(ddropped, drop_mask)
        dscores = F.softmax_backward(dprobs, probs_cache)
        dscores = dscores / np.sqrt(dk)
        dq = dscores @ k
        dk_grad = dscores.transpose(0, 1, 3, 2) @ q
        record_gemm_flops("attention", 4 * matmul_flops(b, a, s, dk, s))
        # (b, a, s, dk) -> (b, s, h)
        dq = dq.transpose(0, 2, 1, 3).reshape(b, s, h)
        dk_grad = dk_grad.transpose(0, 2, 1, 3).reshape(b, s, h)
        dv = dv.transpose(0, 2, 1, 3).reshape(b, s, h)
        dqkv = np.concatenate([dq, dk_grad, dv], axis=-1)
        return self.qkv.backward(dqkv, qkv_cache)


class MLP(Module):
    """Two-layer feed-forward: h -> ffn -> h with GeLU."""

    def __init__(
        self,
        hidden_size: int,
        ffn_hidden_size: int,
        *,
        rng: np.random.Generator | None = None,
        fc1_weight: np.ndarray | None = None,
        fc1_bias: np.ndarray | None = None,
        fc2_weight: np.ndarray | None = None,
        fc2_bias: np.ndarray | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(
            hidden_size, ffn_hidden_size, rng=rng, weight=fc1_weight, bias_value=fc1_bias
        )
        self.act = GeLU()
        self.fc2 = Linear(
            ffn_hidden_size, hidden_size, rng=rng, weight=fc2_weight, bias_value=fc2_bias
        )

    def forward(self, x, *, training=True, rng=None):
        u, c1 = self.fc1.forward(x)
        g, c2 = self.act.forward(u)
        y, c3 = self.fc2.forward(g)
        return y, (c1, c2, c3)

    def backward(self, dy, cache):
        c1, c2, c3 = cache
        dg = self.fc2.backward(dy, c3)
        du = self.act.backward(dg, c2)
        return self.fc1.backward(du, c1)


class TransformerBlock(Module):
    """Pre-LayerNorm transformer block (GPT-2 style):

        x = x + Dropout(Attn(LN1(x)))
        x = x + Dropout(MLP(LN2(x)))
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        ffn_hidden_size: int | None = None,
        *,
        dropout: float = 0.0,
        attention_dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        ffn_hidden_size = ffn_hidden_size or 4 * hidden_size
        self.ln1 = LayerNorm(hidden_size)
        self.attn = CausalSelfAttention(
            hidden_size, num_heads, attention_dropout=attention_dropout, rng=rng
        )
        self.drop1 = Dropout(dropout)
        self.ln2 = LayerNorm(hidden_size)
        self.mlp = MLP(hidden_size, ffn_hidden_size, rng=rng)
        self.drop2 = Dropout(dropout)

    def forward(self, x, *, training=True, rng=None):
        a, c_ln1 = self.ln1.forward(x)
        b, c_attn = self.attn.forward(a, training=training, rng=rng)
        d, m1 = self.drop1.forward(b, training=training, rng=rng)
        x1 = x + d
        e, c_ln2 = self.ln2.forward(x1)
        f, c_mlp = self.mlp.forward(e, training=training, rng=rng)
        g, m2 = self.drop2.forward(f, training=training, rng=rng)
        y = x1 + g
        return y, (c_ln1, c_attn, m1, c_ln2, c_mlp, m2)

    def forward_step(self, x, past_kv=None):
        """Inference-only incremental forward (see CausalSelfAttention).

        Dropout is a no-op in inference mode, so it is skipped outright;
        the arithmetic matches :meth:`forward` with ``training=False``.
        """
        a, _ = self.ln1.forward(x)
        b, kv = self.attn.forward_step(a, past_kv)
        x1 = x + b
        e, _ = self.ln2.forward(x1)
        f, _ = self.mlp.forward(e)
        return x1 + f, kv

    def backward(self, dy, cache):
        c_ln1, c_attn, m1, c_ln2, c_mlp, m2 = cache
        dg = self.drop2.backward(dy, m2)
        df = self.mlp.backward(dg, c_mlp)
        dx1 = dy + self.ln2.backward(df, c_ln2)
        dd = self.drop1.backward(dx1, m1)
        db = self.attn.backward(dd, c_attn)
        dx = dx1 + self.ln1.backward(db, c_ln1)
        return dx


class EmbeddingStage(Module):
    """Token + learned position embeddings, with embedding dropout."""

    def __init__(
        self,
        vocab_size: int,
        hidden_size: int,
        max_seq_length: int,
        *,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.wte = Embedding(vocab_size, hidden_size, rng=rng)
        self.wpe = Embedding(max_seq_length, hidden_size, rng=rng)
        self.drop = Dropout(dropout)
        self.vocab_size = vocab_size
        self.max_seq_length = max_seq_length

    def forward(self, token_ids, *, training=True, rng=None):
        token_ids = np.asarray(token_ids)
        b, s = token_ids.shape
        if s > self.max_seq_length:
            raise ValueError(f"sequence length {s} exceeds max {self.max_seq_length}")
        tok, c_tok = self.wte.forward(token_ids)
        positions = np.arange(s)
        pos, c_pos = self.wpe.forward(positions)
        x = tok + pos  # pos broadcasts over batch
        y, mask = self.drop.forward(x, training=training, rng=rng)
        return y, (c_tok, c_pos, mask, b)

    def forward_step(self, token_ids, start: int = 0):
        """Inference-only embedding of tokens at positions ``start..``.

        ``token_ids`` is (b, s_new); the learned position embeddings are
        taken from ``arange(start, start + s_new)`` so cached decode can
        embed only the newest tokens.  ``start=0`` with the full context
        matches :meth:`forward` in inference mode exactly.
        """
        token_ids = np.asarray(token_ids)
        b, s = token_ids.shape
        if start + s > self.max_seq_length:
            raise ValueError(
                f"positions up to {start + s} exceed max {self.max_seq_length}"
            )
        tok, _ = self.wte.forward(token_ids)
        pos, _ = self.wpe.forward(np.arange(start, start + s))
        return tok + pos

    def backward(self, dy, cache):
        c_tok, c_pos, mask, b = cache
        dx = self.drop.backward(dy, mask)
        self.wte.backward(dx, c_tok)
        self.wpe.backward(dx.sum(axis=0), c_pos)
        return np.zeros(c_tok.shape)  # token ids: no gradient


class OutputHead(Module):
    """Final LayerNorm + logits against the (tied) embedding matrix."""

    def __init__(self, hidden_size: int, tied_embedding: Parameter):
        self.ln_f = LayerNorm(hidden_size)
        self.tied = tied_embedding  # shared Parameter (V, h)

    def forward(self, x, *, training=True, rng=None):
        xn, c_ln = self.ln_f.forward(x)
        logits = xn @ self.tied.data.T
        record_gemm_flops(
            "logit", matmul_flops(xn.size // xn.shape[-1], *self.tied.data.shape)
        )
        return logits, (c_ln, xn)

    def backward(self, dlogits, cache):
        c_ln, xn = cache
        dxn = dlogits @ self.tied.data
        flat_x = xn.reshape(-1, xn.shape[-1])
        flat_dl = dlogits.reshape(-1, dlogits.shape[-1])
        self.tied.grad += flat_dl.T @ flat_x
        record_gemm_flops(
            "logit", 2 * matmul_flops(flat_x.shape[0], *self.tied.data.shape)
        )
        return self.ln_f.backward(dxn, c_ln)


class GPTModel(Module):
    """A complete GPT: embedding stage, blocks, output head.

    Built deterministically from a seed so that tensor/pipeline-parallel
    builders can reconstruct identical full weights and shard them.
    """

    def __init__(
        self,
        config: GPTConfig,
        *,
        seed: int = 0,
        dropout: float = 0.0,
        attention_dropout: float = 0.0,
    ):
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = EmbeddingStage(
            config.vocab_size,
            config.hidden_size,
            config.seq_length,
            dropout=dropout,
            rng=rng,
        )
        self.blocks = [
            TransformerBlock(
                config.hidden_size,
                config.num_attention_heads,
                config.ffn_hidden_size,
                dropout=dropout,
                attention_dropout=attention_dropout,
                rng=rng,
            )
            for _ in range(config.num_layers)
        ]
        self.head = OutputHead(config.hidden_size, self.embedding.wte.weight)

    @property
    def layers(self) -> list[Module]:
        """Pipeline-able layer list: [embedding, block_0..block_{l-1}, head]."""
        return [self.embedding, *self.blocks, self.head]

    def forward(self, token_ids, *, training=True, rng=None):
        caches = []
        x = token_ids
        for layer in self.layers:
            x, c = layer.forward(x, training=training, rng=rng)
            caches.append(c)
        return x, caches

    def forward_step(self, token_ids, past_kvs=None, *, start: int = 0):
        """Inference-only incremental forward with cached keys/values.

        ``token_ids`` is (b, s_new) holding only the *new* tokens;
        ``past_kvs`` is a per-block list of ``(k, v)`` tensors (each
        (b, a, s_past, dk)) from earlier steps, or ``None`` at prefill;
        ``start`` is the absolute position of the first new token.
        Returns ``(logits, new_kvs)`` where ``logits`` is
        (b, s_new, V) and ``new_kvs`` lists each block's keys/values for
        the new tokens only.  A prefill call (``past_kvs=None``,
        ``start=0``) is bit-identical to
        ``forward(token_ids, training=False)``.
        """
        if past_kvs is None:
            past_kvs = [None] * len(self.blocks)
        if len(past_kvs) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} past_kvs, got {len(past_kvs)}"
            )
        x = self.embedding.forward_step(token_ids, start=start)
        new_kvs = []
        for block, past in zip(self.blocks, past_kvs):
            x, kv = block.forward_step(x, past)
            new_kvs.append(kv)
        logits, _ = self.head.forward(x)
        return logits, new_kvs

    def backward(self, dlogits, caches):
        dy = dlogits
        for layer, cache in zip(reversed(self.layers), reversed(caches)):
            dy = layer.backward(dy, cache)
        return dy

    def loss(
        self, token_ids, targets, *, training=True, rng=None
    ) -> tuple[float, list]:
        """Cross-entropy loss; returns (loss, caches-with-loss-cache)."""
        logits, caches = self.forward(token_ids, training=training, rng=rng)
        loss, ce_cache = F.cross_entropy_forward(logits, targets)
        caches.append(ce_cache)
        return loss, caches

    def loss_backward(self, caches, scale: float = 1.0):
        ce_cache = caches[-1]
        dlogits = F.cross_entropy_backward(ce_cache, scale)
        return self.backward(dlogits, caches[:-1])
