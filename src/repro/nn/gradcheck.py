"""Finite-difference gradient checking for explicit-backward modules."""

from __future__ import annotations

from typing import Callable

import numpy as np

from .module import Module


def numerical_gradient(
    f: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array``
    (mutated in place and restored)."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = array[idx]
        array[idx] = orig + eps
        f_plus = f()
        array[idx] = orig - eps
        f_minus = f()
        array[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    *,
    rng_seed: int | None = None,
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Assert analytic input and parameter grads match finite differences.

    Uses ``loss = sum(sin(output))`` to exercise all output elements with
    a non-trivial upstream gradient.  Stochastic modules get a fresh
    deterministic rng per evaluation so the loss is a pure function.
    """

    def make_rng():
        return None if rng_seed is None else np.random.default_rng(rng_seed)

    def loss_only() -> float:
        y, _ = module.forward(x, training=True, rng=make_rng())
        return float(np.sum(np.sin(y)))

    y, cache = module.forward(x, training=True, rng=make_rng())
    dy = np.cos(y)
    module.zero_grad()
    dx = module.backward(dy, cache)

    if np.issubdtype(np.asarray(x).dtype, np.floating):
        num_dx = numerical_gradient(loss_only, x, eps)
        np.testing.assert_allclose(dx, num_dx, rtol=rtol, atol=atol)

    for name, p in module.named_parameters():
        num = numerical_gradient(loss_only, p.data, eps)
        np.testing.assert_allclose(
            p.grad, num, rtol=rtol, atol=atol, err_msg=f"parameter {name}"
        )
