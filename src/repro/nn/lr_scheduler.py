"""Learning-rate schedules used for GPT training (linear warmup + decay).

Large-model training (GPT-3, and the paper's runs) uses linear warmup
followed by cosine decay to a floor.  Schedulers mutate ``optimizer.lr``
in place; call :meth:`step` once per training iteration.
"""

from __future__ import annotations

import math


class WarmupCosineSchedule:
    """Linear warmup to ``max_lr`` then cosine decay to ``min_lr``."""

    def __init__(
        self,
        optimizer,
        *,
        max_lr: float,
        warmup_iters: int,
        decay_iters: int,
        min_lr: float = 0.0,
    ):
        if max_lr <= 0:
            raise ValueError("max_lr must be positive")
        if min_lr < 0 or min_lr > max_lr:
            raise ValueError("need 0 <= min_lr <= max_lr")
        if warmup_iters < 0 or decay_iters < 1:
            raise ValueError("warmup_iters must be >= 0, decay_iters >= 1")
        if warmup_iters > decay_iters:
            raise ValueError("warmup_iters must be <= decay_iters")
        self.optimizer = optimizer
        self.max_lr = max_lr
        self.min_lr = min_lr
        self.warmup_iters = warmup_iters
        self.decay_iters = decay_iters
        self.iteration = 0
        self.optimizer.lr = self.lr_at(0)

    def lr_at(self, iteration: int) -> float:
        """The learning rate for a given iteration index."""
        if self.warmup_iters > 0 and iteration < self.warmup_iters:
            return self.max_lr * (iteration + 1) / self.warmup_iters
        if iteration >= self.decay_iters:
            return self.min_lr
        progress = (iteration - self.warmup_iters) / max(
            1, self.decay_iters - self.warmup_iters
        )
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.max_lr - self.min_lr) * cos

    def step(self) -> float:
        """Advance one iteration; returns the new learning rate."""
        self.iteration += 1
        lr = self.lr_at(self.iteration)
        self.optimizer.lr = lr
        return lr


class LinearSchedule:
    """Linear warmup then linear decay (the original GPT-2 recipe)."""

    def __init__(
        self,
        optimizer,
        *,
        max_lr: float,
        warmup_iters: int,
        total_iters: int,
        min_lr: float = 0.0,
    ):
        if max_lr <= 0:
            raise ValueError("max_lr must be positive")
        if warmup_iters < 0 or total_iters < 1 or warmup_iters > total_iters:
            raise ValueError("invalid warmup/total iteration counts")
        self.optimizer = optimizer
        self.max_lr = max_lr
        self.min_lr = min_lr
        self.warmup_iters = warmup_iters
        self.total_iters = total_iters
        self.iteration = 0
        self.optimizer.lr = self.lr_at(0)

    def lr_at(self, iteration: int) -> float:
        if self.warmup_iters > 0 and iteration < self.warmup_iters:
            return self.max_lr * (iteration + 1) / self.warmup_iters
        if iteration >= self.total_iters:
            return self.min_lr
        progress = (iteration - self.warmup_iters) / max(
            1, self.total_iters - self.warmup_iters
        )
        return self.max_lr + (self.min_lr - self.max_lr) * progress

    def step(self) -> float:
        self.iteration += 1
        lr = self.lr_at(self.iteration)
        self.optimizer.lr = lr
        return lr
