"""Roofline timing model for GPU kernels.

The paper attributes its throughput to keeping "most of the computation
compute-bound as opposed to memory-bound" (§1, §4.2).  We model each
kernel with the classic roofline:

    time = max(flops / (peak * efficiency), bytes / memory_bandwidth)
           + launch_overhead

GEMM efficiency is a saturating function of the three matrix dimensions:
small/badly-shaped GEMMs (which appear when tensor parallelism slices h
and the head dimension ``t`` ways, §3.3.2) achieve a lower fraction of
peak, large GEMMs approach ``max_efficiency``.  This single mechanism
produces Figure 7 (throughput rises with microbatch size) and the
utilization growth across Table 1 (larger h => larger GEMMs => higher
fraction of peak).

Element-wise kernels (bias/GeLU/dropout/residual/LayerNorm/softmax) are
memory-bound: their time is bytes moved / HBM bandwidth.  Operator
fusion (§4.2) reduces the number of passes over the data, which is how
the §5.8 fused-operator experiment is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec


@dataclass(frozen=True)
class GemmShape:
    """C[m, n] = A[m, k] @ B[k, n]."""

    m: int
    k: int
    n: int
    batch: int = 1  # strided-batched GEMM count (e.g. attention heads)

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.batch) < 1:
            raise ValueError(f"GEMM dims must be >= 1, got {self}")

    @property
    def flops(self) -> int:
        """Multiply-adds counted as 2 FLOPs (paper appendix convention)."""
        return 2 * self.m * self.k * self.n * self.batch

    def bytes_moved(self, dtype_size: int = 2) -> int:
        """Minimum DRAM traffic: read A and B, write C, per batch."""
        per = self.m * self.k + self.k * self.n + self.m * self.n
        return per * self.batch * dtype_size


def _saturation(x: float, x_half: float) -> float:
    """Smooth 0..1 ramp equal to 0.5 at ``x_half``; models tile-quantization
    and wave-quantization losses for small GEMM dimensions."""
    return x / (x + x_half)


@dataclass(frozen=True)
class ComputeModel:
    """Times kernels on a :class:`DeviceSpec` via the roofline.

    Attributes
    ----------
    device:
        Target accelerator.
    max_gemm_efficiency:
        Fraction of peak achieved by an ideally-shaped huge GEMM
        (cuBLAS fp16 on A100 reaches ~0.85-0.9).
    m_half / k_half / n_half:
        Dimension sizes at which the per-dimension efficiency factor
        reaches one half of its asymptote.  The reduction dimension (k)
        is most sensitive (main-loop efficiency), the output dims less.
    elementwise_dtype_size:
        Bytes per element for activation traffic (fp16 = 2).
    """

    device: DeviceSpec
    max_gemm_efficiency: float = 0.92
    m_half: float = 800.0
    k_half: float = 160.0
    n_half: float = 96.0
    elementwise_dtype_size: int = 2

    def gemm_efficiency(self, shape: GemmShape) -> float:
        """Achieved fraction of peak FLOP/s for this GEMM shape."""
        eff = (
            self.max_gemm_efficiency
            * _saturation(float(shape.m), self.m_half)
            * _saturation(float(shape.k), self.k_half)
            * _saturation(float(shape.n), self.n_half)
        )
        return eff

    def gemm_time(self, shape: GemmShape) -> float:
        """Roofline execution time of one (possibly batched) GEMM."""
        eff = self.gemm_efficiency(shape)
        compute = shape.flops / (self.device.peak_flops * eff)
        memory = shape.bytes_moved(self.elementwise_dtype_size) / (
            self.device.memory_bandwidth
        )
        return max(compute, memory) + self.device.kernel_launch_overhead

    def gemm_achieved_flops(self, shape: GemmShape) -> float:
        """FLOP/s actually achieved (flops / roofline time)."""
        return shape.flops / self.gemm_time(shape)

    def elementwise_time(self, num_elements: int, passes: float = 2.0) -> float:
        """Time of a memory-bound kernel touching ``num_elements``.

        ``passes`` counts reads+writes of the tensor (a simple unary op
        reads once and writes once => 2 passes).
        """
        if num_elements < 0:
            raise ValueError("num_elements must be >= 0")
        traffic = num_elements * passes * self.elementwise_dtype_size
        return traffic / self.device.memory_bandwidth + self.device.kernel_launch_overhead

    def memory_time(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` through HBM (no launch overhead)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        return num_bytes / self.device.memory_bandwidth
