"""Cluster network topology: a three-level fat-tree like Selene.

The paper's machine (§5) connects 384 DGX A100 nodes in a three-level
(leaf, spine, core) fat-tree with 850 switches, chosen for efficient
all-reduce traffic.  We model the topology as a networkx graph whose
edges carry bandwidth capacities, which lets us

- classify any (rank, rank) pair as NVLink (same node) or InfiniBand
  (different nodes) with a hop count for the latency term, and
- compute bisection bandwidth by min-cut, used by the §5.9 experiment.

The default dimensions give a full-bisection tree for up to 1024 nodes,
more than covering the paper's 384.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import networkx as nx

from .node import NodeSpec, dgx_a100


@dataclass(frozen=True)
class ClusterTopology:
    """A cluster of multi-GPU nodes on a fat-tree network.

    GPUs are identified by *global rank* in ``[0, num_gpus)``; rank r
    lives on node ``r // gpus_per_node`` at local index
    ``r % gpus_per_node`` (the standard Megatron rank order).
    """

    num_nodes: int
    node: NodeSpec = field(default_factory=dgx_a100)
    nodes_per_leaf: int = 16
    leaves_per_spine_group: int = 8

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")

    # -- rank geometry ----------------------------------------------------
    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus_per_node

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_index(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def leaf_of(self, node_id: int) -> int:
        return node_id // self.nodes_per_leaf

    def spine_group_of(self, node_id: int) -> int:
        return self.leaf_of(node_id) // self.leaves_per_spine_group

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} out of range [0, {self.num_gpus})")

    # -- link classification ----------------------------------------------
    def hop_count(self, rank_a: int, rank_b: int) -> int:
        """Switch hops between two GPUs (0 = same node via NVSwitch)."""
        if rank_a == rank_b:
            return 0
        na, nb = self.node_of(rank_a), self.node_of(rank_b)
        if na == nb:
            return 0
        if self.leaf_of(na) == self.leaf_of(nb):
            return 2  # up to leaf, down
        if self.spine_group_of(na) == self.spine_group_of(nb):
            return 4  # leaf -> spine -> leaf
        return 6  # leaf -> spine -> core -> spine -> leaf

    def link_bandwidth(self, rank_a: int, rank_b: int) -> float:
        """Point-to-point bandwidth between two GPUs, bytes/s.

        Same node: NVLink.  Different nodes: this GPU's share of the
        node's NIC capacity -- one full HCA on a DGX (one 25 GB/s card
        per GPU), or a fraction when fewer NICs than GPUs share the node
        (cloud-style instances).  The fat-tree is full-bisection, so
        per-flow inter-node bandwidth is NIC-limited, not tree-limited.
        """
        if self.same_node(rank_a, rank_b):
            return self.node.nvlink_bandwidth
        return min(
            self.node.ib_bandwidth_per_hca,
            self.node.inter_node_bandwidth_per_gpu(),
        )

    def link_latency(self, rank_a: int, rank_b: int) -> float:
        if self.same_node(rank_a, rank_b):
            return self.node.nvlink_latency
        hops = self.hop_count(rank_a, rank_b)
        return self.node.ib_latency * max(1, hops // 2)

    # -- graph / bisection --------------------------------------------------
    def build_graph(self) -> nx.Graph:
        """Fat-tree graph: node/leaf/spine/core vertices, capacity edges.

        Each compute node connects to its leaf switch with its aggregate
        IB bandwidth; uplinks are provisioned for full bisection.
        """
        g = nx.Graph()
        node_bw = self.node.total_ib_bandwidth
        num_leaves = -(-self.num_nodes // self.nodes_per_leaf)
        num_spine_groups = -(-num_leaves // self.leaves_per_spine_group)
        for nid in range(self.num_nodes):
            g.add_edge(f"node{nid}", f"leaf{self.leaf_of(nid)}", capacity=node_bw)
        for leaf in range(num_leaves):
            nodes_under = min(
                self.nodes_per_leaf, self.num_nodes - leaf * self.nodes_per_leaf
            )
            up = node_bw * nodes_under
            g.add_edge(
                f"leaf{leaf}",
                f"spine{leaf // self.leaves_per_spine_group}",
                capacity=up,
            )
        for sg in range(num_spine_groups):
            leaves_under = min(
                self.leaves_per_spine_group,
                num_leaves - sg * self.leaves_per_spine_group,
            )
            nodes_under = min(
                leaves_under * self.nodes_per_leaf,
                self.num_nodes - sg * self.leaves_per_spine_group * self.nodes_per_leaf,
            )
            g.add_edge(f"spine{sg}", "core", capacity=node_bw * max(nodes_under, 1))
        return g

    def bisection_bandwidth(self) -> float:
        """Min-cut bandwidth between the first and second half of nodes.

        Computed on the fat-tree graph with a super-source attached to
        nodes [0, n/2) and a super-sink attached to nodes [n/2, n).
        """
        if self.num_nodes == 1:
            # Bisection inside one node: NVSwitch, 4 GPUs vs 4 GPUs.
            return self.node.nvlink_bandwidth * (self.gpus_per_node // 2)
        g = self.build_graph()
        half = self.num_nodes // 2
        inf = float("inf")
        for nid in range(half):
            g.add_edge("SRC", f"node{nid}", capacity=inf)
        for nid in range(half, self.num_nodes):
            g.add_edge(f"node{nid}", "SNK", capacity=inf)
        value, _ = nx.minimum_cut(g, "SRC", "SNK", capacity="capacity")
        return value


@lru_cache(maxsize=None)
def selene(num_nodes: int = 384) -> ClusterTopology:
    """A Selene-like cluster of DGX A100 nodes (default: the paper's 384)."""
    return ClusterTopology(num_nodes=num_nodes)


def cluster_for_gpus(num_gpus: int, node: NodeSpec | None = None) -> ClusterTopology:
    """Smallest cluster holding ``num_gpus`` GPUs (last node may be partial
    in rank arithmetic, so we require divisibility for clarity)."""
    node = node or dgx_a100()
    if num_gpus < node.gpus_per_node:
        # Sub-node jobs still live on one node.
        return ClusterTopology(num_nodes=1, node=node)
    if num_gpus % node.gpus_per_node != 0:
        raise ValueError(
            f"num_gpus={num_gpus} is not a multiple of gpus_per_node="
            f"{node.gpus_per_node}"
        )
    return ClusterTopology(num_nodes=num_gpus // node.gpus_per_node, node=node)
