"""GPU device specifications.

The paper evaluates on NVIDIA 80-GB A100 GPUs (§5): 312 Tflop/s peak
with 16-bit precision, ~2.0 TB/s HBM bandwidth, 80 GB memory.  Specs are
plain dataclasses so alternative accelerators can be modelled (the
paper's discussion section notes the ideas are accelerator-agnostic).
"""

from __future__ import annotations

from dataclasses import dataclass

TFLOP = 1e12
GB = 1e9
TB = 1e12


@dataclass(frozen=True)
class DeviceSpec:
    """A single accelerator.

    Attributes
    ----------
    name:
        Device label.
    peak_flops:
        Peak throughput (FLOP/s) at the training precision.
    memory_bandwidth:
        Main-memory (HBM) bandwidth, bytes/s.
    memory_capacity:
        Device memory, bytes.
    kernel_launch_overhead:
        Fixed per-kernel overhead (seconds); dominates tiny GEMMs.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    memory_capacity: float
    kernel_launch_overhead: float = 4.0e-6

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")
        if self.memory_capacity <= 0:
            raise ValueError("memory_capacity must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point (FLOPs per byte) of this device."""
        return self.peak_flops / self.memory_bandwidth


def a100_80gb() -> DeviceSpec:
    """NVIDIA A100-SXM 80 GB (the paper's GPU): 312 Tflop/s fp16 peak."""
    return DeviceSpec(
        name="A100-80GB",
        peak_flops=312 * TFLOP,
        memory_bandwidth=2.039 * TB,
        memory_capacity=80 * GB,
    )


def v100_32gb() -> DeviceSpec:
    """NVIDIA V100 32 GB (used for the paper's GPT-3 '288 years' estimate)."""
    return DeviceSpec(
        name="V100-32GB",
        peak_flops=125 * TFLOP,
        memory_bandwidth=0.9 * TB,
        memory_capacity=32 * GB,
    )
