"""Hardware models: devices, nodes, cluster topology, roofline timing."""

from .device import GB, TB, TFLOP, DeviceSpec, a100_80gb, v100_32gb
from .node import NodeSpec, dgx_a100
from .roofline import ComputeModel, GemmShape
from .topology import ClusterTopology, cluster_for_gpus, selene

__all__ = [
    "GB",
    "TB",
    "TFLOP",
    "DeviceSpec",
    "a100_80gb",
    "v100_32gb",
    "NodeSpec",
    "dgx_a100",
    "ComputeModel",
    "GemmShape",
    "ClusterTopology",
    "cluster_for_gpus",
    "selene",
]
