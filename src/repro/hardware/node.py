"""Multi-GPU server (node) specifications.

The paper's cluster nodes are DGX A100s: 8 A100-80GB GPUs connected by
NVLink/NVSwitch (intra-node), and 8 Mellanox 200 Gbps HDR InfiniBand
HCAs for inter-node application communication (§5).  The per-node
aggregate IB bandwidth (8 x 25 GB/s) and the one-HCA-per-GPU pairing
matter for the scatter/gather optimization (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import GB, DeviceSpec, a100_80gb


@dataclass(frozen=True)
class NodeSpec:
    """A multi-GPU server.

    Attributes
    ----------
    device:
        The GPU installed in this node.
    gpus_per_node:
        GPUs per server (``g`` in Takeaway #1).
    nvlink_bandwidth:
        Per-GPU intra-node interconnect bandwidth, bytes/s each
        direction (NVLink3 through NVSwitch: 300 GB/s per direction).
    ib_bandwidth_per_hca:
        Bandwidth of one InfiniBand HCA, bytes/s (HDR 200 Gbps = 25 GB/s).
    num_ib_hcas:
        Number of application-facing IB cards (8 on DGX A100); storage
        HCAs are modelled separately by the filesystem model.
    nvlink_latency / ib_latency:
        Per-message latencies (alpha terms) in seconds.
    """

    device: DeviceSpec = field(default_factory=a100_80gb)
    gpus_per_node: int = 8
    nvlink_bandwidth: float = 300 * GB
    ib_bandwidth_per_hca: float = 25 * GB
    num_ib_hcas: int = 8
    nvlink_latency: float = 2.0e-6
    ib_latency: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.num_ib_hcas < 1:
            raise ValueError("num_ib_hcas must be >= 1")
        if self.nvlink_bandwidth <= 0 or self.ib_bandwidth_per_hca <= 0:
            raise ValueError("bandwidths must be positive")

    @property
    def total_ib_bandwidth(self) -> float:
        """Aggregate inter-node bandwidth of one server, bytes/s."""
        return self.ib_bandwidth_per_hca * self.num_ib_hcas

    def intra_node_bandwidth(self) -> float:
        return self.nvlink_bandwidth

    def inter_node_bandwidth_per_gpu(self) -> float:
        """Inter-node bandwidth available to one GPU when all GPUs on
        the node communicate simultaneously (one HCA per GPU on DGX)."""
        return self.total_ib_bandwidth / self.gpus_per_node


def dgx_a100() -> NodeSpec:
    """The paper's node: DGX A100 with 8x A100-80GB and 8x HDR IB."""
    return NodeSpec()
