"""Execution backends for the communication primitives.

A :class:`Backend` exposes the five primitives of
:mod:`repro.comm.primitives` behind one interface so the engine
(`ProcessGroups`, the schedule executor, ``PTDTrainer``, ZeRO-3) can
select *how* collectives execute without changing *what* they compute:

- :class:`CoopBackend` — the existing single-process cooperative path,
  kept verbatim as the bit-exact oracle.
- :class:`MpBackend` — every virtual rank of a group is a real OS
  process (:class:`~repro.comm.shm_ring.ShmWorkerPool`) moving bytes
  through ``multiprocessing.shared_memory`` numpy buffers with the
  standard ring algorithms.

The contract (asserted by ``repro verify --only backend`` and the
cross-backend test grid): for identical inputs both backends return
bit-identical arrays, raise the same validation errors, record the same
sanitizer events, and append the exact same §3.3.1 hop sequence to the
:class:`~repro.comm.traffic.TrafficLog` — ring all-reduce moves
``2(k-1)/k`` of the buffer per rank, all-gather/reduce-scatter
``(k-1)/k``, p2p the full size.  The mp backend achieves this by
keeping validation, sanitizer recording, span emission and traffic
accounting in the parent (replayed from the pure hop plans in
:mod:`repro.comm.primitives`) while the worker processes perform the
actual data movement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.obs.tracer import span as _obs_span
from repro.verify.sanitizer import record_collective as _sanitize

from . import primitives as _coop
from .primitives import (
    _check_group,
    _check_group_like,
    _check_ranks,
    _comm_span,
    ring_all_gather_hops,
    ring_all_reduce_hops,
    ring_reduce_scatter_hops,
)
from .shm_ring import ShmWorkerPool, create_segment, destroy_segment
from .traffic import TrafficKind

BACKENDS = ("coop", "mp")


class Backend(ABC):
    """Interface over the collective/p2p primitives."""

    name: str = "abstract"

    @abstractmethod
    def all_reduce(self, buffers, ranks, log=None,
                   kind=TrafficKind.OTHER, tag=""):
        ...

    @abstractmethod
    def all_gather(self, shards, ranks, log=None,
                   kind=TrafficKind.OTHER, tag="", axis=0):
        ...

    @abstractmethod
    def reduce_scatter(self, buffers, ranks, log=None,
                       kind=TrafficKind.OTHER, tag=""):
        ...

    @abstractmethod
    def broadcast(self, buffer, root, ranks, log=None,
                  kind=TrafficKind.OTHER, tag=""):
        ...

    @abstractmethod
    def send(self, buffer, src, dst, log=None,
             kind=TrafficKind.PIPELINE_P2P, tag=""):
        ...

    def close(self) -> None:
        """Release any real-process resources (no-op for coop)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class CoopBackend(Backend):
    """The single-process cooperative oracle — delegates verbatim."""

    name = "coop"

    def all_reduce(self, buffers, ranks, log=None,
                   kind=TrafficKind.OTHER, tag=""):
        return _coop.ring_all_reduce(buffers, ranks, log, kind, tag)

    def all_gather(self, shards, ranks, log=None,
                   kind=TrafficKind.OTHER, tag="", axis=0):
        return _coop.all_gather(shards, ranks, log, kind, tag, axis)

    def reduce_scatter(self, buffers, ranks, log=None,
                       kind=TrafficKind.OTHER, tag=""):
        return _coop.reduce_scatter(buffers, ranks, log, kind, tag)

    def broadcast(self, buffer, root, ranks, log=None,
                  kind=TrafficKind.OTHER, tag=""):
        return _coop.broadcast(buffer, root, ranks, log, kind, tag)

    def send(self, buffer, src, dst, log=None,
             kind=TrafficKind.PIPELINE_P2P, tag=""):
        return _coop.send(buffer, src, dst, log, kind, tag)


class MpBackend(Backend):
    """Real multi-process backend over shared-memory ring transfers.

    Keeps one persistent :class:`ShmWorkerPool` per distinct group size
    (created lazily, reused across collectives) plus a single-worker
    courier pool for p2p sends.  ``close()`` tears the pools down;
    segments are per-call and always unlinked in ``finally``.
    """

    name = "mp"

    def __init__(self, *, timeout: float | None = None):
        self._pools: dict[int, ShmWorkerPool] = {}
        self._timeout = timeout
        self._closed = False

    def _pool(self, size: int) -> ShmWorkerPool:
        if self._closed:
            raise RuntimeError("mp backend is closed")
        pool = self._pools.get(size)
        if pool is None:
            kwargs = {} if self._timeout is None else {"timeout": self._timeout}
            pool = ShmWorkerPool(size, **kwargs)
            self._pools[size] = pool
        return pool

    def close(self) -> None:
        self._closed = True
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    # -- collectives ---------------------------------------------------

    def all_reduce(self, buffers, ranks, log=None,
                   kind=TrafficKind.OTHER, tag=""):
        _check_group(buffers, ranks)
        _sanitize("all_reduce", ranks, np.asarray(buffers[0]).shape,
                  np.asarray(buffers[0]).dtype, tag)
        with _comm_span("all_reduce", ranks, kind, tag):
            k = len(ranks)
            if k == 1:
                return [buffers[0].copy()]
            shape, dtype = buffers[0].shape, buffers[0].dtype
            flats = [
                np.ascontiguousarray(b, dtype=np.float64).ravel()
                for b in buffers
            ]
            n = flats[0].size
            segs = [create_segment(n * 8) for _ in range(k)]
            try:
                for seg, flat in zip(segs, flats):
                    np.ndarray((n,), dtype=np.float64, buffer=seg.buf)[...] = flat
                names = [seg.name for seg in segs]
                self._pool(k).run("all_reduce", [(names, n, k)] * k)
                out = [
                    np.ndarray((n,), dtype=np.float64, buffer=seg.buf)
                    .copy().reshape(shape).astype(dtype)
                    for seg in segs
                ]
            finally:
                for seg in segs:
                    destroy_segment(seg)
            if log is not None:
                for si, di, nb in ring_all_reduce_hops(n, 8, k):
                    log.add(ranks[si], ranks[di], nb, kind, tag)
            return out

    def all_gather(self, shards, ranks, log=None,
                   kind=TrafficKind.OTHER, tag="", axis=0):
        _check_group_like(shards, ranks, axis)
        k = len(ranks)
        if k == 1:
            return _coop.all_gather(shards, ranks, log, kind, tag, axis)
        with _comm_span("all_gather", ranks, kind, tag):
            arrs = [np.asarray(s) for s in shards]
            ax = axis % arrs[0].ndim
            moved = [np.ascontiguousarray(np.moveaxis(a, ax, 0)) for a in arrs]
            lens = [m.shape[0] for m in moved]
            offsets = [0]
            for length in lens:
                offsets.append(offsets[-1] + length)
            rest = moved[0].shape[1:]
            full_moved_shape = (offsets[-1],) + rest
            dtype = arrs[0].dtype
            full_shape = list(arrs[0].shape)
            full_shape[ax] = offsets[-1]
            _sanitize("all_gather", ranks, tuple(full_shape), dtype, tag)
            nbytes = int(np.prod(full_moved_shape)) * dtype.itemsize
            segs = [create_segment(nbytes) for _ in range(k)]
            try:
                for j, seg in enumerate(segs):
                    view = np.ndarray(full_moved_shape, dtype=dtype, buffer=seg.buf)
                    view[offsets[j]:offsets[j + 1]] = moved[j]
                names = [seg.name for seg in segs]
                payload = (names, offsets, full_moved_shape, dtype.str, k)
                self._pool(k).run("all_gather", [payload] * k)
                out = []
                for seg in segs:
                    view = np.ndarray(full_moved_shape, dtype=dtype, buffer=seg.buf)
                    out.append(np.ascontiguousarray(np.moveaxis(view.copy(), 0, ax)))
            finally:
                for seg in segs:
                    destroy_segment(seg)
            if log is not None:
                hops = ring_all_gather_hops([a.nbytes for a in arrs])
                for si, di, nb in hops:
                    log.add(ranks[si], ranks[di], nb, kind, tag)
            return out

    def reduce_scatter(self, buffers, ranks, log=None,
                       kind=TrafficKind.OTHER, tag=""):
        _check_group(buffers, ranks)
        k = len(ranks)
        first = np.asarray(buffers[0])
        if first.ndim < 1:
            raise ValueError(
                "reduce_scatter needs buffers with at least 1 dimension to "
                "scatter along axis 0"
            )
        if first.shape[0] % k != 0:
            raise ValueError(
                f"reduce_scatter needs axis-0 ({first.shape[0]}) divisible "
                f"by group size ({k})"
            )
        if k == 1:
            return _coop.reduce_scatter(buffers, ranks, log, kind, tag)
        _sanitize("reduce_scatter", ranks, first.shape, first.dtype, tag)
        with _comm_span("reduce_scatter", ranks, kind, tag):
            dtype = first.dtype
            shape = first.shape
            rows = shape[0] // k
            slab_nbytes = int(np.prod((rows,) + tuple(shape[1:]))) * 8
            in_segs = [create_segment(first.size * 8) for _ in range(k)]
            out_segs = [create_segment(slab_nbytes) for _ in range(k)]
            try:
                for seg, b in zip(in_segs, buffers):
                    view = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
                    view[...] = np.asarray(b).astype(np.float64)
                in_names = [seg.name for seg in in_segs]
                payloads = [
                    (in_names, out_segs[r].name, tuple(shape), k)
                    for r in range(k)
                ]
                self._pool(k).run("reduce_scatter", payloads)
                out = []
                for seg in out_segs:
                    slab = np.ndarray((rows,) + tuple(shape[1:]),
                                      dtype=np.float64, buffer=seg.buf)
                    out.append(slab.copy().astype(dtype))
            finally:
                for seg in in_segs + out_segs:
                    destroy_segment(seg)
            if log is not None:
                hops = ring_reduce_scatter_hops(first.nbytes, k)
                for si, di, nb in hops:
                    log.add(ranks[si], ranks[di], nb, kind, tag)
            return out

    def broadcast(self, buffer, root, ranks, log=None,
                  kind=TrafficKind.OTHER, tag=""):
        _check_ranks(ranks)
        if root not in ranks:
            raise ValueError(f"root {root} not in group {ranks}")
        arr = np.asarray(buffer)
        _sanitize("broadcast", ranks, arr.shape, arr.dtype,
                  tag or f"root={root}")
        with _comm_span("broadcast", ranks, kind, tag):
            k = len(ranks)
            if k == 1:
                return [arr.copy()]
            root_idx = list(ranks).index(root)
            contig = np.ascontiguousarray(arr)
            src_seg = create_segment(contig.nbytes)
            out_segs = {
                i: create_segment(contig.nbytes)
                for i in range(k) if i != root_idx
            }
            try:
                np.ndarray(contig.shape, dtype=contig.dtype,
                           buffer=src_seg.buf)[...] = contig
                messages = []
                for i in range(k):
                    if i == root_idx:
                        messages.append(("noop", None))
                    else:
                        messages.append((
                            "copy",
                            (src_seg.name, out_segs[i].name, contig.nbytes),
                        ))
                self._pool(k).request(messages)
                out = []
                for i, r in enumerate(ranks):
                    if i == root_idx:
                        out.append(arr.copy())
                    else:
                        view = np.ndarray(contig.shape, dtype=contig.dtype,
                                          buffer=out_segs[i].buf)
                        out.append(view.copy())
                    if log is not None and r != root:
                        log.add(root, r, arr.nbytes, kind, tag)
            finally:
                for seg in [src_seg, *out_segs.values()]:
                    destroy_segment(seg)
            return out

    def send(self, buffer, src, dst, log=None,
             kind=TrafficKind.PIPELINE_P2P, tag=""):
        if src == dst:
            raise ValueError("p2p send requires distinct src and dst ranks")
        arr = np.asarray(buffer)
        _sanitize("send", (src, dst), arr.shape, arr.dtype, tag)
        with _obs_span(
            "send", phase=f"comm.{kind.value}", rank=src, dst=dst, tag=tag
        ):
            if log is not None:
                log.add(src, dst, arr.nbytes, kind, tag)
            contig = np.ascontiguousarray(arr)
            in_seg = create_segment(contig.nbytes)
            out_seg = create_segment(contig.nbytes)
            try:
                np.ndarray(contig.shape, dtype=contig.dtype,
                           buffer=in_seg.buf)[...] = contig
                self._pool(1).run(
                    "copy", [(in_seg.name, out_seg.name, contig.nbytes)]
                )
                view = np.ndarray(contig.shape, dtype=contig.dtype,
                                  buffer=out_seg.buf)
                out = view.copy()
            finally:
                destroy_segment(in_seg)
                destroy_segment(out_seg)
            return out


_COOP_SINGLETON = CoopBackend()


def get_backend(spec: str | Backend | None = None) -> Backend:
    """Resolve a backend spec (``"coop"``, ``"mp"``, a :class:`Backend`
    instance, or ``None`` for the coop default).

    ``"mp"`` returns a *fresh* :class:`MpBackend` — the caller owns its
    lifetime and should ``close()`` it (or use it as a context manager).
    """
    if spec is None:
        return _COOP_SINGLETON
    if isinstance(spec, Backend):
        return spec
    if spec == "coop":
        return _COOP_SINGLETON
    if spec == "mp":
        return MpBackend()
    raise ValueError(f"unknown backend {spec!r}; expected one of {BACKENDS}")
