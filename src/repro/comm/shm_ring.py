"""Shared-memory substrate for the multi-process ("mp") backend.

This module owns the two low-level pieces the mp backend is built on:

1. **Segment bookkeeping** — every ``multiprocessing.shared_memory``
   segment the backend creates is registered in a module-level table and
   unlinked on :func:`destroy_segment`, :func:`cleanup_all_segments`
   (also wired to ``atexit``), or abnormal teardown.  Segments carry a
   recognisable ``reproshm_`` name prefix so tests (and the chaos
   harness) can assert nothing leaked into ``/dev/shm``.

2. **ShmWorkerPool** — ``k`` real OS processes, one per virtual rank of
   a process group, that execute the standard ring algorithms over
   shared-memory numpy buffers.  The rings are *bit-identical* to the
   cooperative reference in :mod:`repro.comm.primitives`: the coop
   loops only ever read chunk slices that are disjoint from the slices
   written in the same ring step, so running the per-rank step bodies
   concurrently with a barrier between steps reproduces the exact same
   float64 operation sequence per element.

The parent process keeps all validation, sanitizer recording, span
emission and :class:`~repro.comm.traffic.TrafficLog` accounting (see
:mod:`repro.comm.backend`); the pool moves the bytes.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import os
import traceback
import uuid
from multiprocessing import shared_memory

import numpy as np

SEGMENT_PREFIX = "reproshm"

#: Default seconds a pool waits on a worker reply / ring barrier before
#: declaring the pool broken.  Generous: CI machines can be slow.
POOL_TIMEOUT = 120.0

_LIVE_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_seg_counter = itertools.count()


def _start_method() -> str:
    """Prefer fork (cheap, inherits the parent's modules); fall back."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a tracked shared-memory segment with our name prefix."""
    name = (
        f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_seg_counter)}_"
        f"{uuid.uuid4().hex[:8]}"
    )
    seg = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
    _LIVE_SEGMENTS[seg.name] = seg
    return seg


def destroy_segment(seg: shared_memory.SharedMemory) -> None:
    """Close and unlink a tracked segment (idempotent, tolerant)."""
    _LIVE_SEGMENTS.pop(seg.name, None)
    try:
        seg.close()
    except OSError:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass


def cleanup_all_segments() -> None:
    """Unlink every live segment this process created (atexit hook)."""
    for seg in list(_LIVE_SEGMENTS.values()):
        destroy_segment(seg)


def live_segment_names() -> list[str]:
    """Names of segments created here and not yet destroyed."""
    return sorted(_LIVE_SEGMENTS)


def leaked_dev_shm_segments() -> list[str]:
    """``/dev/shm`` entries carrying our prefix (should be empty when
    no backend is live) — the ground truth the leak tests assert on."""
    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


atexit.register(cleanup_all_segments)


def disable_child_shm_tracking() -> None:
    """Stop ``resource_tracker`` registration of shared memory in a
    *worker* process.

    Python 3.11's resource tracker registers a segment on every attach
    and unlinks it when the attaching process exits — which would tear
    segments out from under the parent (the well-known CPython
    gh-82300 behaviour; 3.13 grew ``track=False`` for this).  The
    parent owns segment lifetime here, so workers must not track.
    """
    from multiprocessing import resource_tracker

    orig = resource_tracker.register

    def register(name, rtype):  # pragma: no cover - runs in children
        if rtype == "shared_memory":
            return None
        return orig(name, rtype)

    resource_tracker.register = register


def ring_chunk_bounds(n: int, k: int) -> np.ndarray:
    """The chunk boundaries every ring implementation shares (the same
    ``np.linspace`` the coop reference uses, so chunk slices agree)."""
    return np.linspace(0, n, k + 1).astype(int)


def _pool_worker_main(rank: int, size: int, conn, barrier) -> None:
    """Event loop of one pool worker (real OS process, one virtual rank).

    Commands arrive as ``(op, payload)`` tuples; replies are
    ``("ok", result)`` or ``("err", traceback)``.  Ring ops synchronise
    steps with the pool barrier; on error the barrier is aborted so
    peers fail fast instead of deadlocking.
    """
    disable_child_shm_tracking()

    def attach(name: str) -> shared_memory.SharedMemory:
        return shared_memory.SharedMemory(name=name)

    def f64(seg: shared_memory.SharedMemory, n: int) -> np.ndarray:
        return np.ndarray((n,), dtype=np.float64, buffer=seg.buf)

    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):  # parent died
            return
        if op == "exit":
            conn.send(("ok", None))
            return
        if op == "noop":
            conn.send(("ok", None))
            continue
        segs: list[shared_memory.SharedMemory] = []
        try:
            if op == "all_reduce":
                # Bit-exact parallel transcription of the coop ring: the
                # coop loop body for dst rank ``r`` at step ``s`` touches
                # chunk(r-1-s) (phase 1) / chunk(r-s) (phase 2), and its
                # same-step reads are disjoint from same-step writes, so
                # a barrier per step reproduces the serial arithmetic.
                names, n, k = payload
                mine_seg, prev_seg = attach(names[rank]), attach(names[(rank - 1) % k])
                segs += [mine_seg, prev_seg]
                mine, prev = f64(mine_seg, n), f64(prev_seg, n)
                bounds = ring_chunk_bounds(n, k)

                def chunk(i: int) -> slice:
                    j = i % k
                    return slice(bounds[j], bounds[j + 1])

                for step in range(k - 1):  # phase 1: reduce-scatter
                    sl = chunk(rank - 1 - step)
                    mine[sl] += prev[sl]
                    barrier.wait(POOL_TIMEOUT)
                for step in range(k - 1):  # phase 2: all-gather
                    sl = chunk(rank - step)
                    mine[sl] = prev[sl]
                    barrier.wait(POOL_TIMEOUT)
            elif op == "all_gather":
                # Ring gather of row-slots inside equal full-size
                # segments; slot j of the (moveaxis'd) concatenation
                # lives at rows [offsets[j], offsets[j+1]).
                names, offsets, shape, dtype_str, k = payload
                mine_seg, prev_seg = attach(names[rank]), attach(names[(rank - 1) % k])
                segs += [mine_seg, prev_seg]
                dt = np.dtype(dtype_str)
                mine = np.ndarray(shape, dtype=dt, buffer=mine_seg.buf)
                prev = np.ndarray(shape, dtype=dt, buffer=prev_seg.buf)
                for step in range(k - 1):
                    j = (rank - 1 - step) % k
                    mine[offsets[j]:offsets[j + 1]] = prev[offsets[j]:offsets[j + 1]]
                    barrier.wait(POOL_TIMEOUT)
            elif op == "reduce_scatter":
                # Each rank pulls its own slab rows from every peer's
                # full buffer (real cross-process reads) and reduces
                # them with the same axis-0 ``np.sum`` tree the coop
                # reference applies to the full stack — elementwise the
                # reduction order depends only on k, so slab-local
                # summation is bit-identical.  No inter-worker writes,
                # hence no barriers.
                in_names, out_name, shape, k = payload
                rows = shape[0] // k
                sl = slice(rank * rows, (rank + 1) * rows)
                slabs = []
                for name in in_names:
                    seg = attach(name)
                    segs.append(seg)
                    full = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
                    slabs.append(full[sl])
                out_seg = attach(out_name)
                segs.append(out_seg)
                out = np.ndarray((rows,) + tuple(shape[1:]), dtype=np.float64,
                                 buffer=out_seg.buf)
                out[...] = np.sum(np.stack(slabs), axis=0)
            elif op == "copy":
                # broadcast fan-out / p2p courier: copy src -> my out.
                src_name, out_name, nbytes = payload
                src_seg, out_seg = attach(src_name), attach(out_name)
                segs += [src_seg, out_seg]
                out_seg.buf[:nbytes] = src_seg.buf[:nbytes]
            else:
                raise ValueError(f"unknown pool op {op!r}")
            conn.send(("ok", None))
        except Exception:
            try:
                barrier.abort()
            except Exception:
                pass
            conn.send(("err", traceback.format_exc()))
        finally:
            for seg in segs:
                try:
                    seg.close()
                except OSError:
                    pass


class ShmWorkerPool:
    """``size`` persistent worker processes executing ring collectives.

    One pool per group size; the mp backend keeps a small cache of them.
    The parent writes operands into shared segments, issues one command
    per worker, and reads results back once every worker acknowledged.
    """

    def __init__(self, size: int, *, timeout: float = POOL_TIMEOUT):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.timeout = timeout
        self._ctx = mp.get_context(_start_method())
        self._barrier = self._ctx.Barrier(size)
        self._conns = []
        self._procs = []
        self._closed = False
        for rank in range(size):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_pool_worker_main,
                args=(rank, size, child_conn, self._barrier),
                daemon=True,
                name=f"repro-shm-{size}-{rank}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def request(self, messages: list[tuple]) -> None:
        """Send one ``(op, payload)`` per worker; raise on any failure."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if len(messages) != self.size:
            raise ValueError(f"{len(messages)} messages for pool of {self.size}")
        for conn, msg in zip(self._conns, messages):
            conn.send(msg)
        errors = []
        for rank, conn in enumerate(self._conns):
            try:
                if not conn.poll(self.timeout):
                    raise TimeoutError(f"pool worker {rank} timed out")
                status, payload = conn.recv()
            except (EOFError, OSError, TimeoutError) as exc:
                self.close()
                raise RuntimeError(
                    f"shm pool worker {rank} died mid-collective: {exc}"
                ) from exc
            if status != "ok":
                errors.append(f"worker {rank}:\n{payload}")
        if errors:
            self._barrier.reset()
            raise RuntimeError("shm pool collective failed\n" + "\n".join(errors))

    def run(self, op: str, payloads: list) -> None:
        """Issue ``op`` to every worker with its per-rank payload."""
        self.request([(op, payload) for payload in payloads])

    def close(self) -> None:
        """Terminate workers (best effort) — segments are owned and
        unlinked by the caller / module registry, not by the pool."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
