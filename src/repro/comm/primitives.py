"""Collective and point-to-point primitives over virtual ranks.

These are the NCCL substitutes: each primitive takes the per-rank
buffers of one process group (a sequence of numpy arrays, index i
belonging to global rank ``ranks[i]``), really computes the collective
with the standard ring algorithm, and logs every hop's bytes to a
:class:`~repro.comm.traffic.TrafficLog`.

Because the parallel-training engine is single-process and synchronous
(see DESIGN.md), collectives are invoked once per group rather than once
per rank; the data movement and byte accounting are identical to the
per-rank formulation.

Byte-volume identities implemented (and tested against) §3.3.1/§3.2:

- ring all-reduce moves ``2 (k-1)/k * size`` bytes per rank,
- ring all-gather / reduce-scatter move ``(k-1)/k * size`` per rank,
- p2p send moves ``size``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.tracer import span as _obs_span
from repro.verify.sanitizer import record_collective as _sanitize

from .traffic import TrafficKind, TrafficLog


def _comm_span(name: str, ranks: Sequence[int], kind: TrafficKind, tag: str):
    """One span per collective, on the group-leader rank's track.

    Bytes are attached by the TrafficLog->tracer adapter, which credits
    every logged hop to the innermost open span -- i.e. exactly this
    one, so span byte totals equal the log's ground truth.  When no
    tracer is active this is a no-op context manager.
    """
    return _obs_span(
        name,
        phase=f"comm.{kind.value}",
        rank=ranks[0] if len(ranks) else 0,
        group=len(ranks),
        tag=tag,
    )


def _check_ranks(ranks: Sequence[int]) -> None:
    """The group checks every collective shares: non-empty, no dups."""
    if len(ranks) == 0:
        raise ValueError("empty process group")
    if len(set(ranks)) != len(ranks):
        raise ValueError(f"duplicate ranks in group: {ranks}")


def _check_group(buffers: Sequence[np.ndarray], ranks: Sequence[int]) -> None:
    """Group check for same-shape collectives (all_reduce/reduce_scatter):
    one buffer per rank, identical shape and dtype — validated up front
    with per-buffer diagnostics, the same contract
    :func:`_check_group_like` gives all_gather."""
    if len(buffers) != len(ranks):
        raise ValueError(
            f"{len(buffers)} buffers for {len(ranks)} ranks -- must match"
        )
    _check_ranks(ranks)
    first = np.asarray(buffers[0])
    for i, b in enumerate(buffers[1:], start=1):
        b = np.asarray(b)
        if b.dtype != first.dtype:
            raise ValueError(
                f"all group buffers must share dtype: buffer 0 is "
                f"{first.dtype}, buffer {i} is {b.dtype}"
            )
        if b.shape != first.shape:
            raise ValueError(
                f"all group buffers must share shape: buffer 0 has "
                f"{first.shape}, buffer {i} has {b.shape}"
            )


def ring_all_reduce(
    buffers: Sequence[np.ndarray],
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
) -> list[np.ndarray]:
    """Sum-all-reduce via reduce-scatter + all-gather rings.

    Returns new arrays (one per rank), all equal to the element-wise sum.
    Each rank sends ``2 (k-1)/k`` of the buffer size, the classic
    bandwidth-optimal ring volume the paper's §3.3.1 ``(d-1)/d`` scaling
    argument refers to.
    """
    _check_group(buffers, ranks)
    _sanitize("all_reduce", ranks, np.asarray(buffers[0]).shape,
              np.asarray(buffers[0]).dtype, tag)
    with _comm_span("all_reduce", ranks, kind, tag):
        k = len(ranks)
        if k == 1:
            return [buffers[0].copy()]
        flat = [
            np.ascontiguousarray(b, dtype=np.float64).ravel().copy()
            for b in buffers
        ]
        n = flat[0].size
        bounds = np.linspace(0, n, k + 1).astype(int)
        itemsize = flat[0].itemsize

        def chunk(i: int) -> slice:
            j = i % k
            return slice(bounds[j], bounds[j + 1])

        # Phase 1: reduce-scatter.  Step s: rank i sends chunk (i - s) to
        # rank i+1, which accumulates.
        for step in range(k - 1):
            for i in range(k):
                src, dst = i, (i + 1) % k
                sl = chunk(i - step)
                flat[dst][sl] += flat[src][sl]
                if log is not None:
                    log.add(
                        ranks[src],
                        ranks[dst],
                        (sl.stop - sl.start) * itemsize,
                        kind,
                        tag,
                    )
        # After phase 1, rank i holds the fully-reduced chunk (i + 1).
        # Phase 2: all-gather the reduced chunks around the ring.
        for step in range(k - 1):
            for i in range(k):
                src, dst = i, (i + 1) % k
                sl = chunk(i + 1 - step)
                flat[dst][sl] = flat[src][sl]
                if log is not None:
                    log.add(
                        ranks[src],
                        ranks[dst],
                        (sl.stop - sl.start) * itemsize,
                        kind,
                        tag,
                    )
        shape, dtype = buffers[0].shape, buffers[0].dtype
        return [f.reshape(shape).astype(dtype) for f in flat]


def all_gather(
    shards: Sequence[np.ndarray],
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
    axis: int = 0,
) -> list[np.ndarray]:
    """Ring all-gather: every rank ends with the concatenation (along
    ``axis``) of all shards, in group-rank order."""
    _check_group_like(shards, ranks, axis)
    with _comm_span("all_gather", ranks, kind, tag):
        k = len(ranks)
        full = np.concatenate([np.asarray(s) for s in shards], axis=axis)
        _sanitize("all_gather", ranks, full.shape, full.dtype, tag)
        if log is not None and k > 1:
            # Ring: each rank forwards each of the other k-1 shards once.
            for step in range(k - 1):
                for i in range(k):
                    src, dst = i, (i + 1) % k
                    moved = shards[(i - step) % k].nbytes
                    log.add(ranks[src], ranks[dst], moved, kind, tag)
        return [full.copy() for _ in range(k)]


def reduce_scatter(
    buffers: Sequence[np.ndarray],
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
) -> list[np.ndarray]:
    """Ring reduce-scatter along axis 0: rank i receives the i-th
    equal slab of the element-wise sum.  Requires axis-0 divisibility."""
    _check_group(buffers, ranks)
    k = len(ranks)
    first = np.asarray(buffers[0])
    if first.ndim < 1:
        raise ValueError(
            "reduce_scatter needs buffers with at least 1 dimension to "
            "scatter along axis 0"
        )
    if first.shape[0] % k != 0:
        raise ValueError(
            f"reduce_scatter needs axis-0 ({first.shape[0]}) divisible "
            f"by group size ({k})"
        )
    _sanitize("reduce_scatter", ranks, first.shape, first.dtype, tag)
    with _comm_span("reduce_scatter", ranks, kind, tag):
        total = np.sum([b.astype(np.float64) for b in buffers], axis=0)
        slabs = np.split(total, k, axis=0)
        if log is not None and k > 1:
            per_rank_bytes = buffers[0].nbytes // k
            for step in range(k - 1):
                for i in range(k):
                    log.add(
                        ranks[i], ranks[(i + 1) % k], per_rank_bytes, kind, tag
                    )
        return [s.astype(buffers[0].dtype) for s in slabs]


def broadcast(
    buffer: np.ndarray,
    root: int,
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
) -> list[np.ndarray]:
    """Broadcast from ``root`` (a global rank in ``ranks``) to the group."""
    _check_ranks(ranks)
    if root not in ranks:
        raise ValueError(f"root {root} not in group {ranks}")
    buffer = np.asarray(buffer)
    _sanitize("broadcast", ranks, buffer.shape, buffer.dtype,
              tag or f"root={root}")
    with _comm_span("broadcast", ranks, kind, tag):
        out = []
        for r in ranks:
            out.append(np.asarray(buffer).copy())
            if log is not None and r != root:
                log.add(root, r, buffer.nbytes, kind, tag)
        return out


def send(
    buffer: np.ndarray,
    src: int,
    dst: int,
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.PIPELINE_P2P,
    tag: str = "",
) -> np.ndarray:
    """Point-to-point transfer; returns the received array."""
    if src == dst:
        raise ValueError("p2p send requires distinct src and dst ranks")
    buffer = np.asarray(buffer)
    _sanitize("send", (src, dst), buffer.shape, buffer.dtype, tag)
    with _obs_span(
        "send", phase=f"comm.{kind.value}", rank=src, dst=dst, tag=tag
    ):
        if log is not None:
            log.add(src, dst, buffer.nbytes, kind, tag)
        return np.asarray(buffer).copy()


def ring_all_reduce_hops(
    n: int, itemsize: int, k: int
) -> list[tuple[int, int, int]]:
    """The exact ``(src_index, dst_index, nbytes)`` hop sequence
    :func:`ring_all_reduce` logs for a k-rank ring over ``n`` elements.

    Pure function of the ring geometry — the mp backend replays this
    plan into the parent's :class:`TrafficLog` while real processes move
    the bytes, and the conformance tests assert the coop log matches it
    record for record.
    """
    if k < 2:
        return []
    bounds = np.linspace(0, n, k + 1).astype(int)

    def chunk_bytes(i: int) -> int:
        j = i % k
        return int(bounds[j + 1] - bounds[j]) * itemsize

    hops = []
    for step in range(k - 1):  # phase 1: reduce-scatter
        for i in range(k):
            hops.append((i, (i + 1) % k, chunk_bytes(i - step)))
    for step in range(k - 1):  # phase 2: all-gather
        for i in range(k):
            hops.append((i, (i + 1) % k, chunk_bytes(i + 1 - step)))
    return hops


def ring_all_gather_hops(shard_nbytes: Sequence[int]) -> list[tuple[int, int, int]]:
    """Hop plan :func:`all_gather` logs: each rank forwards each of the
    other ``k-1`` shards once around the ring."""
    k = len(shard_nbytes)
    if k < 2:
        return []
    hops = []
    for step in range(k - 1):
        for i in range(k):
            hops.append((i, (i + 1) % k, int(shard_nbytes[(i - step) % k])))
    return hops


def ring_reduce_scatter_hops(
    buffer_nbytes: int, k: int
) -> list[tuple[int, int, int]]:
    """Hop plan :func:`reduce_scatter` logs: ``(k-1)`` steps of one
    slab (``nbytes/k``) per rank."""
    if k < 2:
        return []
    per_rank = buffer_nbytes // k
    hops = []
    for step in range(k - 1):
        for i in range(k):
            hops.append((i, (i + 1) % k, per_rank))
    return hops


def _check_group_like(
    shards: Sequence[np.ndarray], ranks: Sequence[int], axis: int = 0
) -> None:
    """Group check for shard collectives (all_gather): shards may
    differ along the concatenation ``axis`` but must agree on rank,
    every other dimension, and dtype — validated up front so a bad
    group fails with the same style of ValueError as ``_check_group``
    instead of an opaque numpy concatenate error."""
    if len(shards) != len(ranks):
        raise ValueError(
            f"{len(shards)} shards for {len(ranks)} ranks -- must match"
        )
    _check_ranks(ranks)
    first = np.asarray(shards[0])
    if not -first.ndim <= axis < first.ndim:
        raise ValueError(
            f"axis {axis} out of bounds for shards of rank {first.ndim}"
        )
    ax = axis % first.ndim if first.ndim else 0
    ref = list(first.shape)
    for i, s in enumerate(shards[1:], start=1):
        s = np.asarray(s)
        if s.dtype != first.dtype:
            raise ValueError(
                f"all shards must share dtype: shard 0 is {first.dtype}, "
                f"shard {i} is {s.dtype}"
            )
        if s.ndim != first.ndim:
            raise ValueError(
                f"all shards must share rank: shard 0 has {first.ndim} "
                f"dims, shard {i} has {s.ndim}"
            )
        got = list(s.shape)
        if ref[:ax] + ref[ax + 1:] != got[:ax] + got[ax + 1:]:
            raise ValueError(
                "shards must match on every non-concatenation axis: "
                f"shard 0 has shape {tuple(ref)}, shard {i} has "
                f"{tuple(got)} (concat axis {axis})"
            )
