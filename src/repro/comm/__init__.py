"""Communication substrate: collectives, process groups, traffic, cost."""

from .cost_model import CommCostModel
from .extras import all_to_all, barrier, gather, scatter
from .groups import ProcessGroups, RankCoord
from .primitives import (
    all_gather,
    broadcast,
    reduce_scatter,
    ring_all_reduce,
    send,
)
from .traffic import TrafficKind, TrafficLog, TransferRecord

__all__ = [
    "CommCostModel",
    "gather",
    "scatter",
    "all_to_all",
    "barrier",
    "ProcessGroups",
    "RankCoord",
    "ring_all_reduce",
    "all_gather",
    "reduce_scatter",
    "broadcast",
    "send",
    "TrafficKind",
    "TrafficLog",
    "TransferRecord",
]
