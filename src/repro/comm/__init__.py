"""Communication substrate: collectives, process groups, traffic, cost."""

from .backend import BACKENDS, Backend, CoopBackend, MpBackend, get_backend
from .cost_model import CommCostModel
from .extras import all_to_all, barrier, gather, scatter
from .groups import ProcessGroups, RankCoord
from .primitives import (
    all_gather,
    broadcast,
    reduce_scatter,
    ring_all_gather_hops,
    ring_all_reduce,
    ring_all_reduce_hops,
    ring_reduce_scatter_hops,
    send,
)
from .traffic import TrafficKind, TrafficLog, TransferRecord

__all__ = [
    "BACKENDS",
    "Backend",
    "CoopBackend",
    "MpBackend",
    "get_backend",
    "ring_all_reduce_hops",
    "ring_all_gather_hops",
    "ring_reduce_scatter_hops",
    "CommCostModel",
    "gather",
    "scatter",
    "all_to_all",
    "barrier",
    "ProcessGroups",
    "RankCoord",
    "ring_all_reduce",
    "all_gather",
    "reduce_scatter",
    "broadcast",
    "send",
    "TrafficKind",
    "TrafficLog",
    "TransferRecord",
]
