"""Byte-accurate communication traffic accounting.

Every primitive in :mod:`repro.comm.primitives` logs each point-to-point
transfer it performs (ring steps included) to a :class:`TrafficLog`.
The log is the ground truth for

- validating the paper's §3.2 communication-volume formulas
  (tensor parallelism moves ``8 b s h (t-1)/t`` bytes-worth of elements
  per layer per device; pipeline p2p moves ``b s h``), and
- the §5.9 effective-bisection-bandwidth experiment, which divides
  bytes crossing the cluster midpoint by the simulated time window.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.hardware import ClusterTopology
from repro.obs.tracer import record_transfer


class TrafficKind(enum.Enum):
    """What parallelism dimension a transfer belongs to."""

    TENSOR_PARALLEL = "tp"
    PIPELINE_P2P = "pp"
    DATA_PARALLEL = "dp"
    OTHER = "other"


@dataclass(frozen=True)
class TransferRecord:
    """One point-to-point transfer of ``nbytes`` from src to dst rank."""

    src: int
    dst: int
    nbytes: int
    kind: TrafficKind = TrafficKind.OTHER
    tag: str = ""

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.src < 0 or self.dst < 0:
            raise ValueError("ranks must be >= 0")


@dataclass
class TrafficLog:
    """Accumulates :class:`TransferRecord` entries."""

    records: list[TransferRecord] = field(default_factory=list)

    def add(
        self,
        src: int,
        dst: int,
        nbytes: int,
        kind: TrafficKind = TrafficKind.OTHER,
        tag: str = "",
    ) -> None:
        record = TransferRecord(src, dst, int(nbytes), kind, tag)
        self.records.append(record)
        # Adapter into repro.obs: attribute the transfer to any active
        # tracer (span + metrics); a no-op when tracing is off.
        record_transfer(record.nbytes, record.kind.value)

    def total_bytes(self, kind: TrafficKind | None = None) -> int:
        return sum(r.nbytes for r in self.records if kind is None or r.kind is kind)

    def by_tag(self, kind: TrafficKind | None = None) -> dict[str, int]:
        """Total bytes per tag (optionally restricted to one kind)."""
        out: dict[str, int] = defaultdict(int)
        for r in self.records:
            if kind is None or r.kind is kind:
                out[r.tag] += r.nbytes
        return dict(out)

    def bytes_by_kind(self) -> dict[TrafficKind, int]:
        """Total bytes per traffic kind (the §3 decomposition axis)."""
        out: dict[TrafficKind, int] = defaultdict(int)
        for r in self.records:
            out[r.kind] += r.nbytes
        return dict(out)

    def bytes_sent_by_rank(self, kind: TrafficKind | None = None) -> dict[int, int]:
        out: dict[int, int] = defaultdict(int)
        for r in self.records:
            if kind is None or r.kind is kind:
                out[r.src] += r.nbytes
        return dict(out)

    def inter_node_bytes(
        self, topology: ClusterTopology, kind: TrafficKind | None = None
    ) -> int:
        """Bytes that traversed InfiniBand (src and dst on different nodes)."""
        return sum(
            r.nbytes
            for r in self.records
            if (kind is None or r.kind is kind)
            and not topology.same_node(r.src, r.dst)
        )

    def intra_node_bytes(
        self, topology: ClusterTopology, kind: TrafficKind | None = None
    ) -> int:
        return sum(
            r.nbytes
            for r in self.records
            if (kind is None or r.kind is kind) and topology.same_node(r.src, r.dst)
        )

    def bisection_bytes(
        self, topology: ClusterTopology, kind: TrafficKind | None = None
    ) -> int:
        """Bytes crossing the node-halves midpoint (for §5.9)."""
        half = topology.num_nodes // 2

        def side(rank: int) -> int:
            return 0 if topology.node_of(rank) < half else 1

        return sum(
            r.nbytes
            for r in self.records
            if (kind is None or r.kind is kind) and side(r.src) != side(r.dst)
        )

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
