"""Megatron's process-group layout over the (p, t, d) rank grid.

Global rank assignment follows Megatron-LM's ``initialize_model_parallel``:

    global_rank = pp_rank * (t * d) + dp_rank * t + tp_rank

i.e. tensor-parallel ranks are *contiguous* -- with t = 8 on 8-GPU nodes
they land on one server (Takeaway #1: tensor parallelism stays inside
the NVLink domain); consecutive pipeline stages land on different nodes
and communicate over InfiniBand.  Data-parallel peers share (pp, tp)
coordinates and sit at stride t.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ParallelConfig


@dataclass(frozen=True)
class RankCoord:
    """Position of a global rank in the 3-D parallel grid."""

    pp: int
    dp: int
    tp: int


class ProcessGroups:
    """All tensor/data/pipeline groups for a :class:`ParallelConfig`.

    ``backend`` selects how collectives over these groups execute
    (``"coop"`` single-process oracle or ``"mp"`` real processes, see
    :mod:`repro.comm.backend`); the rank arithmetic itself is
    backend-independent.  The spec is resolved lazily so constructing
    groups for analytic models stays free.
    """

    def __init__(self, parallel: ParallelConfig, backend: str = "coop"):
        from .backend import BACKENDS, Backend

        self.parallel = parallel
        self.p = parallel.pipeline_parallel_size
        self.t = parallel.tensor_parallel_size
        self.d = parallel.data_parallel_size
        self.world_size = parallel.world_size
        if not isinstance(backend, Backend) and backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend_spec = backend
        self._backend = backend if isinstance(backend, Backend) else None

    @property
    def backend(self):
        """The resolved :class:`~repro.comm.backend.Backend` instance."""
        if self._backend is None:
            from .backend import get_backend

            self._backend = get_backend(self.backend_spec)
        return self._backend

    # -- coordinate transforms -------------------------------------------
    def rank_of(self, pp: int, dp: int, tp: int) -> int:
        self._check(pp, self.p, "pp")
        self._check(dp, self.d, "dp")
        self._check(tp, self.t, "tp")
        return pp * (self.t * self.d) + dp * self.t + tp

    def coord_of(self, rank: int) -> RankCoord:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")
        pp, rem = divmod(rank, self.t * self.d)
        dp, tp = divmod(rem, self.t)
        return RankCoord(pp=pp, dp=dp, tp=tp)

    # -- groups ------------------------------------------------------------
    def tensor_group(self, pp: int, dp: int) -> list[int]:
        """The t ranks that jointly hold one layer's tensor shards."""
        return [self.rank_of(pp, dp, tp) for tp in range(self.t)]

    def data_group(self, pp: int, tp: int) -> list[int]:
        """The d ranks holding replicas of the same model shard."""
        return [self.rank_of(pp, dp, tp) for dp in range(self.d)]

    def pipeline_group(self, dp: int, tp: int) -> list[int]:
        """The p ranks forming one pipeline, first stage to last."""
        return [self.rank_of(pp, dp, tp) for pp in range(self.p)]

    def all_tensor_groups(self) -> list[list[int]]:
        return [
            self.tensor_group(pp, dp)
            for pp in range(self.p)
            for dp in range(self.d)
        ]

    def all_data_groups(self) -> list[list[int]]:
        return [
            self.data_group(pp, tp)
            for pp in range(self.p)
            for tp in range(self.t)
        ]

    def all_pipeline_groups(self) -> list[list[int]]:
        return [
            self.pipeline_group(dp, tp)
            for dp in range(self.d)
            for tp in range(self.t)
        ]

    def pipeline_peer(self, rank: int, direction: int) -> int | None:
        """Next (+1) or previous (-1) pipeline-stage rank, or None at
        the pipeline's ends."""
        if direction not in (-1, 1):
            raise ValueError("direction must be +1 or -1")
        c = self.coord_of(rank)
        pp = c.pp + direction
        if not 0 <= pp < self.p:
            return None
        return self.rank_of(pp, c.dp, c.tp)

    @staticmethod
    def _check(value: int, bound: int, name: str) -> None:
        if not 0 <= value < bound:
            raise ValueError(f"{name} rank {value} out of range [0, {bound})")
