"""Alpha-beta communication time models over the cluster topology.

Used by the discrete-event simulator to price the transfers the
primitives perform.  Ring collectives are priced at the classic
bandwidth-optimal volumes with the ring's *bottleneck* link setting the
bandwidth term -- for a tensor-parallel group inside one node that is
NVLink; for a data-parallel group spanning nodes it is one InfiniBand
HCA, which is exactly why the paper keeps tensor parallelism intra-node
(Takeaway #1).

The scatter/gather optimization (§4.1) is modelled in
:meth:`CommCostModel.pipeline_p2p_time`: with ``t`` tensor-parallel
ranks per stage, the tensor is split ``t`` ways so each IB card carries
``bytes / t``, followed by an NVLink all-gather to rematerialize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware import ClusterTopology


@dataclass(frozen=True)
class CommCostModel:
    """Prices communication operations on a :class:`ClusterTopology`.

    ``bandwidth_derate`` scales every bandwidth term (NVLink, IB, all
    collectives and p2p alike) to model degraded interconnect health —
    the :mod:`repro.resilience.faults` link-degradation injector sets
    it from a fault plan.  Latency (alpha) terms are unaffected: a
    congested or flapping link loses throughput, not propagation time.
    """

    topology: ClusterTopology
    bandwidth_derate: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_derate <= 1:
            raise ValueError(
                f"bandwidth_derate must be in (0, 1], got {self.bandwidth_derate}"
            )

    def _bw(self, nominal: float) -> float:
        """Effective bandwidth of a link with nominal rate ``nominal``."""
        return nominal * self.bandwidth_derate

    # -- point-to-point ---------------------------------------------------
    def p2p_time(self, src: int, dst: int, nbytes: float) -> float:
        """One send: latency + bytes / link bandwidth."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if src == dst:
            return 0.0
        bw = self._bw(self.topology.link_bandwidth(src, dst))
        return self.topology.link_latency(src, dst) + nbytes / bw

    def pipeline_p2p_time(
        self,
        src: int,
        dst: int,
        nbytes: float,
        tensor_parallel_size: int = 1,
        scatter_gather: bool = False,
    ) -> float:
        """Send one stage-boundary tensor between pipeline peers.

        Without the optimization every tensor-parallel rank redundantly
        sends the full ``nbytes`` over its own link (we price one send;
        the peers' copies travel concurrently on their own HCAs).

        With ``scatter_gather=True`` (§4.1) the sender scatters into
        ``t`` chunks, so only ``nbytes / t`` crosses InfiniBand, and the
        receiver all-gathers the chunks over NVLink.  Intra-node pipeline
        links gain nothing (NVLink is not the bottleneck), so the
        optimization is only applied on inter-node hops, as in the paper.
        """
        if tensor_parallel_size < 1:
            raise ValueError("tensor_parallel_size must be >= 1")
        if not scatter_gather or tensor_parallel_size == 1:
            return self.p2p_time(src, dst, nbytes)
        if self.topology.same_node(src, dst):
            return self.p2p_time(src, dst, nbytes)
        t = tensor_parallel_size
        ib_time = self.p2p_time(src, dst, nbytes / t)
        # NVLink all-gather of the other (t-1)/t of the tensor.
        nvlink_bw = self._bw(self.topology.node.nvlink_bandwidth)
        gather_time = (
            self.topology.node.nvlink_latency * (t - 1)
            + (nbytes * (t - 1) / t) / nvlink_bw
        )
        return ib_time + gather_time

    # -- collectives --------------------------------------------------------
    def _group_geometry(self, ranks: Sequence[int]) -> tuple[int, int]:
        """(members per node, number of nodes) for a group.

        Groups built from the Megatron rank grid are node-symmetric
        (every node hosts the same number of members); we take the
        minimum for safety with irregular groups.
        """
        counts: dict[int, int] = {}
        for r in ranks:
            node = self.topology.node_of(r)
            counts[node] = counts.get(node, 0) + 1
        return min(counts.values()), len(counts)

    def _phase_times(
        self, ranks: Sequence[int], nbytes: float, channels: int | None = None
    ) -> tuple[float, float]:
        """(intra-node, inter-node) time of one ring traversal of
        ``nbytes`` (the reduce-scatter *or* all-gather half).

        Models NCCL's hierarchical rings: inside a node the ring runs on
        NVLink; across nodes each node drives up to ``channels`` IB HCAs
        (bounded by its group members -- one HCA per GPU on a DGX), so
        the inter-node bandwidth is ``min(g, channels) * hca_bw`` capped
        at the node's total.  Large fused buffers (data-parallel gradient
        all-reduce) saturate all HCAs; small latency-bound per-layer
        collectives (tensor parallelism across nodes) run on few NCCL
        channels -- callers pass ``channels`` accordingly.
        """
        k = len(ranks)
        node = self.topology.node
        g, num_nodes = self._group_geometry(ranks)
        intra = inter = 0.0
        if g > 1:
            intra = (
                (g - 1) * node.nvlink_latency
                + (g - 1) / g * nbytes / self._bw(node.nvlink_bandwidth)
            )
        if num_nodes > 1:
            lanes = g if channels is None else min(g, channels)
            bw = self._bw(
                min(lanes * node.ib_bandwidth_per_hca, node.total_ib_bandwidth)
            )
            inter = (
                (num_nodes - 1) * node.ib_latency
                + (num_nodes - 1) / num_nodes * nbytes / bw
            )
        if g == 1 and num_nodes == 1 and k > 1:
            # Degenerate: multiple ranks mapped to one GPU's node slot
            # cannot happen with distinct ranks; keep NVLink ring.
            intra = (
                (k - 1) * node.nvlink_latency
                + (k - 1) / k * nbytes / self._bw(node.nvlink_bandwidth)
            )
        return intra, inter

    def all_reduce_time(
        self, ranks: Sequence[int], nbytes: float, channels: int | None = None
    ) -> float:
        """Hierarchical ring all-reduce: reduce-scatter + all-gather.

        The ``(k-1)/k`` volume factors per phase are the §3.3.1 scaling
        argument: ring all-reduce time approaches a constant as the
        group grows.  ``channels`` caps the inter-node HCA fan-out (see
        :meth:`_phase_times`).
        """
        self._check(ranks, nbytes)
        if len(ranks) == 1:
            return 0.0
        intra, inter = self._phase_times(ranks, nbytes, channels)
        return 2 * (intra + inter)

    def all_gather_time(
        self, ranks: Sequence[int], nbytes: float, channels: int | None = None
    ) -> float:
        """Hierarchical ring all-gather of a full output of ``nbytes``.

        ``channels=1`` models a flat ring (each rank ingests through a
        single HCA), the pattern of non-hierarchical implementations.
        """
        self._check(ranks, nbytes)
        if len(ranks) == 1:
            return 0.0
        intra, inter = self._phase_times(ranks, nbytes, channels)
        return intra + inter

    def reduce_scatter_time(
        self, ranks: Sequence[int], nbytes: float, channels: int | None = None
    ) -> float:
        """Hierarchical ring reduce-scatter of a ``nbytes`` input."""
        return self.all_gather_time(ranks, nbytes, channels)

    def broadcast_time(self, ranks: Sequence[int], nbytes: float) -> float:
        """Pipelined ring broadcast ~ one traversal of the buffer."""
        self._check(ranks, nbytes)
        k = len(ranks)
        if k == 1:
            return 0.0
        g, num_nodes = self._group_geometry(ranks)
        node = self.topology.node
        if num_nodes == 1:
            return (k - 1) * node.nvlink_latency + nbytes / self._bw(
                node.nvlink_bandwidth
            )
        bw = self._bw(min(g * node.ib_bandwidth_per_hca, node.total_ib_bandwidth))
        return (num_nodes - 1) * node.ib_latency + nbytes / bw

    @staticmethod
    def _check(ranks: Sequence[int], nbytes: float) -> None:
        if len(ranks) == 0:
            raise ValueError("empty process group")
        if len(set(ranks)) != len(ranks):
            raise ValueError("duplicate ranks in group")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
