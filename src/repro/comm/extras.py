"""Additional collectives completing the NCCL-substitute surface.

The core PTD-P path needs only all-reduce / all-gather / reduce-scatter
/ p2p, but a complete communication substrate (and the ZeRO/MoE-style
extensions built on it) also uses gather-to-root, scatter-from-root,
all-to-all, and barriers.  Same contract as
:mod:`repro.comm.primitives`: real numpy data movement per group call,
every transfer logged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .traffic import TrafficKind, TrafficLog


def gather(
    shards: Sequence[np.ndarray],
    root: int,
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
    axis: int = 0,
) -> np.ndarray:
    """Gather shards to ``root``; returns the concatenated array."""
    _check(shards, ranks)
    if root not in ranks:
        raise ValueError(f"root {root} not in group {ranks}")
    if log is not None:
        for r, s in zip(ranks, shards):
            if r != root:
                log.add(r, root, s.nbytes, kind, tag)
    return np.concatenate([np.asarray(s) for s in shards], axis=axis)


def scatter(
    full: np.ndarray,
    root: int,
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
    axis: int = 0,
) -> list[np.ndarray]:
    """Split ``full`` into len(ranks) equal slabs; slab i goes to rank i."""
    if len(ranks) == 0 or len(set(ranks)) != len(ranks):
        raise ValueError("invalid process group")
    if root not in ranks:
        raise ValueError(f"root {root} not in group {ranks}")
    if full.shape[axis] % len(ranks) != 0:
        raise ValueError(
            f"axis {axis} ({full.shape[axis]}) not divisible by group size "
            f"{len(ranks)}"
        )
    slabs = np.split(np.asarray(full), len(ranks), axis=axis)
    if log is not None:
        for r, s in zip(ranks, slabs):
            if r != root:
                log.add(root, r, s.nbytes, kind, tag)
    return [s.copy() for s in slabs]


def all_to_all(
    chunks: Sequence[Sequence[np.ndarray]],
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    kind: TrafficKind = TrafficKind.OTHER,
    tag: str = "",
) -> list[list[np.ndarray]]:
    """Personalized exchange: ``chunks[i][j]`` travels from rank i to j.

    Returns ``out`` with ``out[j][i] == chunks[i][j]`` (each rank ends
    with one chunk from every peer, in group-rank order) -- the
    expert-parallel / sequence-resharding primitive.
    """
    k = len(ranks)
    if len(chunks) != k:
        raise ValueError(f"{len(chunks)} chunk rows for {k} ranks")
    for i, row in enumerate(chunks):
        if len(row) != k:
            raise ValueError(f"rank {i} provides {len(row)} chunks, need {k}")
    if len(set(ranks)) != k or k == 0:
        raise ValueError("invalid process group")
    out: list[list[np.ndarray]] = [[None] * k for _ in range(k)]  # type: ignore
    for i in range(k):
        for j in range(k):
            arr = np.asarray(chunks[i][j]).copy()
            out[j][i] = arr
            if log is not None and i != j:
                log.add(ranks[i], ranks[j], arr.nbytes, kind, tag)
    return out


def barrier(
    ranks: Sequence[int],
    log: TrafficLog | None = None,
    tag: str = "barrier",
) -> None:
    """Synchronization point: logs the ring's zero-byte token pass.

    In the single-process engine a barrier is a no-op for ordering (the
    scheduler is already sequential); it exists so traffic traces show
    where synchronization happens and cost models can charge latency.
    """
    if len(ranks) == 0 or len(set(ranks)) != len(ranks):
        raise ValueError("invalid process group")
    if log is not None and len(ranks) > 1:
        for i in range(len(ranks)):
            log.add(ranks[i], ranks[(i + 1) % len(ranks)], 0,
                    TrafficKind.OTHER, tag)


def _check(shards: Sequence[np.ndarray], ranks: Sequence[int]) -> None:
    if len(shards) != len(ranks):
        raise ValueError(f"{len(shards)} shards for {len(ranks)} ranks")
    if len(ranks) == 0 or len(set(ranks)) != len(ranks):
        raise ValueError("invalid process group")
