"""Declarative fault plans and their injection hooks.

At 3072-GPU scale failures are routine (the paper's §5.10 quantifies
checkpoint I/O precisely because of them; MegaScale makes fault
tolerance the headline production concern), so the repro must be able
to *model* a run under faults, not only a healthy one.  This module is
the declarative half: a :class:`FaultPlan` lists what goes wrong and
when, in units of committed training iterations.

Three fault species are modelled:

- :class:`RankFailure` — a rank dies once global progress reaches
  iteration ``at_iteration``; the job restarts from the last checkpoint
  (handled by :mod:`repro.resilience.recovery` /
  :mod:`repro.resilience.goodput`).
- :class:`LinkDegradation` — the interconnect delivers only ``factor``
  of its nominal bandwidth over an iteration window (a flapping IB
  link, a congested spine).  Injected into the
  :class:`~repro.comm.cost_model.CommCostModel` via its
  ``bandwidth_derate`` knob.
- :class:`Straggler` — one rank computes ``slowdown`` x slower over a
  window (thermal throttling, a sick HBM stack).  Training is
  synchronous, so the slowest rank paces every iteration: the
  simulator applies the multiplier to compute (and optimizer) time via
  ``SimOptions.compute_slowdown``.

The injectors at the bottom translate the plan into the knobs the
discrete-event simulator and the comm cost model already expose, so a
faulted iteration is priced by exactly the same machinery as a healthy
one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.comm.cost_model import CommCostModel
    from repro.config import GPTConfig, ParallelConfig
    from repro.sim.trainer_sim import SimOptions


@dataclass(frozen=True)
class RankFailure:
    """A rank dies when committed progress reaches ``at_iteration``.

    ``at_iteration`` counts *committed* iterations: the failure strikes
    after that many iterations of useful work exist, before the next
    one runs (and after any checkpoint scheduled at the same boundary
    has been written).  Any rank death forces a full-job restart — the
    synchronous PTD-P job cannot continue around a hole — so ``rank``
    is informational (it labels the trace span).
    """

    at_iteration: int
    rank: int = 0

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration must be >= 0, got {self.at_iteration}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class LinkDegradation:
    """Interconnect bandwidth drops to ``factor`` of nominal over
    ``[start_iteration, end_iteration)`` (``end_iteration=None`` means
    for the rest of the run)."""

    factor: float
    start_iteration: int = 0
    end_iteration: int | None = None

    def __post_init__(self) -> None:
        if not 0 < self.factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        _check_window(self.start_iteration, self.end_iteration)

    def active_at(self, iteration: int) -> bool:
        return _in_window(iteration, self.start_iteration, self.end_iteration)


@dataclass(frozen=True)
class Straggler:
    """One rank computes ``slowdown`` x slower over the window."""

    slowdown: float
    rank: int = 0
    start_iteration: int = 0
    end_iteration: int | None = None

    def __post_init__(self) -> None:
        if self.slowdown < 1:
            raise ValueError(
                f"slowdown must be >= 1, got {self.slowdown}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        _check_window(self.start_iteration, self.end_iteration)

    def active_at(self, iteration: int) -> bool:
        return _in_window(iteration, self.start_iteration, self.end_iteration)


def _check_window(start: int, end: int | None) -> None:
    if start < 0:
        raise ValueError(f"start_iteration must be >= 0, got {start}")
    if end is not None and end <= start:
        raise ValueError(
            f"end_iteration ({end}) must be > start_iteration ({start})"
        )


def _in_window(iteration: int, start: int, end: int | None) -> bool:
    return iteration >= start and (end is None or iteration < end)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong during one modelled training run.

    Failures are kept sorted by ``at_iteration`` (the goodput simulator
    consumes them in progress order); degradations and stragglers are
    window queries.
    """

    failures: tuple[RankFailure, ...] = ()
    degradations: tuple[LinkDegradation, ...] = ()
    stragglers: tuple[Straggler, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "failures",
            tuple(sorted(self.failures, key=lambda f: f.at_iteration)),
        )
        object.__setattr__(self, "degradations", tuple(self.degradations))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))

    # -- queries -----------------------------------------------------------
    def bandwidth_factor(self, iteration: int) -> float:
        """Combined bandwidth factor at ``iteration`` (degradations on
        independent links compound multiplicatively)."""
        factor = 1.0
        for d in self.degradations:
            if d.active_at(iteration):
                factor *= d.factor
        return factor

    def compute_slowdown(self, iteration: int) -> float:
        """Effective compute slowdown at ``iteration``.

        Training is synchronous, so the *slowest* straggler paces the
        whole job: take the max, not the product.
        """
        active = [
            s.slowdown for s in self.stragglers if s.active_at(iteration)
        ]
        return max(active, default=1.0)

    def failure_iterations(self) -> tuple[int, ...]:
        return tuple(f.at_iteration for f in self.failures)

    @property
    def is_healthy(self) -> bool:
        return not (self.failures or self.degradations or self.stragglers)


# -- injectors --------------------------------------------------------------

def degrade_cost_model(comm: "CommCostModel", factor: float) -> "CommCostModel":
    """A copy of ``comm`` with its bandwidth derated by ``factor``.

    Composes with any derate already present (a plan-level degradation
    on top of a baseline 0.9-efficiency model multiplies, it does not
    overwrite).
    """
    if not 0 < factor <= 1:
        raise ValueError(f"factor must be in (0, 1], got {factor}")
    return replace(comm, bandwidth_derate=comm.bandwidth_derate * factor)


def options_with_faults(
    options: "SimOptions", plan: FaultPlan, iteration: int
) -> "SimOptions":
    """Simulator options for one iteration under ``plan``.

    Folds the plan's active bandwidth factor and straggler slowdown
    into ``options`` (multiplying, so caller-supplied derates compose).
    """
    return replace(
        options,
        bandwidth_derate=(
            options.bandwidth_derate * plan.bandwidth_factor(iteration)
        ),
        compute_slowdown=(
            options.compute_slowdown * plan.compute_slowdown(iteration)
        ),
    )


def fault_regimes(
    plan: FaultPlan, total_iterations: int
) -> list[tuple[int, int, float, float]]:
    """Partition ``[0, total_iterations)`` into maximal constant-fault
    segments ``(start, end, compute_slowdown, bandwidth_factor)``.

    The goodput pipeline prices one simulated iteration per distinct
    ``(slowdown, factor)`` pair instead of one per iteration, which is
    what makes plan-driven pricing affordable for multi-thousand-
    iteration runs.
    """
    if total_iterations < 1:
        raise ValueError(
            f"total_iterations must be >= 1, got {total_iterations}"
        )
    boundaries = {0, total_iterations}
    for w in (*plan.degradations, *plan.stragglers):
        if w.start_iteration < total_iterations:
            boundaries.add(w.start_iteration)
        if w.end_iteration is not None and w.end_iteration < total_iterations:
            boundaries.add(w.end_iteration)
    edges = sorted(boundaries)
    segments = []
    for start, end in zip(edges, edges[1:]):
        segments.append(
            (
                start,
                end,
                plan.compute_slowdown(start),
                plan.bandwidth_factor(start),
            )
        )
    return segments


def faulted_iteration_seconds(
    model: "GPTConfig",
    parallel: "ParallelConfig",
    plan: FaultPlan,
    total_iterations: int,
    *,
    options: "SimOptions | None" = None,
    node=None,
    topology=None,
) -> list[float]:
    """Per-iteration durations for a run of ``total_iterations`` under
    ``plan``, priced by the discrete-event simulator.

    One :func:`~repro.sim.simulate_iteration` call per distinct fault
    regime (cached by ``(slowdown, factor)``), expanded to a flat
    per-iteration list the goodput simulator can index by progress.
    """
    from repro.sim.trainer_sim import SimOptions, simulate_iteration

    options = options or SimOptions()
    times = [0.0] * total_iterations
    cache: dict[tuple[float, float], float] = {}
    for start, end, slowdown, factor in fault_regimes(plan, total_iterations):
        key = (
            options.compute_slowdown * slowdown,
            options.bandwidth_derate * factor,
        )
        if key not in cache:
            opts = replace(
                options, compute_slowdown=key[0], bandwidth_derate=key[1]
            )
            cache[key] = simulate_iteration(
                model, parallel, options=opts, node=node, topology=topology
            ).iteration_time
        for i in range(start, end):
            times[i] = cache[key]
    return times
