"""Fault injection, failure recovery, and goodput modelling.

The production-robustness arm of the reproduction: the paper's §5.10
prices checkpoint I/O because at 3072-GPU scale failures are routine,
and MegaScale (Jiang et al., 2024) makes detect / restart-from-
checkpoint / goodput the defining concern beyond raw PTD-P throughput.

- :mod:`repro.resilience.faults` — declarative
  :class:`~repro.resilience.faults.FaultPlan` (rank failures, link
  degradation, stragglers) plus injectors into the discrete-event
  simulator and the comm cost model;
- :mod:`repro.resilience.detect` — heartbeat/timeout detection
  latency;
- :mod:`repro.resilience.recovery` — restart-from-last-checkpoint
  policy priced by :mod:`repro.io_sim`, and the Young/Daly optimal
  checkpoint interval;
- :mod:`repro.resilience.goodput` — exact event-accounted
  :class:`~repro.resilience.goodput.GoodputReport` for a run under a
  failure trace (exported through :mod:`repro.obs`), the steady-state
  expectation, and the checkpoint-interval sweep behind
  ``python -m repro goodput``;
- :mod:`repro.resilience.chaos` — declarative
  :class:`~repro.resilience.chaos.ChaosPlan`, the *live* twin of
  ``FaultPlan``: kills, checkpoint corruption, and transient save
  failures injected into the real engine;
- :mod:`repro.resilience.harness` — supervised
  :class:`~repro.resilience.harness.ChaosHarness` that trains through a
  chaos plan with durable checkpoints, retries, fallback, and optional
  resharding, behind ``python -m repro chaos``;
- :mod:`repro.resilience.serve_chaos` — the *serving* twin:
  :class:`~repro.resilience.serve_chaos.ServeChaosPlan` injects decode
  crashes, KV-block corruption, and allocator-exhaustion storms into
  the continuous-batching engine (``repro serve --chaos``), recovered
  by capped-exponential-backoff recompute retries.
"""

from .chaos import (
    ChaosPlan,
    CorruptCheckpoint,
    Kill,
    LossSpike,
    RankFailureError,
    SaveFailure,
    Stall,
    TransientSaveError,
    corrupt_file,
)
from .detect import HeartbeatDetector
from .faults import (
    FaultPlan,
    LinkDegradation,
    RankFailure,
    Straggler,
    degrade_cost_model,
    fault_regimes,
    faulted_iteration_seconds,
    options_with_faults,
)
from .goodput import (
    ExpectedGoodput,
    GoodputReport,
    GoodputScenario,
    SweepResult,
    expected_goodput,
    goodput_scenarios,
    log_spaced_intervals,
    simulate_goodput,
    sweep_checkpoint_interval,
)
from .harness import (
    ChaosHarness,
    ChaosReport,
    HarnessGaveUpError,
    RecoveryRecord,
    batch_for_iteration,
    run_baseline,
    run_reset_reference,
    shrink_parallel,
    states_bit_equal,
)
from .recovery import (
    RecoveryEvent,
    RestartPolicy,
    cluster_mtbf,
    young_daly_interval,
)
from .serve_chaos import (
    AllocExhaustion,
    DecodeCrash,
    DecodeCrashError,
    KVCorruption,
    ServeChaosInjector,
    ServeChaosPlan,
)

__all__ = [
    "ChaosPlan",
    "Kill",
    "CorruptCheckpoint",
    "SaveFailure",
    "LossSpike",
    "Stall",
    "RankFailureError",
    "TransientSaveError",
    "corrupt_file",
    "ChaosHarness",
    "ChaosReport",
    "HarnessGaveUpError",
    "RecoveryRecord",
    "batch_for_iteration",
    "run_baseline",
    "run_reset_reference",
    "shrink_parallel",
    "states_bit_equal",
    "FaultPlan",
    "RankFailure",
    "LinkDegradation",
    "Straggler",
    "degrade_cost_model",
    "options_with_faults",
    "fault_regimes",
    "faulted_iteration_seconds",
    "HeartbeatDetector",
    "RecoveryEvent",
    "RestartPolicy",
    "cluster_mtbf",
    "young_daly_interval",
    "GoodputReport",
    "ExpectedGoodput",
    "SweepResult",
    "GoodputScenario",
    "expected_goodput",
    "simulate_goodput",
    "sweep_checkpoint_interval",
    "log_spaced_intervals",
    "goodput_scenarios",
    "ServeChaosPlan",
    "ServeChaosInjector",
    "DecodeCrash",
    "DecodeCrashError",
    "KVCorruption",
    "AllocExhaustion",
]
