"""Declarative chaos plans for the continuous-batching serve engine.

:class:`~repro.resilience.chaos.ChaosPlan` shakes the *training* loop;
:class:`ServeChaosPlan` is its serving twin, aimed at the request
lifecycle of :class:`~repro.serve.engine.ServeEngine`.  Three species,
each modelling a production failure MegaScale-style fault attribution
cares about:

- :class:`DecodeCrash` — a decode step dies before producing its token
  (the serving analogue of a rank failure).  Raised as
  :class:`DecodeCrashError` *before* the sampling rng is consumed, so
  the engine's recompute-restart retry replays the exact oracle stream.
- :class:`KVCorruption` — one live cache block is perturbed in place
  (silent memory bit-rot).  Requires a checksummed
  :class:`~repro.serve.kv_cache.PagedKVCache`: the next ``gather``
  touching the block raises
  :class:`~repro.serve.kv_cache.KVCorruptionError` instead of feeding
  garbage into a forward pass.
- :class:`AllocExhaustion` — a storm seizes free cache blocks for a
  span of steps (a co-tenant burst / memory-pressure event), starving
  admission and forcing preemptions; the blocks are returned when the
  storm ends, so the zero-leak invariant must still hold afterwards.

All faults are injected on the engine's deterministic virtual clock, so
a faulted run replays bit-exactly.  Plans round-trip through JSON
(``repro serve --chaos-plan``).  :class:`ServeChaosInjector` executes a
plan against one engine run and emits one ground-truth ``fault``
run-log event per plan entry (``expect=`` names the monitor detector
that should catch it, exactly like the training chaos harness), which
the scoreboard scores detectors against.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


class DecodeCrashError(RuntimeError):
    """An injected decode-step crash (fires before sampling, so a
    recompute-restart retry reproduces the oracle stream)."""

    def __init__(self, step: int, request_id: str):
        super().__init__(
            f"injected decode crash at step {step} on {request_id}"
        )
        self.step = step
        self.request_id = request_id


@dataclass(frozen=True)
class DecodeCrash:
    """Crash ``times`` consecutive matching decode attempts, starting
    with the first attempt at or after ``at_step``.  ``request_id=None``
    matches whichever request decodes next (an unlucky-victim crash);
    naming a request pins every crash of this entry to it."""

    at_step: int
    request_id: str | None = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError(f"at_step must be >= 0, got {self.at_step}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class KVCorruption:
    """Corrupt one live cache block per step, ``times`` times, starting
    at the first step >= ``at_step`` with an eligible victim (a running
    request holding cached blocks; ``request_id`` pins the victim).
    Stays armed until applied."""

    at_step: int
    request_id: str | None = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError(f"at_step must be >= 0, got {self.at_step}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class AllocExhaustion:
    """Seize up to ``blocks`` free cache blocks (``None`` = every free
    block) for ``steps`` engine steps starting at ``at_step``."""

    at_step: int
    steps: int = 4
    blocks: int | None = None

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError(f"at_step must be >= 0, got {self.at_step}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.blocks is not None and self.blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {self.blocks}")


@dataclass(frozen=True)
class ServeChaosPlan:
    """Everything that goes wrong during one serve-engine run."""

    crashes: tuple[DecodeCrash, ...] = ()
    corruptions: tuple[KVCorruption, ...] = ()
    exhaustions: tuple[AllocExhaustion, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "crashes",
            tuple(sorted(self.crashes, key=lambda c: c.at_step)),
        )
        object.__setattr__(
            self,
            "corruptions",
            tuple(sorted(self.corruptions, key=lambda c: c.at_step)),
        )
        object.__setattr__(
            self,
            "exhaustions",
            tuple(sorted(self.exhaustions, key=lambda e: e.at_step)),
        )
        seen = set()
        for storm in self.exhaustions:
            span = range(storm.at_step, storm.at_step + storm.steps)
            if seen.intersection(span):
                raise ValueError(
                    f"overlapping exhaustion storms at step {storm.at_step}"
                )
            seen.update(span)

    @property
    def is_healthy(self) -> bool:
        return not (self.crashes or self.corruptions or self.exhaustions)

    # -- (de)serialisation --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "crashes": [asdict(c) for c in self.crashes],
                "corruptions": [asdict(c) for c in self.corruptions],
                "exhaustions": [asdict(e) for e in self.exhaustions],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ServeChaosPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"unparseable serve chaos plan: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError("serve chaos plan must be a JSON object")
        unknown = set(raw) - {"crashes", "corruptions", "exhaustions"}
        if unknown:
            raise ValueError(
                f"unknown serve chaos plan keys: {', '.join(sorted(unknown))}"
            )

        def build(cls_, entries, what):
            out = []
            for entry in entries:
                if not isinstance(entry, dict):
                    raise ValueError(f"{what} entries must be objects")
                try:
                    out.append(cls_(**entry))
                except TypeError as exc:
                    raise ValueError(f"bad {what} entry: {exc}") from exc
            return tuple(out)

        return cls(
            crashes=build(DecodeCrash, raw.get("crashes", ()), "crash"),
            corruptions=build(
                KVCorruption, raw.get("corruptions", ()), "corruption"
            ),
            exhaustions=build(
                AllocExhaustion, raw.get("exhaustions", ()), "exhaustion"
            ),
        )


class ServeChaosInjector:
    """Executes one :class:`ServeChaosPlan` against one engine run.

    The engine drives it at two points: :meth:`begin_step` at the top
    of every tick (storms start/end, corruption lands) and
    :meth:`before_decode` just before each session's decode step
    (crashes fire).  :meth:`finish` returns any storm-held blocks so
    the zero-leak invariant survives early run termination; the engine
    calls it from a ``finally``.

    Ground truth: the first firing of each plan entry emits one
    ``fault`` run-log event (``expect=`` the detector that should
    notice), mirroring the training :class:`ChaosHarness` contract the
    scoreboard scores against.
    """

    def __init__(self, plan: ServeChaosPlan, cache, *, logger=None):
        if plan.corruptions and not getattr(cache, "checksums", False):
            raise ValueError(
                "KVCorruption requires a checksummed PagedKVCache "
                "(checksums=True); without checksums the corruption "
                "would silently poison the token stream"
            )
        self.plan = plan
        self.cache = cache
        self.logger = logger
        self._crash_left = {i: c.times for i, c in enumerate(plan.crashes)}
        self._corrupt_left = {
            i: c.times for i, c in enumerate(plan.corruptions)
        }
        self._announced: set[tuple[str, int]] = set()
        self._storms_started: set[int] = set()
        # storm index -> (release_step, seized block ids)
        self._held: dict[int, tuple[int, list[int]]] = {}

    # -- ground truth --------------------------------------------------------
    def _announce(self, kind: str, index: int, step: int, expect: str,
                  **detail) -> None:
        if (kind, index) in self._announced:
            return
        self._announced.add((kind, index))
        if self.logger is not None:
            self.logger.fault(kind, step, expect=expect, **detail)

    # -- engine hooks --------------------------------------------------------
    def begin_step(self, engine, step: int) -> None:
        """Start/stop storms and land armed corruptions for ``step``."""
        for index, (release_step, blocks) in list(self._held.items()):
            if step >= release_step:
                for block in blocks:
                    self.cache.allocator.free(block)
                del self._held[index]
        for index, storm in enumerate(self.plan.exhaustions):
            if step < storm.at_step or index in self._storms_started:
                continue
            self._storms_started.add(index)
            want = storm.blocks
            n = self.cache.free_blocks if want is None else min(
                want, self.cache.free_blocks
            )
            seized = self.cache.allocator.alloc_many(n)
            self._held[index] = (step + storm.steps, seized)
            self._announce(
                "alloc-exhaustion", index, step, "queue-growth",
                blocks=n, steps=storm.steps,
            )
        for index, corruption in enumerate(self.plan.corruptions):
            if step < corruption.at_step or not self._corrupt_left[index]:
                continue
            victim = self._corruption_victim(engine, corruption)
            if victim is None:
                continue  # stays armed until a victim holds blocks
            self.cache.corrupt_block(victim.session.handle.block_table[0])
            self._corrupt_left[index] -= 1
            self._announce(
                "kv-corruption", index, step, "preemption-storm",
                request_id=victim.trace.request_id,
            )

    def _corruption_victim(self, engine, corruption):
        for entry in engine.running:
            if corruption.request_id is not None and (
                entry.trace.request_id != corruption.request_id
            ):
                continue
            if entry.session.live_blocks > 0:
                return entry
        return None

    def before_decode(self, engine, step: int, entry) -> None:
        """Raise :class:`DecodeCrashError` if a crash matches this
        decode attempt."""
        for index, crash in enumerate(self.plan.crashes):
            if step < crash.at_step or not self._crash_left[index]:
                continue
            rid = entry.trace.request_id
            if crash.request_id is not None and rid != crash.request_id:
                continue
            self._crash_left[index] -= 1
            self._announce("decode-crash", index, step, "ttft-slo",
                           request_id=rid)
            raise DecodeCrashError(step, rid)

    def finish(self) -> None:
        """Release every storm-held block (idempotent)."""
        for _, blocks in self._held.values():
            for block in blocks:
                self.cache.allocator.free(block)
        self._held.clear()
