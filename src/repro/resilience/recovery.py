"""Restart-from-checkpoint recovery policy and optimal intervals.

The recovery model is the classic one the paper's §5.10 checkpoint
numbers exist to feed: on a rank failure the job pays

    detection latency  (``HeartbeatDetector``)
  + checkpoint load    (``io_sim.checkpoint.load_time``)
  + lost work          (everything since the last checkpoint, re-run)

and the steady-state knob is the checkpoint interval: save too often
and the 40%-of-peak write path eats the run; save too rarely and every
failure throws away hours.  The optimum is the Young/Daly interval
``sqrt(2 * save_cost * MTBF)`` (Young 1974; Daly 2006 adds higher-order
terms that matter only when the save cost approaches the MTBF).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import GPTConfig, ParallelConfig
from repro.io_sim import ParallelFilesystem, load_time, save_time

from .detect import HeartbeatDetector


def cluster_mtbf(node_mtbf_seconds: float, num_nodes: int) -> float:
    """Cluster MTBF assuming independent exponential node failures:
    ``node_mtbf / num_nodes``."""
    if node_mtbf_seconds <= 0:
        raise ValueError(
            f"node_mtbf_seconds must be > 0, got {node_mtbf_seconds}"
        )
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    return node_mtbf_seconds / num_nodes


def young_daly_interval(mtbf_seconds: float, save_seconds: float) -> float:
    """Young's optimal checkpoint interval ``sqrt(2 * save * MTBF)``.

    This is the exact minimizer of the expected-overhead rate
    ``save/c + c/(2*MTBF)`` used by
    :func:`repro.resilience.goodput.expected_goodput`, so the analytic
    optimum and a sweep of that model agree by construction (Daly's
    higher-order correction only matters once ``save`` is a sizable
    fraction of the MTBF, outside this model's regime).
    """
    if mtbf_seconds <= 0:
        raise ValueError(f"mtbf_seconds must be > 0, got {mtbf_seconds}")
    if save_seconds <= 0:
        raise ValueError(f"save_seconds must be > 0, got {save_seconds}")
    return math.sqrt(2.0 * save_seconds * mtbf_seconds)


@dataclass(frozen=True)
class RecoveryEvent:
    """Accounting record of one failure -> restart cycle."""

    at_iteration: int  # committed progress when the failure struck
    rank: int  # which rank died (label only)
    failure_wall_seconds: float  # wall clock at the instant of death
    detection_seconds: float
    load_seconds: float
    lost_iterations: int  # iterations re-run after the restart
    lost_work_seconds: float

    @property
    def total_overhead_seconds(self) -> float:
        return self.detection_seconds + self.load_seconds + self.lost_work_seconds


@dataclass(frozen=True)
class RestartPolicy:
    """Restart-from-last-checkpoint: the costs one recovery cycle pays.

    ``save_seconds`` is also charged at every checkpoint boundary while
    the run is healthy — the two sides of the Young/Daly trade-off live
    in one object.
    """

    save_seconds: float
    load_seconds: float
    detector: HeartbeatDetector = field(default_factory=HeartbeatDetector)

    def __post_init__(self) -> None:
        if self.save_seconds <= 0:
            raise ValueError(
                f"save_seconds must be > 0, got {self.save_seconds}"
            )
        if self.load_seconds < 0:
            raise ValueError(
                f"load_seconds must be >= 0, got {self.load_seconds}"
            )

    @classmethod
    def from_io_model(
        cls,
        model: GPTConfig,
        parallel: ParallelConfig,
        num_nodes: int,
        fs: ParallelFilesystem | None = None,
        detector: HeartbeatDetector | None = None,
    ) -> "RestartPolicy":
        """Price save/load with the §5.10 parallel-filesystem model.

        The restart load is the full all-replica read (every
        data-parallel replica re-reads its model-parallel shard set,
        the paper's 'initial load by all 384 nodes' pattern).
        """
        return cls(
            save_seconds=save_time(model, parallel, num_nodes, fs)
            .duration_seconds,
            load_seconds=load_time(model, parallel, num_nodes, fs)
            .duration_seconds,
            detector=detector or HeartbeatDetector(),
        )

    def optimal_interval_seconds(self, mtbf_seconds: float) -> float:
        """Young/Daly interval for this policy's save cost."""
        return young_daly_interval(mtbf_seconds, self.save_seconds)
