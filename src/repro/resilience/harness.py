"""Supervised chaos harness: live training under injected faults.

PR 2's :mod:`repro.resilience.goodput` *prices* a run under a failure
trace; this module *survives* one.  :class:`ChaosHarness` drives a real
:class:`~repro.parallel.trainer.PTDTrainer` loop and recovers, without
human intervention, from everything a :class:`ChaosPlan` throws at it:

- **rank failures** (:class:`~repro.resilience.chaos.Kill`) abort the
  interrupted ``train_step``; the harness rebuilds the trainer, restores
  the newest checkpoint that passes integrity verification (corrupted
  ones are skipped -- the fallback path), and resumes.  A *permanent*
  failure additionally reshards onto a smaller parallel configuration
  chosen by :func:`repro.perf.heuristics.suggest_parallel_config`
  (optimizer state resets, as the checkpoint layer reports);
- **transient save failures**
  (:class:`~repro.resilience.chaos.SaveFailure`) are retried with
  capped exponential backoff;
- **post-commit corruption**
  (:class:`~repro.resilience.chaos.CorruptCheckpoint`) is applied to
  committed checkpoints so later restores must detect and skip them.

Determinism is the load-bearing property: the batch for iteration *i*
is a pure function of ``(seed, i)``, checkpoint restore is bit-exact,
and the engine itself is exact, so a run killed at iteration *k* and
resumed under the same parallel configuration finishes with **bit-
identical** loss and parameters to an uninterrupted run
(:func:`run_baseline` builds the reference; ``repro.verify``'s chaos
conformance case enforces the guarantee).  A resharded resume matches
the single-rank reference of :func:`run_reset_reference` -- same
trajectory with the optimizer reset at the restore point -- to fp64
ring-summation tolerance.

Every recovery action is emitted as a :mod:`repro.obs` span (phases
``chaos.*``), so a chaos run produces a Chrome trace of failures,
backoffs, fallbacks, and restarts next to the engine's own iteration
spans (``python -m repro chaos --out``).

When a :mod:`repro.obs.runlog` logger is active the harness doubles as
the **ground-truth writer** for the anomaly detectors: every injected
fault is recorded as a ``fault`` event naming the detector expected to
catch it, kills silence the dead rank's heartbeats for
``silent_rounds`` liveness rounds, recovery actions are mirrored as
``recovery``/``checkpoint`` telemetry, and the plan's telemetry-layer
faults (:class:`~repro.resilience.chaos.LossSpike`,
:class:`~repro.resilience.chaos.Stall`) are injected by wrapping the
logger in a perturbing proxy -- the training computation never sees
them, so the bit-exactness guarantee above is untouched.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import GPTConfig, ParallelConfig
from repro.obs import span as obs_span
from repro.obs.runlog import current_run_logger, run_logging
from repro.parallel import PTDTrainer
from repro.parallel.checkpoint import (
    CheckpointNotFoundError,
    CheckpointStore,
)

from .chaos import (
    ChaosPlan,
    RankFailureError,
    TransientSaveError,
    corrupt_file,
)


def batch_for_iteration(
    config: GPTConfig, batch_size: int, seed: int, iteration: int
) -> tuple[np.ndarray, np.ndarray]:
    """The deterministic global batch for one iteration.

    A pure function of ``(seed, iteration)``: a resumed run replays
    exactly the data the interrupted run saw, which is what makes
    kill-and-resume bit-identical to an uninterrupted run.
    """
    rng = np.random.default_rng([seed, iteration])
    shape = (batch_size, config.seq_length)
    ids = rng.integers(0, config.vocab_size, size=shape)
    targets = rng.integers(0, config.vocab_size, size=shape)
    return ids, targets


def shrink_parallel(
    config: GPTConfig, parallel: ParallelConfig, *, lost_ranks: int = 1
) -> ParallelConfig:
    """A parallel configuration for the ranks that are left.

    Asks :func:`~repro.perf.heuristics.suggest_parallel_config` (the
    paper's Takeaway heuristics) for the largest usable GPU count below
    ``world - lost_ranks``; falls back to the serial configuration when
    the heuristics find nothing.  A world of 1 cannot shrink and is
    returned unchanged.
    """
    world = (
        parallel.pipeline_parallel_size
        * parallel.tensor_parallel_size
        * parallel.data_parallel_size
    )
    if world <= 1:
        return parallel
    B = parallel.global_batch_size
    from repro.perf.heuristics import suggest_parallel_config

    for gpus in range(max(world - lost_ranks, 1), 0, -1):
        try:
            candidate = suggest_parallel_config(config, gpus, B)
            candidate.validate_for_model(config)
        except ValueError:
            continue
        return candidate
    return ParallelConfig(microbatch_size=1, global_batch_size=B)


class _TelemetryFaults:
    """Run-logger proxy injecting the plan's telemetry-layer faults.

    Wraps the active :class:`~repro.obs.runlog.RunLogger` for the
    duration of a chaos run.  Iteration records passing through are
    perturbed per :class:`~repro.resilience.chaos.LossSpike` /
    :class:`~repro.resilience.chaos.Stall`, with the matching
    ground-truth ``fault`` event emitted just before the perturbed
    record (so the alert it provokes always has a later ``seq``).
    Everything else delegates unchanged: the training computation is
    untouched and each perturbation fires once even if a restart
    replays its iteration.
    """

    def __init__(self, inner, plan: ChaosPlan):
        self._inner = inner
        self._plan = plan
        self._fired: set = set()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def iteration(self, iteration, loss, seconds, *,
                  tokens_per_s=None, mfu=None, grad_norm=None,
                  rank_busy=None, **extra):
        spike = self._plan.loss_spike_at(iteration)
        if (spike is not None and loss is not None
                and ("spike", iteration) not in self._fired):
            self._fired.add(("spike", iteration))
            self._inner.fault("loss-spike", iteration,
                              expect="loss-spike", factor=spike.factor)
            loss = loss * spike.factor
        for index, stall in enumerate(self._plan.stalls):
            if not (stall.at_iteration <= iteration
                    < stall.at_iteration + stall.iterations):
                continue
            key = ("stall", index, iteration)
            if key in self._fired:
                continue  # a replayed iteration stays clean
            self._fired.add(key)
            # One ground-truth event per plan entry, stamped at its
            # first perturbed record -- the detectors alert once per
            # episode, so fault and alert stay one-to-one.
            first = ("stall", index) not in self._fired
            self._fired.add(("stall", index))
            if stall.rank is None:
                if first:
                    self._inner.fault("stall", iteration,
                                      expect="throughput-collapse",
                                      seconds=stall.seconds)
                stretched = seconds + stall.seconds
                scale = seconds / stretched
                seconds = stretched
                if tokens_per_s is not None:
                    tokens_per_s *= scale
                if mfu is not None:
                    mfu *= scale
            else:
                if first:
                    self._inner.fault("rank-stall", iteration,
                                      expect="straggler",
                                      rank=stall.rank,
                                      seconds=stall.seconds)
                rank_busy = dict(rank_busy or {})
                rank_busy[stall.rank] = (
                    rank_busy.get(stall.rank, 0.0) + stall.seconds
                )
        return self._inner.iteration(
            iteration, loss, seconds, tokens_per_s=tokens_per_s,
            mfu=mfu, grad_norm=grad_norm, rank_busy=rank_busy, **extra,
        )


@dataclass(frozen=True)
class RecoveryRecord:
    """One recovery-relevant event, in the order it happened."""

    kind: str  # rank-failure | restore | restart-from-scratch |
    #            checkpoint | save-retry | checkpoint-skipped |
    #            corrupt | reshard
    at_iteration: int
    detail: str = ""


@dataclass
class ChaosReport:
    """What a supervised chaos run did and where it ended up."""

    iterations: int
    losses: list[float]
    final_loss: float
    final_state: dict[str, np.ndarray]
    final_parallel: ParallelConfig
    restarts: int = 0
    save_retries: int = 0
    checkpoints_written: int = 0
    skipped_checkpoints: int = 0
    resharded: bool = False
    records: list[RecoveryRecord] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"iterations        : {self.iterations} "
            f"(final loss {self.final_loss:.6f})",
            f"checkpoints       : {self.checkpoints_written} committed, "
            f"{self.save_retries} transient save retries",
            f"recoveries        : {self.restarts} restarts, "
            f"{self.skipped_checkpoints} corrupted checkpoints skipped",
            f"final parallel    : {self.final_parallel.describe()}"
            + ("  [resharded]" if self.resharded else ""),
        ]
        if self.records:
            lines.append("events:")
            for r in self.records:
                detail = f"  {r.detail}" if r.detail else ""
                lines.append(f"  it={r.at_iteration:>4}  {r.kind}{detail}")
        return "\n".join(lines)


class HarnessGaveUpError(RuntimeError):
    """The recovery policy exhausted its restart or retry budget."""


class ChaosHarness:
    """Run ``total_iterations`` of real training under a chaos plan,
    checkpointing every ``checkpoint_every`` iterations and recovering
    from every injected failure.  See the module docstring for the
    recovery policy and the determinism guarantee."""

    def __init__(
        self,
        config: GPTConfig,
        parallel: ParallelConfig,
        directory: str,
        *,
        plan: ChaosPlan | None = None,
        total_iterations: int = 8,
        checkpoint_every: int = 2,
        keep_last: int = 3,
        schedule: str = "1f1b",
        seed: int = 0,
        lr: float = 1e-2,
        max_restarts: int = 8,
        max_save_attempts: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        allow_reshard: bool = True,
        silent_rounds: int = 2,
        sleep: Callable[[float], None] | None = None,
        backend: str = "coop",
    ):
        if total_iterations < 1:
            raise ValueError(
                f"total_iterations must be >= 1, got {total_iterations}"
            )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if max_save_attempts < 1:
            raise ValueError(
                f"max_save_attempts must be >= 1, got {max_save_attempts}"
            )
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError(
                "need 0 < backoff_base <= backoff_cap, got "
                f"{backoff_base}/{backoff_cap}"
            )
        from repro.comm import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from "
                f"{', '.join(BACKENDS)}"
            )
        self.config = config
        self.parallel = parallel
        self.backend = backend
        self.plan = plan if plan is not None else ChaosPlan()
        self.total_iterations = total_iterations
        self.checkpoint_every = checkpoint_every
        self.schedule = schedule
        self.seed = seed
        self.lr = lr
        self.max_restarts = max_restarts
        self.max_save_attempts = max_save_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.allow_reshard = allow_reshard
        if silent_rounds < 1:
            raise ValueError(
                f"silent_rounds must be >= 1, got {silent_rounds}"
            )
        #: Liveness rounds a killed rank stays silent for in the run
        #: log before recovery telemetry appears -- what the
        #: heartbeat-gap detector actually observes of a kill.
        self.silent_rounds = silent_rounds
        self.sleep = sleep if sleep is not None else time.sleep
        self.store = CheckpointStore(
            directory, keep_last=keep_last, save_fault=self._save_fault
        )
        self._save_budget = self.plan.save_failure_budget()
        self._fired_kills: set[int] = set()
        self._fired_corruptions: set[int] = set()

    # -- injection ----------------------------------------------------------
    def _save_fault(self, iteration: int, stage: str) -> None:
        # Fail before anything is published: the commit itself is atomic,
        # so a transient failure leaves no trace at the target.
        if stage != "pre-commit":
            return
        remaining = self._save_budget.get(iteration, 0)
        if remaining > 0:
            self._save_budget[iteration] = remaining - 1
            raise TransientSaveError(
                f"injected transient save failure at iteration {iteration} "
                f"({remaining - 1} more to come)"
            )

    def _kill_hook(self, trainer: PTDTrainer) -> None:
        for index, kill in enumerate(self.plan.kills):
            if index in self._fired_kills:
                continue
            if trainer.iteration == kill.at_iteration:
                self._fired_kills.add(index)
                raise RankFailureError(
                    kill.at_iteration, kill.rank, kill.permanent
                )

    # -- building blocks ----------------------------------------------------
    def _make_trainer(self, parallel: ParallelConfig,
                      schedule: str) -> PTDTrainer:
        trainer = PTDTrainer(
            self.config, parallel, schedule=schedule,
            seed=self.seed, lr=self.lr, backend=self.backend,
        )
        trainer.pre_step_hooks.append(self._kill_hook)
        return trainer

    def _save_with_retry(self, trainer: PTDTrainer,
                         report: ChaosReport) -> str:
        iteration = trainer.iteration
        attempt = 0
        while True:
            attempt += 1
            try:
                with obs_span("checkpoint", phase="chaos.checkpoint",
                              iteration=iteration, attempt=attempt):
                    path = self.store.save(trainer)
            except TransientSaveError as exc:
                report.save_retries += 1
                report.records.append(RecoveryRecord(
                    "save-retry", iteration,
                    f"attempt {attempt}: {exc}",
                ))
                runlog = current_run_logger()
                if runlog is not None:
                    if attempt == 1:
                        runlog.fault("save-failure", iteration,
                                     expect="checkpoint")
                    runlog.recovery("save-retry", iteration,
                                    f"attempt {attempt}")
                if attempt >= self.max_save_attempts:
                    raise HarnessGaveUpError(
                        f"checkpoint save at iteration {iteration} still "
                        f"failing after {attempt} attempts"
                    ) from exc
                delay = min(
                    self.backoff_cap,
                    self.backoff_base * (2 ** (attempt - 1)),
                )
                with obs_span("backoff", phase="chaos.backoff",
                              iteration=iteration, attempt=attempt):
                    self.sleep(delay)
                continue
            report.checkpoints_written += 1
            report.records.append(
                RecoveryRecord("checkpoint", iteration)
            )
            runlog = current_run_logger()
            if runlog is not None:
                runlog.checkpoint(iteration, path)
            return path

    def _apply_corruptions(self, iteration: int, path: str,
                           report: ChaosReport) -> None:
        # Fire-once, like kills: a plan entry is one fault instance, so
        # a checkpoint re-committed on replay after a restore stays
        # healthy instead of silently re-rotting.
        for index, spec in enumerate(self.plan.corruptions):
            if spec.at_iteration != iteration:
                continue
            if index in self._fired_corruptions:
                continue
            self._fired_corruptions.add(index)
            target = os.path.join(path, spec.file)
            with obs_span("corrupt", phase="chaos.corrupt",
                          iteration=iteration):
                corrupt_file(target, spec.mode)
            report.records.append(RecoveryRecord(
                "corrupt", iteration, f"{spec.file} ({spec.mode})"
            ))
            # Ground truth only: real bit-rot is silent, so no recovery
            # telemetry is written -- the detector must catch the later
            # checkpoint-skipped restore.
            runlog = current_run_logger()
            if runlog is not None:
                runlog.fault("corrupt-checkpoint", iteration,
                             expect="checkpoint",
                             file=spec.file, mode=spec.mode)

    def _recover(self, failure: RankFailureError,
                 report: ChaosReport,
                 parallel: ParallelConfig,
                 schedule: str) -> tuple[PTDTrainer, ParallelConfig, str]:
        report.records.append(RecoveryRecord(
            "rank-failure", failure.iteration,
            f"rank {failure.rank}"
            + (" (permanent)" if failure.permanent else ""),
        ))
        runlog = current_run_logger()
        if failure.permanent and self.allow_reshard:
            new_parallel = shrink_parallel(self.config, parallel)
            if new_parallel is not parallel:
                parallel = new_parallel
                schedule = "1f1b"
                report.resharded = True
                report.records.append(RecoveryRecord(
                    "reshard", failure.iteration, parallel.describe()
                ))
                if runlog is not None:
                    runlog.recovery("reshard", failure.iteration,
                                    parallel.describe())
        with obs_span("restore", phase="chaos.restore",
                      iteration=failure.iteration):
            trainer = self._make_trainer(parallel, schedule)
            try:
                result = self.store.restore(trainer)
            except CheckpointNotFoundError:
                # Nothing usable on disk: restart the run from scratch
                # (deterministic init, so the rerun is still exact).
                trainer.close()
                trainer = self._make_trainer(parallel, schedule)
                report.records.append(RecoveryRecord(
                    "restart-from-scratch", failure.iteration
                ))
                if runlog is not None:
                    runlog.recovery(
                        "restart-from-scratch", failure.iteration
                    )
                return trainer, parallel, schedule
        for iteration, reason in result.skipped:
            report.skipped_checkpoints += 1
            report.records.append(RecoveryRecord(
                "checkpoint-skipped", iteration, reason
            ))
            if runlog is not None:
                runlog.recovery("checkpoint-skipped", iteration, reason)
        detail = ("optimizer restored" if result.optimizer_restored
                  else "optimizer reset")
        report.records.append(RecoveryRecord(
            "restore", result.iteration, detail
        ))
        if runlog is not None:
            runlog.recovery("restore", result.iteration, detail)
        return trainer, parallel, schedule

    # -- the supervised loop ------------------------------------------------
    def run(self) -> ChaosReport:
        total = self.total_iterations
        parallel, schedule = self.parallel, self.schedule
        trainer = self._make_trainer(parallel, schedule)
        losses = [float("nan")] * total
        report = ChaosReport(
            iterations=total, losses=losses, final_loss=float("nan"),
            final_state={}, final_parallel=parallel,
        )
        outer = current_run_logger()
        logging = (
            run_logging(_TelemetryFaults(outer, self.plan))
            if outer is not None else contextlib.nullcontext()
        )
        try:
            with obs_span("chaos-run", phase="chaos.run"), logging:
                while trainer.iteration < total:
                    iteration = trainer.iteration
                    ids, targets = batch_for_iteration(
                        self.config, parallel.global_batch_size,
                        self.seed, iteration,
                    )
                    try:
                        losses[iteration] = trainer.train_step(ids, targets)
                    except RankFailureError as failure:
                        report.restarts += 1
                        with obs_span("rank-failure", phase="chaos.failure",
                                      iteration=failure.iteration,
                                      rank=failure.rank):
                            pass
                        runlog = current_run_logger()
                        if runlog is not None:
                            runlog.fault(
                                "kill", failure.iteration,
                                expect="heartbeat-gap", rank=failure.rank,
                                permanent=failure.permanent,
                            )
                            alive = [r for r in range(parallel.world_size)
                                     if r != failure.rank]
                            for _ in range(self.silent_rounds):
                                runlog.heartbeat(alive, failure.iteration)
                        # Tear down the dead trainer's worker processes
                        # and shared-memory segments before respawning:
                        # a kill must not leak /dev/shm segments under
                        # the mp backend (the coop path makes this a
                        # no-op).
                        trainer.close()
                        if report.restarts > self.max_restarts:
                            raise HarnessGaveUpError(
                                f"more than {self.max_restarts} restarts"
                            ) from failure
                        trainer, parallel, schedule = self._recover(
                            failure, report, parallel, schedule
                        )
                        continue
                    boundary = (
                        trainer.iteration % self.checkpoint_every == 0
                        or trainer.iteration == total
                    )
                    if boundary:
                        path = self._save_with_retry(trainer, report)
                        self._apply_corruptions(
                            trainer.iteration, path, report
                        )
            report.final_loss = losses[-1]
            report.final_state = trainer.gather_state_dict()
            report.final_parallel = parallel
        finally:
            trainer.close()
        return report


# -- references the verify layer compares against ---------------------------


def run_baseline(
    config: GPTConfig,
    parallel: ParallelConfig,
    *,
    total_iterations: int,
    schedule: str = "1f1b",
    seed: int = 0,
    lr: float = 1e-2,
) -> tuple[list[float], dict[str, np.ndarray]]:
    """The uninterrupted run a chaos run must match bit-for-bit: same
    config, same per-iteration batches, no checkpoints, no faults."""
    trainer = PTDTrainer(config, parallel, schedule=schedule,
                         seed=seed, lr=lr)
    losses = []
    for iteration in range(total_iterations):
        ids, targets = batch_for_iteration(
            config, parallel.global_batch_size, seed, iteration
        )
        losses.append(trainer.train_step(ids, targets))
    return losses, trainer.gather_state_dict()


def run_reset_reference(
    config: GPTConfig,
    global_batch_size: int,
    *,
    total_iterations: int,
    reset_at: int,
    seed: int = 0,
    lr: float = 1e-2,
) -> tuple[list[float], dict[str, np.ndarray]]:
    """Single-rank reference for a *resharded* resume: the serial
    trajectory with the Adam state reset at ``reset_at`` (the iteration
    the resharded run restored from, where the checkpoint layer resets
    optimizer state)."""
    from repro.nn import Adam

    if not 0 <= reset_at <= total_iterations:
        raise ValueError(
            f"reset_at must be in [0, {total_iterations}], got {reset_at}"
        )
    trainer = PTDTrainer(
        config,
        ParallelConfig(microbatch_size=1,
                       global_batch_size=global_batch_size),
        schedule="1f1b", seed=seed, lr=lr,
    )
    losses = []
    for iteration in range(total_iterations):
        if iteration == reset_at:
            trainer.optimizers = [
                Adam(replica.parameters(), lr=lr)
                for replica in trainer.replicas
            ]
        ids, targets = batch_for_iteration(
            config, global_batch_size, seed, iteration
        )
        losses.append(trainer.train_step(ids, targets))
    return losses, trainer.gather_state_dict()


def states_bit_equal(
    a: dict[str, np.ndarray], b: dict[str, np.ndarray]
) -> bool:
    """Exact (bit-for-bit) equality of two gathered state dicts."""
    if set(a) != set(b):
        return False
    return all(np.array_equal(a[name], b[name]) for name in a)
