"""Failure-detection latency model (heartbeats + timeout).

Production trainers (MegaScale's driver, Megatron's elastic launcher)
detect a dead rank by missed heartbeats: every rank pings a monitor
every ``heartbeat_interval`` seconds, and the monitor declares the rank
dead after ``missed_heartbeats`` consecutive silent intervals, then
takes ``notification_latency`` seconds to tear down the job and
schedule the restart.

Detection time is pure overhead in the goodput accounting: from the
instant the rank dies until the restart begins, every surviving rank
is stalled inside a collective that will never complete.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HeartbeatDetector:
    """Heartbeat/timeout failure detector.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between liveness pings.
    missed_heartbeats:
        Consecutive missed pings before a rank is declared dead.
    notification_latency:
        Seconds from declaration to the restart machinery engaging
        (job teardown, scheduler round-trip).
    """

    heartbeat_interval: float = 10.0
    missed_heartbeats: int = 3
    notification_latency: float = 1.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.missed_heartbeats < 1:
            raise ValueError(
                f"missed_heartbeats must be >= 1, got {self.missed_heartbeats}"
            )
        if self.notification_latency < 0:
            raise ValueError(
                "notification_latency must be >= 0, got "
                f"{self.notification_latency}"
            )

    def expected_latency(self) -> float:
        """Mean death-to-restart-start latency.

        A failure lands uniformly inside a heartbeat window, so on
        average half an interval passes before the first ping is even
        due; the remaining ``missed_heartbeats - 1`` full intervals
        must then elapse, plus the notification hop:

            (missed_heartbeats - 1/2) * interval + notification
        """
        return (
            (self.missed_heartbeats - 0.5) * self.heartbeat_interval
            + self.notification_latency
        )

    def worst_case_latency(self) -> float:
        """Failure immediately after a successful ping: the full
        ``missed_heartbeats`` intervals elapse before declaration."""
        return (
            self.missed_heartbeats * self.heartbeat_interval
            + self.notification_latency
        )
