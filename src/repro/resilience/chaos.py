"""Declarative chaos plans for the *live* numeric engine.

:class:`~repro.resilience.faults.FaultPlan` (PR 2) describes what goes
wrong in a *modelled* run; :class:`ChaosPlan` is its executable twin:
the same declarative shape, but every entry is injected into the real
:class:`~repro.parallel.trainer.PTDTrainer` loop or the real checkpoint
writer by :class:`~repro.resilience.harness.ChaosHarness`.  Three
species again, now with teeth:

- :class:`Kill` — raise :class:`RankFailureError` out of
  ``train_step`` once committed progress reaches ``at_iteration``
  (``permanent=True`` means the rank is lost for good, forcing a
  resharded resume on a smaller parallel configuration);
- :class:`CorruptCheckpoint` — after the checkpoint committed at
  ``at_iteration`` is verified and published, damage one of its files
  on disk (bit-flip / truncate / delete), modelling post-commit
  bit-rot that a later restore must detect and skip;
- :class:`SaveFailure` — make the checkpoint writer fail transiently
  (``times`` consecutive :class:`TransientSaveError` raises at the
  ``at_iteration`` boundary, before anything is published), modelling
  a flaky parallel filesystem the harness must retry through.

Two further species are **telemetry-layer** faults: they perturb what
the run *reports* into its :mod:`repro.obs.runlog` stream, not the
training computation, so every bit-exactness guarantee of the harness
is untouched while the anomaly detectors
(:mod:`repro.obs.monitor`) get measurable ground truth:

- :class:`LossSpike` — the reported loss at ``at_iteration`` is
  multiplied by ``factor`` (a numeric blow-up as mission control would
  see it);
- :class:`Stall` — ``seconds`` of stall are added to the reported
  iteration time (``rank=None``: whole-job stall, a throughput
  collapse) or to one rank's reported busy time (``rank=r``: a
  straggler).

Plans round-trip through JSON (``python -m repro chaos --plan``).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

CORRUPT_MODES = ("flip", "truncate", "delete")


class RankFailureError(RuntimeError):
    """A rank died: the synchronous PTD-P job cannot continue around a
    hole, so this aborts the training step it interrupts.

    The live counterpart of the declarative
    :class:`~repro.resilience.faults.RankFailure`: ``iteration`` counts
    committed iterations at the instant of death, ``rank`` labels the
    trace span, and ``permanent`` marks a rank that will not come back
    (the recovery policy reshards onto fewer ranks).
    """

    def __init__(self, iteration: int, rank: int = 0,
                 permanent: bool = False):
        self.iteration = iteration
        self.rank = rank
        self.permanent = permanent
        kind = "permanently lost" if permanent else "failed"
        super().__init__(
            f"rank {rank} {kind} at iteration {iteration}"
        )


class TransientSaveError(OSError):
    """A checkpoint save failed in a retryable way (flaky filesystem)."""


@dataclass(frozen=True)
class Kill:
    """Kill ``rank`` once committed progress reaches ``at_iteration``
    (before the next iteration runs -- the same boundary semantics as
    :class:`~repro.resilience.faults.RankFailure`).  Fires once."""

    at_iteration: int
    rank: int = 0
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration must be >= 0, got {self.at_iteration}"
            )
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")


@dataclass(frozen=True)
class CorruptCheckpoint:
    """Damage ``file`` inside the checkpoint committed at
    ``at_iteration``, after it has been verified and published."""

    at_iteration: int
    file: str = "model.npz"
    mode: str = "flip"

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration must be >= 0, got {self.at_iteration}"
            )
        if self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"mode must be one of {CORRUPT_MODES}, got {self.mode!r}"
            )
        if os.sep in self.file or self.file in ("", ".", ".."):
            raise ValueError(f"file must be a plain filename, got {self.file!r}")


@dataclass(frozen=True)
class SaveFailure:
    """The checkpoint save at the ``at_iteration`` boundary fails
    transiently ``times`` times before succeeding."""

    at_iteration: int
    times: int = 1

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration must be >= 0, got {self.at_iteration}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class LossSpike:
    """Telemetry-layer fault: the loss *reported* at ``at_iteration``
    is multiplied by ``factor``.  Training is untouched (bit-exactness
    holds); only the run-log stream carries the blow-up."""

    at_iteration: int
    factor: float = 100.0

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration must be >= 0, got {self.at_iteration}"
            )
        if self.factor <= 1:
            raise ValueError(f"factor must be > 1, got {self.factor}")


@dataclass(frozen=True)
class Stall:
    """Telemetry-layer fault: ``seconds`` of stall in the reported
    telemetry for ``iterations`` consecutive records starting at
    ``at_iteration``.  ``rank=None`` stretches the iteration time (a
    throughput collapse); ``rank=r`` inflates only that rank's busy
    time (a straggler).  The default span of 2 matches the stream
    detectors, which demand the skew *persist* before alerting (one
    jittery record is noise, not a straggler)."""

    at_iteration: int
    seconds: float = 1.0
    rank: int | None = None
    iterations: int = 2

    def __post_init__(self) -> None:
        if self.at_iteration < 0:
            raise ValueError(
                f"at_iteration must be >= 0, got {self.at_iteration}"
            )
        if self.seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {self.seconds}")
        if self.rank is not None and self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {self.iterations}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """Everything that goes wrong during one *live* training run."""

    kills: tuple[Kill, ...] = ()
    corruptions: tuple[CorruptCheckpoint, ...] = ()
    save_failures: tuple[SaveFailure, ...] = ()
    loss_spikes: tuple[LossSpike, ...] = ()
    stalls: tuple[Stall, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "kills",
            tuple(sorted(self.kills, key=lambda k: k.at_iteration)),
        )
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        object.__setattr__(self, "save_failures", tuple(self.save_failures))
        object.__setattr__(self, "loss_spikes", tuple(self.loss_spikes))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        seen = set()
        for sf in self.save_failures:
            if sf.at_iteration in seen:
                raise ValueError(
                    f"duplicate save_failure at iteration {sf.at_iteration}"
                )
            seen.add(sf.at_iteration)
        seen = set()
        for ls in self.loss_spikes:
            if ls.at_iteration in seen:
                raise ValueError(
                    f"duplicate loss_spike at iteration {ls.at_iteration}"
                )
            seen.add(ls.at_iteration)

    @property
    def is_healthy(self) -> bool:
        return not (self.kills or self.corruptions or self.save_failures
                    or self.loss_spikes or self.stalls)

    def corruptions_at(self, iteration: int) -> tuple[CorruptCheckpoint, ...]:
        return tuple(
            c for c in self.corruptions if c.at_iteration == iteration
        )

    def loss_spike_at(self, iteration: int) -> LossSpike | None:
        for ls in self.loss_spikes:
            if ls.at_iteration == iteration:
                return ls
        return None

    def stalls_at(self, iteration: int) -> tuple[Stall, ...]:
        return tuple(
            s for s in self.stalls
            if s.at_iteration <= iteration < s.at_iteration + s.iterations
        )

    def save_failure_budget(self) -> dict[int, int]:
        """Mutable ``{iteration: remaining transient failures}`` map
        (one per run; the harness decrements it as failures fire)."""
        return {sf.at_iteration: sf.times for sf in self.save_failures}

    # -- (de)serialisation --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "kills": [asdict(k) for k in self.kills],
                "corruptions": [asdict(c) for c in self.corruptions],
                "save_failures": [asdict(s) for s in self.save_failures],
                "loss_spikes": [asdict(s) for s in self.loss_spikes],
                "stalls": [asdict(s) for s in self.stalls],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"unparseable chaos plan: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError("chaos plan must be a JSON object")
        unknown = set(raw) - {
            "kills", "corruptions", "save_failures", "loss_spikes", "stalls",
        }
        if unknown:
            raise ValueError(
                f"unknown chaos plan keys: {', '.join(sorted(unknown))}"
            )

        def build(cls_, entries, what):
            out = []
            for entry in entries:
                if not isinstance(entry, dict):
                    raise ValueError(f"{what} entries must be objects")
                try:
                    out.append(cls_(**entry))
                except TypeError as exc:
                    raise ValueError(f"bad {what} entry: {exc}") from exc
            return tuple(out)

        return cls(
            kills=build(Kill, raw.get("kills", ()), "kill"),
            corruptions=build(
                CorruptCheckpoint, raw.get("corruptions", ()), "corruption"
            ),
            save_failures=build(
                SaveFailure, raw.get("save_failures", ()), "save_failure"
            ),
            loss_spikes=build(
                LossSpike, raw.get("loss_spikes", ()), "loss_spike"
            ),
            stalls=build(Stall, raw.get("stalls", ()), "stall"),
        )


def corrupt_file(path: str, mode: str = "flip") -> None:
    """Damage one file on disk the way the chaos plan asks.

    ``flip`` XORs a handful of bytes spread through the file (silent
    bit-rot: the file still exists with the right size), ``truncate``
    cuts it in half (a torn write), ``delete`` removes it.
    """
    if mode not in CORRUPT_MODES:
        raise ValueError(f"mode must be one of {CORRUPT_MODES}, got {mode!r}")
    if not os.path.exists(path):
        raise FileNotFoundError(f"cannot corrupt missing file {path}")
    if mode == "delete":
        os.remove(path)
        return
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as f:
            f.truncate(size // 2)
        return
    with open(path, "r+b") as f:
        for offset in {size // 4, size // 2, (3 * size) // 4}:
            f.seek(min(offset, max(size - 1, 0)))
            byte = f.read(1)
            if not byte:
                continue
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([byte[0] ^ 0xFF]))
