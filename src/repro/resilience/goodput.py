"""Goodput accounting: effective-training-time / wall-clock under faults.

Two complementary models share one overhead decomposition
(``wall = useful + checkpoint + detection + load + lost work``):

- :func:`simulate_goodput` replays a concrete
  :class:`~repro.resilience.faults.FaultPlan` iteration by iteration —
  exact, deterministic event accounting, with every checkpoint save,
  detection stall, restart load and recompute window exported as a
  span through :mod:`repro.obs` (the trace's per-phase sums equal the
  report's fields *exactly*);
- :func:`expected_goodput` is the steady-state expectation for a
  Poisson failure process of a given MTBF — the smooth objective whose
  exact minimizer is the Young/Daly interval, used by
  :func:`sweep_checkpoint_interval` and the ``repro goodput`` CLI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.config import (
    GPTConfig,
    ParallelConfig,
    gpt3_175b,
    gpt_1t,
    gpt_530b,
)
from repro.obs.tracer import GLOBAL_RANK, current_tracer

from .faults import FaultPlan
from .recovery import (
    RecoveryEvent,
    RestartPolicy,
    cluster_mtbf,
    young_daly_interval,
)


@dataclass(frozen=True)
class GoodputReport:
    """Where the wall-clock of one modelled training run went.

    The five components are disjoint and exhaustive:
    ``wall_clock_seconds == useful_seconds + checkpoint_seconds +
    detection_seconds + load_seconds + lost_work_seconds`` exactly
    (it is a property computed as that sum, and the trace spans the
    simulator emits carry the same numbers).
    """

    total_iterations: int
    useful_seconds: float  # each committed iteration, counted once
    checkpoint_seconds: float  # periodic saves while healthy
    detection_seconds: float  # heartbeat stalls after each death
    load_seconds: float  # restart checkpoint reads
    lost_work_seconds: float  # re-run iterations after restarts
    num_checkpoints: int
    events: tuple[RecoveryEvent, ...] = ()

    @property
    def num_failures(self) -> int:
        return len(self.events)

    @property
    def wall_clock_seconds(self) -> float:
        return (
            self.useful_seconds
            + self.checkpoint_seconds
            + self.detection_seconds
            + self.load_seconds
            + self.lost_work_seconds
        )

    @property
    def overhead_seconds(self) -> float:
        return self.wall_clock_seconds - self.useful_seconds

    @property
    def goodput(self) -> float:
        """Effective-training-time fraction of wall clock, in [0, 1]."""
        wall = self.wall_clock_seconds
        return self.useful_seconds / wall if wall > 0 else 1.0

    def describe(self) -> str:
        return (
            f"goodput={self.goodput:.4f}  wall={self.wall_clock_seconds:.1f}s "
            f"= useful {self.useful_seconds:.1f} "
            f"+ ckpt {self.checkpoint_seconds:.1f} "
            f"+ detect {self.detection_seconds:.1f} "
            f"+ load {self.load_seconds:.1f} "
            f"+ lost {self.lost_work_seconds:.1f}  "
            f"({self.num_checkpoints} ckpts, {self.num_failures} failures)"
        )


def _iteration_seconds(
    iteration_seconds: float | Sequence[float], total_iterations: int
) -> Sequence[float]:
    if isinstance(iteration_seconds, (int, float)):
        if iteration_seconds <= 0:
            raise ValueError(
                f"iteration_seconds must be > 0, got {iteration_seconds}"
            )
        return [float(iteration_seconds)] * total_iterations
    if len(iteration_seconds) != total_iterations:
        raise ValueError(
            f"{len(iteration_seconds)} per-iteration durations for "
            f"{total_iterations} iterations -- must match"
        )
    if any(t <= 0 for t in iteration_seconds):
        raise ValueError("per-iteration durations must be > 0")
    return iteration_seconds


def simulate_goodput(
    iteration_seconds: float | Sequence[float],
    total_iterations: int,
    checkpoint_interval_iterations: int,
    policy: RestartPolicy,
    plan: FaultPlan | None = None,
) -> GoodputReport:
    """Replay a training run of ``total_iterations`` under ``plan``.

    Semantics (deterministic, at iteration granularity):

    - a checkpoint is written after every
      ``checkpoint_interval_iterations`` committed iterations except at
      the very end (the final save is interval-independent and would
      only shift every sweep point by a constant);
    - a :class:`~repro.resilience.faults.RankFailure` at iteration ``k``
      strikes when committed progress first reaches ``k`` — after the
      checkpoint scheduled at the same boundary, before the next
      iteration.  The job pays the detector's expected latency, the
      restart load, and re-runs everything since the last checkpoint;
      failures at ``k >= total_iterations`` never strike.  ``useful``
      counts each iteration once; re-executions are ``lost work``;
    - while a tracer is active (``with trace() as t:``) every save /
      detect / load / recompute window and the training segments
      between them are emitted as modelled-clock spans (phases
      ``resilience.*``), and the per-event records land in the
      tracer's metrics registry.  Per-phase span sums equal the
      report's fields exactly.
    """
    if total_iterations < 1:
        raise ValueError(
            f"total_iterations must be >= 1, got {total_iterations}"
        )
    if checkpoint_interval_iterations < 1:
        raise ValueError(
            "checkpoint_interval_iterations must be >= 1, got "
            f"{checkpoint_interval_iterations}"
        )
    iter_secs = _iteration_seconds(iteration_seconds, total_iterations)
    plan = plan or FaultPlan()
    interval = checkpoint_interval_iterations
    detect_latency = policy.detector.expected_latency()
    tracer = current_tracer()

    events: list[RecoveryEvent] = []
    pending = list(plan.failures)  # sorted by at_iteration (FaultPlan)
    train_accrued = 0.0  # every executed iteration, incl. re-runs
    checkpoint = detect = load = lost = 0.0
    num_checkpoints = 0
    committed = 0
    wall = 0.0  # running modelled clock, for span placement
    segment_start = 0.0  # start of the current contiguous train stretch

    def flush_train_segment() -> None:
        nonlocal segment_start
        if tracer is not None and wall > segment_start:
            tracer.add_span(
                "train", phase="resilience.train", rank=GLOBAL_RANK,
                start=segment_start, end=wall,
            )
        segment_start = wall

    while committed < total_iterations:
        # Failures scheduled at this progress point strike before the
        # next iteration runs (and after any checkpoint at the same
        # boundary -- handled below, where boundaries are crossed).
        while pending and pending[0].at_iteration == committed:
            f = pending.pop(0)
            flush_train_segment()
            last_ckpt = (committed // interval) * interval
            lost_iters = committed - last_ckpt
            lost_secs = float(sum(iter_secs[last_ckpt:committed]))
            event = RecoveryEvent(
                at_iteration=committed,
                rank=f.rank,
                failure_wall_seconds=wall,
                detection_seconds=detect_latency,
                load_seconds=policy.load_seconds,
                lost_iterations=lost_iters,
                lost_work_seconds=lost_secs,
            )
            events.append(event)
            detect += detect_latency
            load += policy.load_seconds
            lost += lost_secs
            if tracer is not None:
                tracer.add_span(
                    f"detect-failure(rank={f.rank})",
                    phase="resilience.detect", rank=GLOBAL_RANK,
                    start=wall, end=wall + detect_latency,
                    at_iteration=committed, seconds=detect_latency,
                )
                tracer.add_span(
                    "restart-load", phase="resilience.load",
                    rank=GLOBAL_RANK,
                    start=wall + detect_latency,
                    end=wall + detect_latency + policy.load_seconds,
                    seconds=policy.load_seconds,
                )
                tracer.metrics.counter("resilience.failures").inc()
                tracer.metrics.histogram("resilience.lost_work_seconds") \
                    .observe(lost_secs)
                tracer.metrics.histogram("resilience.event_overhead_seconds") \
                    .observe(event.total_overhead_seconds)
            wall += detect_latency + policy.load_seconds
            if tracer is not None and lost_secs > 0:
                # The re-run window: known now, executed next.
                tracer.add_span(
                    "recompute-lost-work", phase="resilience.lost-work",
                    rank=GLOBAL_RANK,
                    start=wall, end=wall + lost_secs,
                    iterations=lost_iters, seconds=lost_secs,
                )
            segment_start = wall
            committed = last_ckpt
        train_accrued += iter_secs[committed]
        wall += iter_secs[committed]
        committed += 1
        if committed % interval == 0 and committed < total_iterations:
            flush_train_segment()
            if tracer is not None:
                tracer.add_span(
                    "checkpoint-save", phase="resilience.checkpoint",
                    rank=GLOBAL_RANK,
                    start=wall, end=wall + policy.save_seconds,
                    at_iteration=committed, seconds=policy.save_seconds,
                )
            checkpoint += policy.save_seconds
            num_checkpoints += 1
            wall += policy.save_seconds
            segment_start = wall
    flush_train_segment()

    useful = train_accrued - lost
    report = GoodputReport(
        total_iterations=total_iterations,
        useful_seconds=useful,
        checkpoint_seconds=checkpoint,
        detection_seconds=detect,
        load_seconds=load,
        lost_work_seconds=lost,
        num_checkpoints=num_checkpoints,
        events=tuple(events),
    )
    if tracer is not None:
        tracer.add_span(
            "goodput-run", phase="resilience.run", rank=GLOBAL_RANK,
            start=0.0, end=report.wall_clock_seconds,
            iterations=total_iterations, failures=report.num_failures,
        )
        tracer.metrics.counter("resilience.checkpoints").inc(num_checkpoints)
        tracer.metrics.gauge("resilience.goodput").set(report.goodput)
        tracer.metrics.gauge("resilience.useful_seconds").set(useful)
        tracer.metrics.gauge("resilience.wall_clock_seconds").set(
            report.wall_clock_seconds
        )
    return report


# -- steady-state expectation ------------------------------------------------

@dataclass(frozen=True)
class ExpectedGoodput:
    """Expected overhead rates (per useful second) at one interval."""

    interval_seconds: float
    goodput: float
    checkpoint_rate: float  # save_cost / interval
    failure_rate: float  # (interval/2 + detect + load) / MTBF

    @property
    def overhead_rate(self) -> float:
        return self.checkpoint_rate + self.failure_rate


def expected_goodput(
    interval_seconds: float,
    *,
    mtbf_seconds: float,
    save_seconds: float,
    load_seconds: float,
    detection_seconds: float = 0.0,
) -> ExpectedGoodput:
    """Steady-state expected goodput at one checkpoint interval.

    Per useful second the run pays ``save/c`` in checkpoints, and
    failures arrive at rate ``1/MTBF`` each costing half an interval of
    lost work (failure lands uniformly inside the interval) plus the
    detection and load latencies:

        overhead(c) = save/c + (c/2 + detect + load) / MTBF
        goodput(c)  = 1 / (1 + overhead(c))

    ``overhead`` is strictly convex in ``c`` with minimizer exactly
    ``sqrt(2 * save * MTBF)`` — Young's interval (the detect/load term
    is interval-independent and shifts the level, not the argmin).
    """
    if interval_seconds <= 0:
        raise ValueError(
            f"interval_seconds must be > 0, got {interval_seconds}"
        )
    if mtbf_seconds <= 0:
        raise ValueError(f"mtbf_seconds must be > 0, got {mtbf_seconds}")
    if save_seconds <= 0:
        raise ValueError(f"save_seconds must be > 0, got {save_seconds}")
    if load_seconds < 0 or detection_seconds < 0:
        raise ValueError("load/detection seconds must be >= 0")
    ckpt_rate = save_seconds / interval_seconds
    fail_rate = (
        interval_seconds / 2 + detection_seconds + load_seconds
    ) / mtbf_seconds
    return ExpectedGoodput(
        interval_seconds=interval_seconds,
        goodput=1.0 / (1.0 + ckpt_rate + fail_rate),
        checkpoint_rate=ckpt_rate,
        failure_rate=fail_rate,
    )


@dataclass(frozen=True)
class SweepResult:
    """A checkpoint-interval sweep and its optimum vs. Young/Daly."""

    points: tuple[ExpectedGoodput, ...]
    analytic_interval_seconds: float  # Young/Daly

    @property
    def best(self) -> ExpectedGoodput:
        return max(self.points, key=lambda p: p.goodput)

    @property
    def best_index(self) -> int:
        return self.points.index(self.best)

    @property
    def analytic_index(self) -> int:
        """Grid point nearest the analytic optimum (log distance)."""
        target = math.log(self.analytic_interval_seconds)
        return min(
            range(len(self.points)),
            key=lambda i: abs(
                math.log(self.points[i].interval_seconds) - target
            ),
        )

    @property
    def agrees_within_one_step(self) -> bool:
        """Does the sweep argmax land within one grid step of the
        analytic Young/Daly optimum?"""
        return abs(self.best_index - self.analytic_index) <= 1

    @property
    def is_interior(self) -> bool:
        """Is the optimum away from both sweep endpoints?"""
        return 0 < self.best_index < len(self.points) - 1


def log_spaced_intervals(
    min_seconds: float, max_seconds: float, points: int
) -> list[float]:
    """``points`` log-spaced checkpoint intervals in
    ``[min_seconds, max_seconds]``."""
    if min_seconds <= 0 or max_seconds <= min_seconds:
        raise ValueError(
            f"need 0 < min ({min_seconds}) < max ({max_seconds})"
        )
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    lo, hi = math.log(min_seconds), math.log(max_seconds)
    return [
        math.exp(lo + (hi - lo) * i / (points - 1)) for i in range(points)
    ]


def sweep_checkpoint_interval(
    intervals: Sequence[float],
    *,
    mtbf_seconds: float,
    save_seconds: float,
    load_seconds: float,
    detection_seconds: float = 0.0,
) -> SweepResult:
    """Evaluate expected goodput across ``intervals`` and locate the
    optimum (convexity of the overhead rate guarantees the grid argmax
    sits within one step of the analytic Young/Daly interval)."""
    if len(intervals) < 2:
        raise ValueError("need at least 2 intervals to sweep")
    points = tuple(
        expected_goodput(
            c,
            mtbf_seconds=mtbf_seconds,
            save_seconds=save_seconds,
            load_seconds=load_seconds,
            detection_seconds=detection_seconds,
        )
        for c in intervals
    )
    return SweepResult(
        points=points,
        analytic_interval_seconds=young_daly_interval(
            mtbf_seconds, save_seconds
        ),
    )


# -- named scenarios ---------------------------------------------------------

@dataclass(frozen=True)
class GoodputScenario:
    """A preset model + cluster + reliability context for the CLI,
    the figure script, and the benchmark."""

    name: str
    model: GPTConfig = field(default_factory=gpt_1t)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    num_nodes: int = 1
    node_mtbf_hours: float = 5000.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.node_mtbf_hours <= 0:
            raise ValueError(
                f"node_mtbf_hours must be > 0, got {self.node_mtbf_hours}"
            )

    @property
    def cluster_mtbf_seconds(self) -> float:
        return cluster_mtbf(self.node_mtbf_hours * 3600.0, self.num_nodes)


def goodput_scenarios() -> dict[str, GoodputScenario]:
    """The paper's flagship configurations as goodput scenarios.

    GPU counts follow Table 1; ``num_nodes = world_size / 8`` (DGX
    A100).  The 5000 h node MTBF puts the 384-node cluster's MTBF near
    13 h — the regime MegaScale reports for real large clusters.
    """
    return {
        "1t": GoodputScenario(
            name="1t",
            model=gpt_1t(),
            parallel=ParallelConfig(
                pipeline_parallel_size=64, tensor_parallel_size=8,
                data_parallel_size=6, microbatch_size=1,
                global_batch_size=3072,
            ),
            num_nodes=384,
        ),
        "530b": GoodputScenario(
            name="530b",
            model=gpt_530b(),
            parallel=ParallelConfig(
                pipeline_parallel_size=35, tensor_parallel_size=8,
                data_parallel_size=9, microbatch_size=1,
                global_batch_size=2520,
            ),
            num_nodes=315,
        ),
        "175b": GoodputScenario(
            name="175b",
            model=gpt3_175b(),
            parallel=ParallelConfig(
                pipeline_parallel_size=8, tensor_parallel_size=8,
                data_parallel_size=16, microbatch_size=1,
                global_batch_size=1536,
            ),
            num_nodes=128,
        ),
    }
