"""Checkpoint save/load model (§5.10).

The paper: the trillion-parameter model's checkpoint is 13.8 TB; the
initial load by all 384 nodes reaches the parallel filesystem's peak
read bandwidth of 1 TB/s, and saves reach 40% of the peak write
bandwidth (273 GB/s).

The checkpoint holds, per parameter: fp16 weights (2 B) + fp32 master
weights (4 B) + fp32 Adam first/second moments (4 + 4 B) -- ~14 B per
parameter, which reproduces the 13.8 TB figure for the 1T model.
Checkpoints are sharded across the ``t * p`` model-parallel ranks
(data-parallel replicas hold identical state; only one replica writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPTConfig, ParallelConfig
from repro.hardware import GB, TB

#: Checkpoint bytes per parameter: fp16 weight + fp32 master + Adam m, v.
CHECKPOINT_BYTES_PER_PARAM = 2 + 4 + 4 + 4


@dataclass(frozen=True)
class ParallelFilesystem:
    """An all-NVMe shared parallel filesystem (Selene's)."""

    peak_read_bandwidth: float = 1.0 * TB
    peak_write_bandwidth: float = 683 * GB  # 273 GB/s observed at 40%
    per_node_bandwidth: float = 50 * GB  # two dedicated storage HCAs
    write_efficiency: float = 0.40

    def __post_init__(self) -> None:
        if min(self.peak_read_bandwidth, self.peak_write_bandwidth,
               self.per_node_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0 < self.write_efficiency <= 1:
            raise ValueError("write_efficiency must be in (0, 1]")


def checkpoint_size_bytes(config: GPTConfig) -> int:
    """Total checkpoint size (weights + optimizer state)."""
    return config.num_parameters() * CHECKPOINT_BYTES_PER_PARAM


def shard_size_bytes(config: GPTConfig, parallel: ParallelConfig) -> int:
    """Checkpoint bytes written by one model-parallel rank.

    Ceil division: when the checkpoint size does not divide evenly by
    ``t * p``, some ranks carry one extra byte's worth of state — the
    shard set must cover the whole checkpoint, so
    ``shard * model_parallel_size >= checkpoint_size`` always, with
    equality exactly when it divides.
    """
    size = checkpoint_size_bytes(config)
    mp = parallel.model_parallel_size
    return -(-size // mp)


@dataclass(frozen=True)
class CheckpointIOReport:
    """Timing of a checkpoint load or save."""

    total_bytes: int
    achieved_bandwidth: float
    duration_seconds: float


def load_time(
    config: GPTConfig,
    parallel: ParallelConfig,
    num_nodes: int,
    fs: ParallelFilesystem | None = None,
    *,
    all_replicas: bool = True,
) -> CheckpointIOReport:
    """Initial checkpoint load.

    Every data-parallel replica reads the full model-parallel shard set
    (the paper's 'initial load ... by all 384 nodes'), so the read
    volume is ``d x`` the checkpoint size and the aggregate read rate is
    capped by the filesystem's peak.
    """
    fs = fs or ParallelFilesystem()
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    size = checkpoint_size_bytes(config)
    volume = size * (parallel.data_parallel_size if all_replicas else 1)
    bw = min(fs.peak_read_bandwidth, num_nodes * fs.per_node_bandwidth)
    return CheckpointIOReport(
        total_bytes=volume,
        achieved_bandwidth=bw,
        duration_seconds=volume / bw,
    )


def save_time(
    config: GPTConfig,
    parallel: ParallelConfig,
    num_nodes: int,
    fs: ParallelFilesystem | None = None,
) -> CheckpointIOReport:
    """Checkpoint save: one replica writes all model-parallel shards.

    Concurrent small-file writes from thousands of ranks reach only
    ``write_efficiency`` of the filesystem's peak (the paper observes
    40% / 273 GB/s).
    """
    fs = fs or ParallelFilesystem()
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    size = checkpoint_size_bytes(config)
    bw = fs.write_efficiency * min(
        fs.peak_write_bandwidth, num_nodes * fs.per_node_bandwidth
    )
    return CheckpointIOReport(
        total_bytes=size,
        achieved_bandwidth=bw,
        duration_seconds=size / bw,
    )
