"""Checkpoint and parallel-filesystem I/O models (§5.10)."""

from .checkpoint import (
    CHECKPOINT_BYTES_PER_PARAM,
    CheckpointIOReport,
    ParallelFilesystem,
    checkpoint_size_bytes,
    load_time,
    save_time,
    shard_size_bytes,
)

__all__ = [
    "CHECKPOINT_BYTES_PER_PARAM",
    "CheckpointIOReport",
    "ParallelFilesystem",
    "checkpoint_size_bytes",
    "shard_size_bytes",
    "load_time",
    "save_time",
]
