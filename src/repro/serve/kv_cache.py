"""Paged key/value cache for incremental GPT decode.

vLLM-style block allocation (arXiv 2309.06180, the natural serving
counterpart of the source paper's training stack): each decoding
request's keys/values live in fixed-size *blocks* drawn from a shared
pool, so memory is allocated in O(block_size) granules instead of one
contiguous max-length slab per request.  The continuous-batching engine
(:mod:`repro.serve.engine`) admits, preempts and finishes requests by
allocating and releasing blocks here.

Two layers:

- :class:`BlockAllocator` — bookkeeping only: a free list plus a live
  set, with double-free detection and an all-or-nothing ``alloc_many``
  so a failed extension never leaks partial allocations.  Property
  tests (``tests/test_serve.py``) drive random alloc/free sequences
  against its invariants: no double-assignment, never above capacity,
  zero live blocks once every request finished (mirroring the
  ``/dev/shm`` zero-leak check of the mp backend).
- :class:`PagedKVCache` — the tensors: per-layer K and V pools of shape
  ``(L, num_blocks, block_size, a, dk)``.  ``append`` writes the new
  tokens' keys/values returned by
  :meth:`repro.nn.transformer.GPTModel.forward_step`; ``gather``
  reassembles a request's ``past_kvs`` view for the next step.  Values
  round-trip bit-exactly (plain fancy-indexed copies), which is what
  keeps cached decode on the oracle's token stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class CacheFull(RuntimeError):
    """The block pool has no free block for a requested allocation."""


class BlockAllocator:
    """Free-list allocator over ``num_blocks`` equally-sized blocks."""

    def __init__(self, num_blocks: int):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        self.num_blocks = num_blocks
        # LIFO free list: block 0 is handed out first (stable, testable).
        self._free = list(range(num_blocks - 1, -1, -1))
        self._live: set[int] = set()

    @property
    def capacity(self) -> int:
        return self.num_blocks

    @property
    def live(self) -> int:
        return len(self._live)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def alloc(self) -> int:
        if not self._free:
            raise CacheFull(
                f"all {self.num_blocks} cache blocks are live"
            )
        block = self._free.pop()
        self._live.add(block)
        return block

    def alloc_many(self, n: int) -> list[int]:
        """Allocate ``n`` blocks atomically: all of them or none.

        A failed extension must leave the caller's block table unchanged
        so a preempted-and-retried request sees consistent state.
        """
        if n < 0:
            raise ValueError(f"cannot allocate {n} blocks")
        if n > len(self._free):
            raise CacheFull(
                f"need {n} blocks, only {len(self._free)} of "
                f"{self.num_blocks} free"
            )
        return [self.alloc() for _ in range(n)]

    def free(self, block: int) -> None:
        if block not in self._live:
            raise ValueError(
                f"double free (or foreign block): {block} is not live"
            )
        self._live.remove(block)
        self._free.append(block)

    def assert_empty(self) -> None:
        """Zero live blocks -- the serving analogue of 'no leaked
        /dev/shm segments'."""
        if self._live:
            raise AssertionError(
                f"leaked cache blocks: {sorted(self._live)}"
            )


@dataclass
class KVHandle:
    """One request's slice of the pool: its block table and length."""

    block_table: list[int] = field(default_factory=list)
    length: int = 0  # cached token positions
    freed: bool = False

    @property
    def live_blocks(self) -> int:
        return len(self.block_table)


class PagedKVCache:
    """Block-pooled K/V storage shared by every request of one model."""

    def __init__(
        self,
        num_layers: int,
        num_heads: int,
        head_dim: int,
        *,
        num_blocks: int,
        block_size: int,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.allocator = BlockAllocator(num_blocks)
        shape = (num_layers, num_blocks, block_size, num_heads, head_dim)
        self.k_pool = np.zeros(shape)
        self.v_pool = np.zeros(shape)

    @classmethod
    def for_model(cls, model, *, num_blocks: int, block_size: int):
        """Pool sized for a :class:`repro.nn.transformer.GPTModel`."""
        config = model.config
        return cls(
            config.num_layers,
            config.num_attention_heads,
            config.hidden_size // config.num_attention_heads,
            num_blocks=num_blocks,
            block_size=block_size,
        )

    # -- capacity -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    @property
    def free_blocks(self) -> int:
        return self.allocator.free_blocks

    @property
    def live_blocks(self) -> int:
        return self.allocator.live

    def blocks_for(self, num_positions: int) -> int:
        """Blocks a sequence of ``num_positions`` cached tokens occupies."""
        return -(-num_positions // self.block_size)

    # -- per-request handles ------------------------------------------------
    def create(self) -> KVHandle:
        return KVHandle()

    def _check(self, handle: KVHandle) -> None:
        if handle.freed:
            raise ValueError("handle already freed")

    def append(self, handle: KVHandle, new_kvs) -> None:
        """Write the new tokens' K/V (one ``(k, v)`` pair per layer, each
        ``(1, a, s_new, dk)`` as ``forward_step`` returns them).

        Needed blocks are allocated atomically *before* any write, so an
        out-of-capacity append raises :class:`CacheFull` and leaves the
        handle unchanged.
        """
        self._check(handle)
        if len(new_kvs) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} layers of K/V, got {len(new_kvs)}"
            )
        s_new = new_kvs[0][0].shape[2]
        want = (1, self.num_heads, s_new, self.head_dim)
        for k, v in new_kvs:
            if k.shape != want or v.shape != want:
                raise ValueError(f"K/V shape {k.shape} != expected {want}")
        total = handle.length + s_new
        extra = self.blocks_for(total) - len(handle.block_table)
        if extra > 0:
            handle.block_table.extend(self.allocator.alloc_many(extra))
        pos = np.arange(handle.length, total)
        table = np.asarray(handle.block_table)
        blocks = table[pos // self.block_size]
        offs = pos % self.block_size
        for layer, (k, v) in enumerate(new_kvs):
            # (1, a, s_new, dk) -> (s_new, a, dk) slots.
            self.k_pool[layer, blocks, offs] = k[0].transpose(1, 0, 2)
            self.v_pool[layer, blocks, offs] = v[0].transpose(1, 0, 2)
        handle.length = total

    def gather(self, handle: KVHandle):
        """Reassemble ``past_kvs`` (per-layer ``(k, v)``, each
        ``(1, a, length, dk)``) for :meth:`GPTModel.forward_step`."""
        self._check(handle)
        pos = np.arange(handle.length)
        table = np.asarray(handle.block_table)
        blocks = table[pos // self.block_size]
        offs = pos % self.block_size
        out = []
        for layer in range(self.num_layers):
            k = self.k_pool[layer, blocks, offs].transpose(1, 0, 2)[None]
            v = self.v_pool[layer, blocks, offs].transpose(1, 0, 2)[None]
            out.append((k, v))
        return out

    def free(self, handle: KVHandle) -> None:
        self._check(handle)
        for block in handle.block_table:
            self.allocator.free(block)
        handle.block_table = []
        handle.length = 0
        handle.freed = True

    def assert_empty(self) -> None:
        self.allocator.assert_empty()
