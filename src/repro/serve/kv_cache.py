"""Paged key/value cache for incremental GPT decode.

vLLM-style block allocation (arXiv 2309.06180, the natural serving
counterpart of the source paper's training stack): each decoding
request's keys/values live in fixed-size *blocks* drawn from a shared
pool, so memory is allocated in O(block_size) granules instead of one
contiguous max-length slab per request.  The continuous-batching engine
(:mod:`repro.serve.engine`) admits, preempts and finishes requests by
allocating and releasing blocks here.

Two layers:

- :class:`BlockAllocator` — bookkeeping only: a free list plus a live
  set, with double-free detection and an all-or-nothing ``alloc_many``
  so a failed extension never leaks partial allocations.  Property
  tests (``tests/test_serve.py``) drive random alloc/free sequences
  against its invariants: no double-assignment, never above capacity,
  zero live blocks once every request finished (mirroring the
  ``/dev/shm`` zero-leak check of the mp backend).
- :class:`PagedKVCache` — the tensors: per-layer K and V pools of shape
  ``(L, num_blocks, block_size, a, dk)``.  ``append`` writes the new
  tokens' keys/values returned by
  :meth:`repro.nn.transformer.GPTModel.forward_step`; ``gather``
  reassembles a request's ``past_kvs`` view for the next step.  Values
  round-trip bit-exactly (plain fancy-indexed copies), which is what
  keeps cached decode on the oracle's token stream.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np


class CacheFull(RuntimeError):
    """The block pool has no free block for a requested allocation."""


class KVCorruptionError(RuntimeError):
    """A block's stored K/V no longer matches its recorded checksum.

    Raised by :meth:`PagedKVCache.gather` (checksummed caches only)
    before the corrupted values can feed a forward pass -- the engine
    treats it like a decode-step crash and recompute-restarts the
    request.
    """

    def __init__(self, block: int):
        super().__init__(
            f"KV cache block {block} failed its checksum "
            f"(stored data was corrupted in place)"
        )
        self.block = block


class BlockAllocator:
    """Free-list allocator over ``num_blocks`` equally-sized blocks."""

    def __init__(self, num_blocks: int):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        self.num_blocks = num_blocks
        # LIFO free list: block 0 is handed out first (stable, testable).
        self._free = list(range(num_blocks - 1, -1, -1))
        self._live: set[int] = set()

    @property
    def capacity(self) -> int:
        return self.num_blocks

    @property
    def live(self) -> int:
        return len(self._live)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def alloc(self) -> int:
        if not self._free:
            raise CacheFull(
                f"all {self.num_blocks} cache blocks are live"
            )
        block = self._free.pop()
        self._live.add(block)
        return block

    def alloc_many(self, n: int) -> list[int]:
        """Allocate ``n`` blocks atomically: all of them or none.

        A failed extension must leave the caller's block table unchanged
        so a preempted-and-retried request sees consistent state.
        """
        if n < 0:
            raise ValueError(f"cannot allocate {n} blocks")
        if n > len(self._free):
            raise CacheFull(
                f"need {n} blocks, only {len(self._free)} of "
                f"{self.num_blocks} free"
            )
        return [self.alloc() for _ in range(n)]

    def free(self, block: int) -> None:
        if block not in self._live:
            raise ValueError(
                f"double free (or foreign block): {block} is not live"
            )
        self._live.remove(block)
        self._free.append(block)

    def assert_empty(self) -> None:
        """Zero live blocks -- the serving analogue of 'no leaked
        /dev/shm segments'."""
        if self._live:
            raise AssertionError(
                f"leaked cache blocks: {sorted(self._live)}"
            )


@dataclass
class KVHandle:
    """One request's slice of the pool: its block table and length."""

    block_table: list[int] = field(default_factory=list)
    length: int = 0  # cached token positions
    freed: bool = False

    @property
    def live_blocks(self) -> int:
        return len(self.block_table)


class PagedKVCache:
    """Block-pooled K/V storage shared by every request of one model."""

    def __init__(
        self,
        num_layers: int,
        num_heads: int,
        head_dim: int,
        *,
        num_blocks: int,
        block_size: int,
        checksums: bool = False,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.checksums = checksums
        self.allocator = BlockAllocator(num_blocks)
        # Block-major layout with K and V fused on one axis:
        # kv_pool[block] is one contiguous buffer holding the block's
        # entire K then V state, so the per-block CRC is a single
        # zero-copy crc32 call (layer-major or split pools would cost a
        # copy or a second call per hash -- measurable at decode rates,
        # since gather verifies every block of a handle each step).
        shape = (num_blocks, 2, num_layers, block_size, num_heads, head_dim)
        self.kv_pool = np.zeros(shape)
        self.k_pool = self.kv_pool[:, 0]
        self.v_pool = self.kv_pool[:, 1]
        # block -> CRC32 over the block's K+V bytes; entries exist only
        # for live blocks of checksummed caches.
        self._crcs: dict[int, int] = {}

    @classmethod
    def for_model(cls, model, *, num_blocks: int, block_size: int,
                  checksums: bool = False):
        """Pool sized for a :class:`repro.nn.transformer.GPTModel`."""
        config = model.config
        return cls(
            config.num_layers,
            config.num_attention_heads,
            config.hidden_size // config.num_attention_heads,
            num_blocks=num_blocks,
            block_size=block_size,
            checksums=checksums,
        )

    def _block_crc(self, block: int) -> int:
        return zlib.crc32(self.kv_pool[block])  # contiguous: zero-copy

    # -- capacity -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.allocator.capacity

    @property
    def free_blocks(self) -> int:
        return self.allocator.free_blocks

    @property
    def live_blocks(self) -> int:
        return self.allocator.live

    def blocks_for(self, num_positions: int) -> int:
        """Blocks a sequence of ``num_positions`` cached tokens occupies."""
        return -(-num_positions // self.block_size)

    # -- per-request handles ------------------------------------------------
    def create(self) -> KVHandle:
        return KVHandle()

    def _check(self, handle: KVHandle) -> None:
        if handle.freed:
            raise ValueError("handle already freed")

    def append(self, handle: KVHandle, new_kvs) -> None:
        """Write the new tokens' K/V (one ``(k, v)`` pair per layer, each
        ``(1, a, s_new, dk)`` as ``forward_step`` returns them).

        Needed blocks are allocated atomically *before* any write, so an
        out-of-capacity append raises :class:`CacheFull` and leaves the
        handle unchanged.
        """
        self._check(handle)
        if len(new_kvs) != self.num_layers:
            raise ValueError(
                f"expected {self.num_layers} layers of K/V, got {len(new_kvs)}"
            )
        s_new = new_kvs[0][0].shape[2]
        want = (1, self.num_heads, s_new, self.head_dim)
        for k, v in new_kvs:
            if k.shape != want or v.shape != want:
                raise ValueError(f"K/V shape {k.shape} != expected {want}")
        total = handle.length + s_new
        extra = self.blocks_for(total) - len(handle.block_table)
        if extra > 0:
            handle.block_table.extend(self.allocator.alloc_many(extra))
        pos = np.arange(handle.length, total)
        table = np.asarray(handle.block_table)
        blocks = table[pos // self.block_size]
        offs = pos % self.block_size
        for layer, (k, v) in enumerate(new_kvs):
            # (1, a, s_new, dk) -> (s_new, a, dk) slots.
            self.k_pool[blocks, layer, offs] = k[0].transpose(1, 0, 2)
            self.v_pool[blocks, layer, offs] = v[0].transpose(1, 0, 2)
        handle.length = total
        if self.checksums:
            for block in dict.fromkeys(int(b) for b in blocks):
                self._crcs[block] = self._block_crc(block)

    def gather(self, handle: KVHandle):
        """Reassemble ``past_kvs`` (per-layer ``(k, v)``, each
        ``(1, a, length, dk)``) for :meth:`GPTModel.forward_step`.

        Checksummed caches verify every block of the handle first and
        raise :class:`KVCorruptionError` on a mismatch, so corrupted
        state can never silently feed a forward pass.
        """
        self._check(handle)
        if self.checksums:
            # Hot path (every block, every decode step): locals bound
            # outside the loop, one crc32 per block.
            crcs, pool, crc32 = self._crcs, self.kv_pool, zlib.crc32
            for block in handle.block_table:
                if crcs.get(block) != crc32(pool[block]):
                    raise KVCorruptionError(block)
        pos = np.arange(handle.length)
        table = np.asarray(handle.block_table)
        blocks = table[pos // self.block_size]
        offs = pos % self.block_size
        out = []
        for layer in range(self.num_layers):
            k = self.k_pool[blocks, layer, offs].transpose(1, 0, 2)[None]
            v = self.v_pool[blocks, layer, offs].transpose(1, 0, 2)[None]
            out.append((k, v))
        return out

    def corrupt_block(self, block: int) -> None:
        """Perturb one stored value *without* refreshing its checksum.

        Chaos/test hook modelling in-place memory corruption: the next
        checksummed :meth:`gather` touching ``block`` raises
        :class:`KVCorruptionError`.  ``x + 1.0`` differs from ``x`` for
        every finite cached magnitude, so the flip never no-ops.
        """
        self.k_pool[block, 0, 0, 0, 0] += 1.0

    def free(self, handle: KVHandle) -> None:
        self._check(handle)
        for block in handle.block_table:
            self.allocator.free(block)
            self._crcs.pop(block, None)
        handle.block_table = []
        handle.length = 0
        handle.freed = True

    def assert_empty(self) -> None:
        self.allocator.assert_empty()
