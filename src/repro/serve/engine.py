"""Continuous-batching serve engine: FIFO admission, capacity-aware
preemption, one token per running request per step.

The scheduling loop is Orca/vLLM-style *iteration-level* batching: the
engine advances on a deterministic virtual clock (one unit per
:meth:`ServeEngine.tick`), and at every tick

1. **admits** from the strict FIFO head of the waiting queue -- a
   request behind a head that does not fit never jumps it (no
   starvation by overtaking);
2. **decodes** one token for every running request, oldest first.  A
   request whose next step needs blocks the pool cannot provide
   triggers preemption of the *youngest-admitted* block-holding request
   that is younger than itself (recompute-style: blocks released, the
   victim re-queues by arrival order and re-prefills on resume).  The
   oldest request is therefore never preempted and always progresses.

Determinism: requests sample from their own seeded generators
(:class:`repro.serve.decode.DecodeSession`), preemption recomputes
rather than checkpoints, and admission order is a pure function of the
trace -- so replaying a trace reproduces token streams, preemption
pattern and virtual-clock metrics bit-exactly.

Every lifecycle transition is emitted as a ``request`` run-log event and
each tick as an ``iteration`` event (token counts included), which is
what the token-conservation invariant test audits.

Capacity safety: ``submit`` rejects any request whose *peak* block need
exceeds the whole pool -- every admitted request can always finish.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nn.transformer import GPTModel
from repro.obs.runlog import RunLogger

from .decode import DecodeSession
from .kv_cache import PagedKVCache
from .metrics import RequestMetrics, ServeReport
from .traffic import TraceRequest


@dataclass
class _Entry:
    """Engine-internal state of one submitted request."""

    trace: TraceRequest
    arrival_seq: int
    session: DecodeSession
    admit_step: int | None = None
    first_token_step: int | None = None
    admissions: int = 0


class ServeEngine:
    """Continuous batching over one model and one shared paged cache."""

    def __init__(
        self,
        model: GPTModel,
        cache: PagedKVCache,
        *,
        logger: RunLogger | None = None,
    ):
        if cache.num_layers != len(model.blocks):
            raise ValueError(
                f"cache has {cache.num_layers} layers, model has "
                f"{len(model.blocks)}"
            )
        self.model = model
        self.cache = cache
        self.logger = logger
        self.step_count = 0  # the virtual clock
        self.waiting: list[_Entry] = []  # sorted by arrival_seq
        self.running: list[_Entry] = []  # admission order
        self.finished: list[RequestMetrics] = []
        self.outputs: dict[str, np.ndarray] = {}  # request_id -> tokens
        self._next_seq = 0

    # -- submission ---------------------------------------------------------
    def peak_blocks(self, req: TraceRequest) -> int:
        """Upper bound on blocks the request ever holds at once."""
        window = self.model.config.seq_length
        if len(req.prompt) > window:
            return 0  # sliding-window recompute path: never cached
        return self.cache.blocks_for(
            min(window, len(req.prompt) + req.max_new_tokens)
        )

    def submit(self, req: TraceRequest) -> None:
        """Queue a request (validated now; admitted FIFO later)."""
        session = DecodeSession(
            self.model, self.cache, np.array(req.prompt), req.max_new_tokens,
            temperature=req.temperature, top_k=req.top_k,
            rng=np.random.default_rng(req.seed), stop_ids=req.stop_ids,
        )
        peak = self.peak_blocks(req)
        if peak > self.cache.capacity:
            raise ValueError(
                f"request {req.request_id!r} needs {peak} blocks at peak; "
                f"cache capacity is {self.cache.capacity}"
            )
        entry = _Entry(trace=req, arrival_seq=self._next_seq, session=session)
        self._next_seq += 1
        self.waiting.append(entry)
        self._emit(
            "arrive", entry,
            prompt_tokens=len(req.prompt),
            max_new_tokens=req.max_new_tokens,
        )

    # -- the scheduling loop ------------------------------------------------
    def tick(self) -> int:
        """One engine step; returns tokens generated this step."""
        step = self.step_count
        t0 = time.perf_counter()
        # 1. strict head-of-line FIFO admission.
        while self.waiting:
            head = self.waiting[0]
            if head.session.blocks_for_next_step() > self.cache.free_blocks:
                break
            self.waiting.pop(0)
            self.running.append(head)
            head.admissions += 1
            if head.admit_step is None:
                head.admit_step = step
                self._emit("admit", head)
            else:
                self._emit("resume", head,
                           generated=head.session.generated)
        # 2. one decode step per running request, oldest-admitted first.
        tokens = 0
        for entry in list(self.running):
            if entry not in self.running:
                continue  # preempted by an earlier request this tick
            session = entry.session
            if not session.done:
                skip = False
                while (session.blocks_for_next_step()
                       > self.cache.free_blocks):
                    victim = self._pick_victim(entry)
                    if victim is None:
                        # No younger block-holder: requeue this request
                        # itself (it is never the oldest -- the oldest's
                        # peak fits by submit-time validation).
                        self._preempt(entry, step)
                        skip = True
                        break
                    self._preempt(victim, step)
                if skip:
                    continue
                session.step()
                tokens += 1
                if entry.first_token_step is None:
                    entry.first_token_step = step
                    self._emit("first-token", entry)
            if session.done:
                self._finish(entry, step)
        if self.logger is not None:
            self.logger.iteration(
                iteration=step, loss=None,
                seconds=time.perf_counter() - t0,
                tokens=tokens, running=len(self.running),
                waiting=len(self.waiting),
            )
        self.step_count += 1
        return tokens

    def _pick_victim(self, requester: _Entry) -> _Entry | None:
        """Youngest-admitted running request that holds blocks and is
        younger than ``requester`` (never preempt an older request)."""
        candidates = [
            e for e in self.running
            if e is not requester
            and e.arrival_seq > requester.arrival_seq
            and e.session.live_blocks > 0
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda e: e.arrival_seq)

    def _preempt(self, entry: _Entry, step: int) -> None:
        released = entry.session.live_blocks
        entry.session.preempt()
        self.running.remove(entry)
        # Re-queue in arrival order.  Anything already waiting arrived
        # later than any admitted request (strict FIFO admission), but
        # two same-tick preemptions can land out of order -- insert by
        # arrival_seq to keep the queue sorted.
        idx = len(self.waiting)
        for i, other in enumerate(self.waiting):
            if other.arrival_seq > entry.arrival_seq:
                idx = i
                break
        self.waiting.insert(idx, entry)
        self._emit(
            "preempt", entry,
            generated=entry.session.generated,
            blocks_released=released,
        )

    def _finish(self, entry: _Entry, step: int) -> None:
        session = entry.session
        session.release()
        self.running.remove(entry)
        metrics = RequestMetrics(
            request_id=entry.trace.request_id,
            prompt_tokens=session.prompt_len,
            generated_tokens=session.generated,
            arrival_step=entry.trace.arrival_step,
            admit_step=entry.admit_step if entry.admit_step is not None
            else step,
            first_token_step=entry.first_token_step,
            finish_step=step,
            preemptions=session.preemptions,
            finish_reason=session.finish_reason or "length",
        )
        self.finished.append(metrics)
        self.outputs[entry.trace.request_id] = session.output()
        self._emit(
            "finish", entry,
            generated=session.generated,
            reason=metrics.finish_reason,
            preemptions=session.preemptions,
        )

    def _emit(self, phase: str, entry: _Entry, **detail) -> None:
        if self.logger is not None:
            self.logger.request(
                phase, entry.trace.request_id, self.step_count, **detail
            )

    # -- trace driver -------------------------------------------------------
    def run(
        self,
        trace: list[TraceRequest],
        *,
        max_steps: int | None = None,
    ) -> ServeReport:
        """Drive a whole trace to completion; returns the report.

        Arrivals are honored on the virtual clock; when the engine is
        idle it fast-forwards to the next arrival.  ``max_steps`` is a
        livelock guard (defaults to a generous bound derived from the
        trace).
        """
        pending = sorted(trace, key=lambda r: (r.arrival_step, r.request_id))
        if max_steps is None:
            work = sum(len(r.prompt) + r.max_new_tokens for r in pending)
            horizon = max((r.arrival_step for r in pending), default=0)
            max_steps = horizon + 8 * work + 64
        t0 = time.perf_counter()
        i = 0
        while i < len(pending) or self.waiting or self.running:
            if not self.waiting and not self.running and i < len(pending):
                # Idle: jump to the next arrival.
                self.step_count = max(
                    self.step_count, pending[i].arrival_step
                )
            while i < len(pending) and (
                pending[i].arrival_step <= self.step_count
            ):
                self.submit(pending[i])
                i += 1
            self.tick()
            if self.step_count > max_steps:
                raise RuntimeError(
                    f"engine exceeded {max_steps} steps -- scheduler "
                    "livelock"
                )
        return ServeReport(
            requests=self.finished,
            steps=self.step_count,
            wall_seconds=time.perf_counter() - t0,
        )
