"""Continuous-batching serve engine: FIFO admission, capacity-aware
preemption, one token per running request per step.

The scheduling loop is Orca/vLLM-style *iteration-level* batching: the
engine advances on a deterministic virtual clock (one unit per
:meth:`ServeEngine.tick`), and at every tick

1. **expires** requests past their deadline (total sojourn bound) or
   queue TTL (time-to-first-admission bound) with a typed ``timeout``
   outcome;
2. **admits** from the strict FIFO head of the waiting queue -- a
   request behind a head that does not fit never jumps it (no
   starvation by overtaking).  The one documented exception: a request
   serving a chaos-retry backoff steps aside until its ``not_before``
   step, so a crashed request cannot head-block healthy traffic;
3. **decodes** one token for every running request, oldest first.  A
   request whose next step needs blocks the pool cannot provide
   triggers preemption of the *youngest-admitted* block-holding request
   that is younger than itself (recompute-style: blocks released, the
   victim re-queues by arrival order and re-prefills on resume).  The
   oldest request is therefore never preempted and always progresses.

Overload degrades gracefully instead of growing without bound: with
``max_queue`` set, admission control sheds load at the door -- either
the newcomer (``reject-newest``) or the least-urgent queued request
(``edf``: latest deadline sheds first, no deadline counts as infinitely
late, ties shed the newest arrival).  Clients can walk away via
:meth:`cancel`.  Every terminal request carries a typed outcome
(``completed`` / ``timeout`` / ``rejected`` / ``cancelled`` /
``failed``).

Fault tolerance: an optional
:class:`~repro.resilience.serve_chaos.ServeChaosPlan` injects decode
crashes, KV-block corruption (caught by cache checksums), and
allocator-exhaustion storms.  Recovery is supervised recompute-restart:
the faulted session drops its blocks (rng untouched -- the retried
stream still equals the per-request oracle) and re-queues under
capped-exponential backoff on the virtual clock; a request out of
retry budget fails with outcome ``failed``.

Determinism: requests sample from their own seeded generators
(:class:`repro.serve.decode.DecodeSession`), preemption recomputes
rather than checkpoints, faults fire on the virtual clock, and
admission order is a pure function of the trace -- so replaying a trace
(chaos included) reproduces token streams, preemption pattern and
virtual-clock metrics bit-exactly.

Every lifecycle transition is emitted as a ``request`` run-log event and
each tick as an ``iteration`` event (token counts included), which is
what the token-conservation invariant test audits.

Capacity safety: ``submit`` rejects any request whose *peak* block need
exceeds the whole pool -- every admitted request can always finish.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.nn.transformer import GPTModel
from repro.obs.runlog import RunLogger
from repro.resilience.serve_chaos import (
    DecodeCrashError,
    ServeChaosInjector,
    ServeChaosPlan,
)

from .decode import DecodeSession
from .kv_cache import KVCorruptionError, PagedKVCache
from .metrics import RequestMetrics, ServeReport
from .traffic import TraceRequest

SHED_POLICIES = ("reject-newest", "edf")


@dataclass
class _Entry:
    """Engine-internal state of one submitted request."""

    trace: TraceRequest
    arrival_seq: int
    session: DecodeSession
    deadline_step: int | None  # absolute finish-by step
    ttl_step: int | None  # absolute admit-by step
    admit_step: int | None = None
    first_token_step: int | None = None
    admissions: int = 0
    retries: int = 0
    not_before: int = 0  # chaos-retry backoff gate
    in_backoff: bool = False


class ServeEngine:
    """Continuous batching over one model and one shared paged cache."""

    def __init__(
        self,
        model: GPTModel,
        cache: PagedKVCache,
        *,
        logger: RunLogger | None = None,
        max_queue: int | None = None,
        shed_policy: str = "reject-newest",
        chaos: ServeChaosPlan | None = None,
        max_retries: int = 5,
        backoff_base: int = 2,
        backoff_cap: int = 16,
    ):
        if cache.num_layers != len(model.blocks):
            raise ValueError(
                f"cache has {cache.num_layers} layers, model has "
                f"{len(model.blocks)}"
            )
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ValueError(
                f"need 1 <= backoff_base <= backoff_cap, got "
                f"base={backoff_base} cap={backoff_cap}"
            )
        self.model = model
        self.cache = cache
        self.logger = logger
        self.max_queue = max_queue
        self.shed_policy = shed_policy
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.step_count = 0  # the virtual clock
        self.waiting: deque[_Entry] = deque()  # sorted by arrival_seq
        self.running: list[_Entry] = []  # admission order
        self.finished: list[RequestMetrics] = []
        self.outputs: dict[str, np.ndarray] = {}  # completed request streams
        self._next_seq = 0
        self._running_seqs: set[int] = set()  # O(1) membership for the loop
        self._queued_new = 0  # waiting entries never admitted (the "queue")
        self._backing_off = 0  # waiting entries re-queued by a chaos retry
        self._slo_count = 0  # live entries carrying a deadline or TTL
        self._injector = (
            None if chaos is None
            else ServeChaosInjector(chaos, cache, logger=logger)
        )

    # -- submission ---------------------------------------------------------
    def peak_blocks(self, req: TraceRequest) -> int:
        """Upper bound on blocks the request ever holds at once."""
        window = self.model.config.seq_length
        if len(req.prompt) > window:
            return 0  # sliding-window recompute path: never cached
        return self.cache.blocks_for(
            min(window, len(req.prompt) + req.max_new_tokens)
        )

    def submit(self, req: TraceRequest) -> bool:
        """Queue a request (validated now; admitted FIFO later).

        Returns ``True`` if the request was queued, ``False`` if
        admission control shed it (outcome ``rejected``).  Structurally
        impossible requests (peak block need above the whole pool) still
        raise ``ValueError`` -- that is a caller bug, not overload.
        """
        session = DecodeSession(
            self.model, self.cache, np.array(req.prompt), req.max_new_tokens,
            temperature=req.temperature, top_k=req.top_k,
            rng=np.random.default_rng(req.seed), stop_ids=req.stop_ids,
        )
        peak = self.peak_blocks(req)
        if peak > self.cache.capacity:
            raise ValueError(
                f"request {req.request_id!r} needs {peak} blocks at peak; "
                f"cache capacity is {self.cache.capacity}"
            )
        entry = _Entry(
            trace=req, arrival_seq=self._next_seq, session=session,
            deadline_step=(None if req.deadline_steps is None
                           else req.arrival_step + req.deadline_steps),
            ttl_step=(None if req.queue_ttl is None
                      else req.arrival_step + req.queue_ttl),
        )
        self._next_seq += 1
        if entry.deadline_step is not None or entry.ttl_step is not None:
            self._slo_count += 1
        self._emit(
            "arrive", entry,
            prompt_tokens=len(req.prompt),
            max_new_tokens=req.max_new_tokens,
        )
        if self.max_queue is not None and self._queued_new >= self.max_queue:
            victim = self._shed_victim(entry)
            if victim is entry:
                self._reject(entry)
                return False
            self.waiting.remove(victim)
            self._queued_new -= 1
            self._reject(victim)
        self.waiting.append(entry)
        self._queued_new += 1
        return True

    def _shed_victim(self, newcomer: _Entry) -> _Entry:
        """Who gets shed when the bounded queue is full.

        ``reject-newest`` sheds the newcomer.  ``edf`` keeps the most
        urgent work: the candidate with the *latest* deadline is shed
        (no deadline = infinitely late = first to go); ties shed the
        newest arrival, so two equal-deadline requests keep FIFO order.
        Only never-admitted entries are candidates -- requests already
        in service (preempted or backing off) are past the door.
        """
        if self.shed_policy == "reject-newest":
            return newcomer
        candidates = [w for w in self.waiting if w.admit_step is None]
        candidates.append(newcomer)
        return max(
            candidates,
            key=lambda e: (
                float("inf") if e.deadline_step is None else e.deadline_step,
                e.arrival_seq,
            ),
        )

    def _reject(self, entry: _Entry) -> None:
        entry.session.release()
        self._record(entry, self.step_count, "rejected")
        self._emit("reject", entry, queue=self._queued_new,
                   max_queue=self.max_queue, policy=self.shed_policy)

    # -- client-facing cancellation -----------------------------------------
    def cancel(self, request_id: str) -> bool:
        """Cancel a live request (waiting, backing off, or running).

        Returns ``True`` if the request was live and is now terminal
        with outcome ``cancelled``; ``False`` if no live request has
        that id (already finished, shed, or never submitted -- client
        races make those indistinguishable, so none of them raise).
        """
        entry = next(
            (e for e in self.waiting if e.trace.request_id == request_id),
            None,
        ) or next(
            (e for e in self.running if e.trace.request_id == request_id),
            None,
        )
        if entry is None:
            return False
        self._remove(entry)
        entry.session.release()
        self._record(entry, self.step_count, "cancelled")
        self._emit("cancel", entry, generated=entry.session.generated)
        return True

    # -- the scheduling loop ------------------------------------------------
    def tick(self) -> int:
        """One engine step; returns tokens generated this step."""
        step = self.step_count
        t0 = time.perf_counter()
        if self._injector is not None:
            self._injector.begin_step(self, step)
        self._expire(step)
        self._admit_waiting(step)
        # One decode step per running request, oldest-admitted first.
        tokens = 0
        for entry in list(self.running):
            if entry.arrival_seq not in self._running_seqs:
                continue  # preempted by an earlier request this tick
            session = entry.session
            if not session.done:
                skip = False
                while (session.blocks_for_next_step()
                       > self.cache.free_blocks):
                    victim = self._pick_victim(entry)
                    if victim is None:
                        # No younger block-holder: requeue this request
                        # itself (it is never the oldest -- the oldest's
                        # peak fits by submit-time validation).
                        self._preempt(entry, step)
                        skip = True
                        break
                    self._preempt(victim, step)
                if skip:
                    continue
                try:
                    if self._injector is not None:
                        self._injector.before_decode(self, step, entry)
                    session.step()
                except (DecodeCrashError, KVCorruptionError) as fault:
                    self._retry(entry, step, fault)
                    continue
                tokens += 1
                if entry.first_token_step is None:
                    entry.first_token_step = step
                    self._emit("first-token", entry)
            if session.done:
                self._finish(entry, step)
        if self.logger is not None:
            self.logger.iteration(
                iteration=step, loss=None,
                seconds=time.perf_counter() - t0,
                tokens=tokens, running=len(self.running),
                waiting=len(self.waiting), queued=self._queued_new,
            )
        self.step_count += 1
        return tokens

    def _expire(self, step: int) -> None:
        """Time out requests past their deadline or queue TTL."""
        if self._slo_count == 0:
            return
        expired = [
            (e, "deadline") if (e.deadline_step is not None
                                and step > e.deadline_step)
            else (e, "queue-ttl")
            for e in [*self.waiting, *self.running]
            if (e.deadline_step is not None and step > e.deadline_step)
            or (e.admit_step is None and e.ttl_step is not None
                and step > e.ttl_step)
        ]
        for entry, why in expired:
            self._remove(entry)
            entry.session.release()
            self._record(entry, step, "timeout")
            self._emit("timeout", entry, why=why,
                       generated=entry.session.generated)

    def _admit_waiting(self, step: int) -> None:
        """Strict head-of-line FIFO admission (fast path); with chaos
        retries in flight, entries inside their backoff window step
        aside without unblocking anyone behind a head that does not
        fit."""
        if not self._backing_off:
            while self.waiting:
                head = self.waiting[0]
                if (head.session.blocks_for_next_step()
                        > self.cache.free_blocks):
                    break
                self.waiting.popleft()
                self._admit(head, step)
            return
        kept: deque[_Entry] = deque()
        blocked = False
        while self.waiting:
            entry = self.waiting.popleft()
            if blocked or entry.not_before > step:
                kept.append(entry)
                continue
            if entry.session.blocks_for_next_step() > self.cache.free_blocks:
                blocked = True
                kept.append(entry)
                continue
            self._admit(entry, step)
        self.waiting = kept

    def _admit(self, entry: _Entry, step: int) -> None:
        if entry.in_backoff:
            entry.in_backoff = False
            self._backing_off -= 1
        self.running.append(entry)
        self._running_seqs.add(entry.arrival_seq)
        entry.admissions += 1
        if entry.admit_step is None:
            entry.admit_step = step
            self._queued_new -= 1
            self._emit("admit", entry)
        else:
            self._emit("resume", entry, generated=entry.session.generated)

    def _pick_victim(self, requester: _Entry) -> _Entry | None:
        """Youngest-admitted running request that holds blocks and is
        younger than ``requester`` (never preempt an older request)."""
        candidates = [
            e for e in self.running
            if e is not requester
            and e.arrival_seq > requester.arrival_seq
            and e.session.live_blocks > 0
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda e: e.arrival_seq)

    def _preempt(self, entry: _Entry, step: int) -> None:
        released = entry.session.live_blocks
        entry.session.preempt()
        self._running_seqs.discard(entry.arrival_seq)
        self.running.remove(entry)
        self._requeue(entry)
        self._emit(
            "preempt", entry,
            generated=entry.session.generated,
            blocks_released=released,
        )

    def _requeue(self, entry: _Entry) -> None:
        # Re-queue in arrival order.  Anything already waiting arrived
        # later than any admitted request (strict FIFO admission), but
        # two same-tick preemptions can land out of order -- insert by
        # arrival_seq to keep the queue sorted.
        idx = len(self.waiting)
        for i, other in enumerate(self.waiting):
            if other.arrival_seq > entry.arrival_seq:
                idx = i
                break
        self.waiting.insert(idx, entry)

    def _retry(self, entry: _Entry, step: int,
               fault: Exception) -> None:
        """Supervised recovery from an injected decode fault:
        recompute-restart under capped-exponential virtual-clock
        backoff, or a typed ``failed`` outcome once out of budget."""
        kind = ("decode-crash" if isinstance(fault, DecodeCrashError)
                else "kv-corruption")
        entry.session.recover()
        self._running_seqs.discard(entry.arrival_seq)
        self.running.remove(entry)
        entry.retries += 1
        if entry.retries > self.max_retries:
            self._emit("fault", entry, kind=kind, error=str(fault),
                       gave_up=True, retries=entry.retries - 1)
            self._record(entry, step, "failed")
            return
        self._emit("fault", entry, kind=kind, error=str(fault))
        delay = min(
            self.backoff_cap,
            self.backoff_base * 2 ** (entry.retries - 1),
        )
        entry.not_before = step + delay
        if not entry.in_backoff:
            entry.in_backoff = True
            self._backing_off += 1
        self._requeue(entry)
        self._emit("retry", entry, attempt=entry.retries,
                   not_before=entry.not_before, backoff=delay)

    def _remove(self, entry: _Entry) -> None:
        """Detach a live entry from whichever queue holds it."""
        if entry.arrival_seq in self._running_seqs:
            self._running_seqs.discard(entry.arrival_seq)
            self.running.remove(entry)
            return
        self.waiting.remove(entry)
        if entry.admit_step is None:
            self._queued_new -= 1
        if entry.in_backoff:
            entry.in_backoff = False
            self._backing_off -= 1

    def _record(self, entry: _Entry, step: int, outcome: str,
                finish_reason: str | None = None) -> RequestMetrics:
        session = entry.session
        if entry.deadline_step is not None or entry.ttl_step is not None:
            self._slo_count -= 1
        metrics = RequestMetrics(
            request_id=entry.trace.request_id,
            prompt_tokens=session.prompt_len,
            generated_tokens=session.generated,
            arrival_step=entry.trace.arrival_step,
            admit_step=entry.admit_step,
            first_token_step=entry.first_token_step,
            finish_step=step,
            preemptions=session.preemptions,
            finish_reason=finish_reason,
            outcome=outcome,
            retries=entry.retries,
        )
        self.finished.append(metrics)
        return metrics

    def _finish(self, entry: _Entry, step: int) -> None:
        session = entry.session
        session.release()
        self._running_seqs.discard(entry.arrival_seq)
        self.running.remove(entry)
        if entry.admit_step is None:  # max_new=0 finishing at admission
            entry.admit_step = step
        metrics = self._record(
            entry, step, "completed",
            finish_reason=session.finish_reason or "length",
        )
        self.outputs[entry.trace.request_id] = session.output()
        self._emit(
            "finish", entry,
            generated=session.generated,
            reason=metrics.finish_reason,
            preemptions=session.preemptions,
        )

    def _emit(self, phase: str, entry: _Entry, **detail) -> None:
        if self.logger is not None:
            self.logger.request(
                phase, entry.trace.request_id, self.step_count, **detail
            )

    # -- trace driver -------------------------------------------------------
    def run(
        self,
        trace: list[TraceRequest],
        *,
        max_steps: int | None = None,
    ) -> ServeReport:
        """Drive a whole trace to completion; returns the report.

        Arrivals are honored on the virtual clock; when the engine is
        idle it fast-forwards to the next arrival.  ``max_steps`` is a
        livelock guard (defaults to a generous bound derived from the
        trace plus chaos-recovery slack).
        """
        pending = sorted(trace, key=lambda r: (r.arrival_step, r.request_id))
        if max_steps is None:
            work = sum(len(r.prompt) + r.max_new_tokens for r in pending)
            horizon = max((r.arrival_step for r in pending), default=0)
            max_steps = horizon + 8 * work + 64
            if self._injector is not None:
                plan = self._injector.plan
                max_steps += sum(e.steps for e in plan.exhaustions)
                max_steps += (
                    (self.max_retries + 1) * self.backoff_cap * len(pending)
                )
        t0 = time.perf_counter()
        i = 0
        try:
            while i < len(pending) or self.waiting or self.running:
                if not self.waiting and not self.running and i < len(pending):
                    # Idle: jump to the next arrival.
                    self.step_count = max(
                        self.step_count, pending[i].arrival_step
                    )
                while i < len(pending) and (
                    pending[i].arrival_step <= self.step_count
                ):
                    self.submit(pending[i])
                    i += 1
                self.tick()
                if self.step_count > max_steps:
                    raise RuntimeError(
                        f"engine exceeded {max_steps} steps -- scheduler "
                        f"livelock; state: step={self.step_count} "
                        f"free_blocks={self.cache.free_blocks}"
                        f"/{self.cache.capacity} "
                        f"waiting={[e.trace.request_id for e in self.waiting]} "
                        f"running={[e.trace.request_id for e in self.running]} "
                        f"finished={len(self.finished)}"
                    )
        finally:
            if self._injector is not None:
                self._injector.finish()
        return ServeReport(
            requests=self.finished,
            steps=self.step_count,
            wall_seconds=time.perf_counter() - t0,
        )
