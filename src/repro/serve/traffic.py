"""Seeded request traffic: Poisson open-loop traces + JSON replay.

A trace is a list of :class:`TraceRequest` -- everything the engine
needs to run a request, including its *own sampling seed*, so a trace
replays bit-exactly: same arrivals, same prompts, same token streams,
same preemption pattern (the engine's virtual clock is deterministic).

:func:`poisson_trace` draws inter-arrival gaps from a seeded exponential
(the open-loop arrival model serving benchmarks standardize on);
:func:`save_trace`/:func:`load_trace` round-trip a trace through JSON so
CI and the ``repro serve`` CLI can pin a workload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceRequest:
    """One request of a serving workload."""

    request_id: str
    arrival_step: int
    prompt: tuple[int, ...]
    max_new_tokens: int
    temperature: float = 0.0
    top_k: int | None = None
    seed: int = 0
    stop_ids: tuple[int, ...] = ()
    # SLO knobs (both in virtual engine steps, relative to arrival_step;
    # None = unbounded).  ``deadline_steps`` bounds total sojourn time --
    # the request must *finish* by ``arrival_step + deadline_steps`` or it
    # is timed out wherever it is (queued, backing off, or decoding).
    # ``queue_ttl`` bounds time-to-first-admission only.
    deadline_steps: int | None = None
    queue_ttl: int | None = None

    def __post_init__(self):
        if self.deadline_steps is not None and self.deadline_steps < 0:
            raise ValueError(
                f"deadline_steps must be >= 0, got {self.deadline_steps}"
            )
        if self.queue_ttl is not None and self.queue_ttl < 0:
            raise ValueError(
                f"queue_ttl must be >= 0, got {self.queue_ttl}"
            )

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival_step": self.arrival_step,
            "prompt": list(self.prompt),
            "max_new_tokens": self.max_new_tokens,
            "temperature": self.temperature,
            "top_k": self.top_k,
            "seed": self.seed,
            "stop_ids": list(self.stop_ids),
            "deadline_steps": self.deadline_steps,
            "queue_ttl": self.queue_ttl,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "TraceRequest":
        try:
            return cls(
                request_id=str(obj["request_id"]),
                arrival_step=int(obj["arrival_step"]),
                prompt=tuple(int(t) for t in obj["prompt"]),
                max_new_tokens=int(obj["max_new_tokens"]),
                temperature=float(obj.get("temperature", 0.0)),
                top_k=(None if obj.get("top_k") is None
                       else int(obj["top_k"])),
                seed=int(obj.get("seed", 0)),
                stop_ids=tuple(int(t) for t in obj.get("stop_ids", ())),
                deadline_steps=(None if obj.get("deadline_steps") is None
                                else int(obj["deadline_steps"])),
                queue_ttl=(None if obj.get("queue_ttl") is None
                           else int(obj["queue_ttl"])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trace request: {exc}") from exc


def poisson_trace(
    num_requests: int,
    rate: float,
    *,
    vocab_size: int,
    seed: int = 0,
    prompt_len: tuple[int, int] = (2, 6),
    max_new: tuple[int, int] = (2, 8),
    temperature: float = 0.0,
    top_k: int | None = None,
    stop_ids: tuple[int, ...] = (),
    deadline_steps: int | None = None,
    queue_ttl: int | None = None,
) -> list[TraceRequest]:
    """Seeded open-loop Poisson workload.

    ``rate`` is the mean arrival rate in requests per engine step;
    prompt lengths and decode budgets are uniform over the given
    inclusive ranges.  Every request gets its own derived sampling seed
    so engine-side decoding matches the per-request oracle.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = np.random.default_rng(seed)
    trace = []
    clock = 0.0
    for i in range(num_requests):
        clock += rng.exponential(1.0 / rate)
        n_prompt = int(rng.integers(prompt_len[0], prompt_len[1] + 1))
        prompt = tuple(
            int(t) for t in rng.integers(0, vocab_size, size=n_prompt)
        )
        trace.append(TraceRequest(
            request_id=f"req-{i:04d}",
            arrival_step=int(clock),
            prompt=prompt,
            max_new_tokens=int(rng.integers(max_new[0], max_new[1] + 1)),
            temperature=temperature,
            top_k=top_k,
            seed=int(rng.integers(0, 2**31)),
            stop_ids=stop_ids,
            deadline_steps=deadline_steps,
            queue_ttl=queue_ttl,
        ))
    return trace


# -- JSON round-trip ---------------------------------------------------------


def trace_to_json(trace: list[TraceRequest]) -> str:
    return json.dumps({
        "schema_version": TRACE_SCHEMA_VERSION,
        "requests": [r.to_dict() for r in trace],
    }, indent=2)


def trace_from_json(text: str) -> list[TraceRequest]:
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"unparseable trace JSON: {exc}") from exc
    if not isinstance(obj, dict) or "requests" not in obj:
        raise ValueError("trace JSON must be an object with 'requests'")
    if obj.get("schema_version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {obj.get('schema_version')!r}"
        )
    return [TraceRequest.from_dict(r) for r in obj["requests"]]


def save_trace(trace: list[TraceRequest], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(trace) + "\n")


def load_trace(path: str) -> list[TraceRequest]:
    with open(path, "r", encoding="utf-8") as fh:
        return trace_from_json(fh.read())
