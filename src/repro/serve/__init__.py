"""Continuous-batching inference over the trained GPT stack.

ROADMAP item 1's downstream workload: requests with their own prompts,
decode budgets and sampling seeds stream through a paged-KV-cache
engine, and every fast path is pinned to the slow-but-trusted
``repro.nn.generate`` oracle by differential tests (``repro verify
--only serve``).

- :mod:`repro.serve.kv_cache` -- block allocator + paged K/V pools
- :mod:`repro.serve.decode`   -- per-request incremental decode sessions
- :mod:`repro.serve.engine`   -- FIFO continuous batching + preemption
- :mod:`repro.serve.traffic`  -- seeded Poisson traces, JSON replay
- :mod:`repro.serve.metrics`  -- TTFT/latency/throughput SLO reports
- :mod:`repro.serve.tp`       -- tensor-parallel decode over ``repro.comm``

Robustness (ISSUE 10): per-request deadlines and queue TTLs, bounded
admission with pluggable shedding, client cancellation, per-block cache
checksums, and chaos-injected fault recovery -- see
:mod:`repro.resilience.serve_chaos` and ``repro verify --only
serve-chaos``.
"""

from .decode import DecodeSession, cached_generate
from .engine import SHED_POLICIES, ServeEngine
from .kv_cache import (
    BlockAllocator,
    CacheFull,
    KVCorruptionError,
    KVHandle,
    PagedKVCache,
)
from .metrics import (
    FINISH_REASONS,
    OUTCOMES,
    SERVE_METRICS_SCHEMA_VERSION,
    RequestMetrics,
    ServeReport,
    validate_serve_metrics,
)
from .tp import TensorParallelDecoder, tp_generate
from .traffic import (
    TraceRequest,
    load_trace,
    poisson_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "BlockAllocator",
    "CacheFull",
    "DecodeSession",
    "FINISH_REASONS",
    "KVCorruptionError",
    "KVHandle",
    "OUTCOMES",
    "PagedKVCache",
    "RequestMetrics",
    "SERVE_METRICS_SCHEMA_VERSION",
    "SHED_POLICIES",
    "ServeEngine",
    "ServeReport",
    "TensorParallelDecoder",
    "TraceRequest",
    "cached_generate",
    "load_trace",
    "poisson_trace",
    "save_trace",
    "tp_generate",
    "trace_from_json",
    "trace_to_json",
    "validate_serve_metrics",
]
