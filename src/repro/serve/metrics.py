"""Per-request SLO metrics and the serve report schema.

Latency is measured on the engine's deterministic *virtual clock* (one
unit per engine step) so TTFT/latency distributions replay bit-exactly;
wall-clock seconds are kept alongside for real throughput (tokens/s).
:func:`validate_serve_metrics` is the schema gate ``repro serve
--smoke`` exits non-zero on -- the serving analogue of the run-log
schema version check.

Schema v2 (ISSUE 10) types every request's *terminal state*: requests
no longer merely finish, they ``complete``, ``timeout``, get
``rejected`` by admission control, get ``cancelled`` by the client, or
``fail`` after exhausting chaos-recovery retries.  Token conservation
spans **all** outcomes: a timed-out request's partial tokens still
count, a rejected one contributes zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SERVE_METRICS_SCHEMA_VERSION = 2

FINISH_REASONS = ("length", "stop")

#: Typed terminal states.  ``completed`` is the only outcome with a
#: ``finish_reason`` and the only one whose stream is surfaced in
#: ``ServeEngine.outputs`` (and hence oracle-checked).
OUTCOMES = ("completed", "timeout", "rejected", "cancelled", "failed")


@dataclass
class RequestMetrics:
    """One terminal request's lifecycle, in virtual-clock steps.

    ``admit_step`` is ``None`` for requests shed or timed out before
    ever being admitted; ``finish_reason`` is ``None`` unless
    ``outcome == "completed"``.
    """

    request_id: str
    prompt_tokens: int
    generated_tokens: int
    arrival_step: int
    admit_step: int | None
    first_token_step: int | None
    finish_step: int
    preemptions: int
    finish_reason: str | None
    outcome: str = "completed"
    retries: int = 0

    @property
    def ttft_steps(self) -> int | None:
        """Arrival -> first generated token (None for max_new=0)."""
        if self.first_token_step is None:
            return None
        return self.first_token_step - self.arrival_step

    @property
    def latency_steps(self) -> int:
        return self.finish_step - self.arrival_step

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "prompt_tokens": self.prompt_tokens,
            "generated_tokens": self.generated_tokens,
            "arrival_step": self.arrival_step,
            "admit_step": self.admit_step,
            "first_token_step": self.first_token_step,
            "finish_step": self.finish_step,
            "preemptions": self.preemptions,
            "finish_reason": self.finish_reason,
            "outcome": self.outcome,
            "retries": self.retries,
            "ttft_steps": self.ttft_steps,
            "latency_steps": self.latency_steps,
        }


@dataclass
class ServeReport:
    """All terminal requests of one engine run + wall-clock totals."""

    requests: list[RequestMetrics]
    steps: int
    wall_seconds: float

    @property
    def total_generated(self) -> int:
        return sum(r.generated_tokens for r in self.requests)

    @property
    def tokens_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_generated / self.wall_seconds

    @property
    def completed(self) -> list[RequestMetrics]:
        return [r for r in self.requests if r.outcome == "completed"]

    def to_dict(self) -> dict:
        # SLO percentiles describe *served* traffic: TTFT over requests
        # that produced a first token, latency over completed requests
        # (a rejected request's 0-step "latency" is not a service time).
        ttfts = [r.ttft_steps for r in self.requests
                 if r.ttft_steps is not None]
        lats = [r.latency_steps for r in self.completed]
        return {
            "schema_version": SERVE_METRICS_SCHEMA_VERSION,
            "aggregate": {
                "num_requests": len(self.requests),
                "total_generated_tokens": self.total_generated,
                "engine_steps": self.steps,
                "wall_seconds": self.wall_seconds,
                "tokens_per_s": self.tokens_per_s,
                "ttft_steps_mean": _mean(ttfts),
                "ttft_steps_p95": _p95(ttfts),
                "latency_steps_mean": _mean(lats),
                "latency_steps_p95": _p95(lats),
                "preemptions": sum(r.preemptions for r in self.requests),
                "retries": sum(r.retries for r in self.requests),
                "outcomes": {
                    o: sum(1 for r in self.requests if r.outcome == o)
                    for o in OUTCOMES
                },
            },
            "requests": [r.to_dict() for r in self.requests],
        }


def _mean(xs) -> float | None:
    return float(np.mean(xs)) if xs else None


def _p95(xs) -> float | None:
    return float(np.percentile(xs, 95)) if xs else None


# -- schema validation -------------------------------------------------------

_AGGREGATE_KEYS = (
    "num_requests", "total_generated_tokens", "engine_steps",
    "wall_seconds", "tokens_per_s", "ttft_steps_mean", "ttft_steps_p95",
    "latency_steps_mean", "latency_steps_p95", "preemptions", "retries",
    "outcomes",
)
_REQUEST_KEYS = (
    "request_id", "prompt_tokens", "generated_tokens", "arrival_step",
    "admit_step", "first_token_step", "finish_step", "preemptions",
    "finish_reason", "outcome", "retries", "ttft_steps", "latency_steps",
)


def validate_serve_metrics(obj) -> list[str]:
    """Schema + internal-consistency violations of one metrics dict.

    Returns a (possibly empty) list of human-readable violations;
    ``repro serve --smoke`` exits non-zero when any are found.
    """
    violations: list[str] = []
    if not isinstance(obj, dict):
        return [f"metrics must be an object, got {type(obj).__name__}"]
    if obj.get("schema_version") != SERVE_METRICS_SCHEMA_VERSION:
        violations.append(
            f"schema_version {obj.get('schema_version')!r} != "
            f"{SERVE_METRICS_SCHEMA_VERSION}"
        )
    agg = obj.get("aggregate")
    if not isinstance(agg, dict):
        violations.append("missing 'aggregate' object")
        agg = {}
    for key in _AGGREGATE_KEYS:
        if key not in agg:
            violations.append(f"aggregate missing {key!r}")
    requests = obj.get("requests")
    if not isinstance(requests, list):
        violations.append("missing 'requests' list")
        requests = []
    if isinstance(agg.get("num_requests"), int) and (
        agg["num_requests"] != len(requests)
    ):
        violations.append(
            f"aggregate.num_requests {agg['num_requests']} != "
            f"{len(requests)} request records"
        )
    total = 0
    outcome_counts = dict.fromkeys(OUTCOMES, 0)
    for i, req in enumerate(requests):
        where = f"requests[{i}]"
        if not isinstance(req, dict):
            violations.append(f"{where}: not an object")
            continue
        for key in _REQUEST_KEYS:
            if key not in req:
                violations.append(f"{where}: missing {key!r}")
        rid = req.get("request_id")
        if not isinstance(rid, str) or not rid:
            violations.append(f"{where}: request_id must be a non-empty string")
        outcome = req.get("outcome")
        if outcome not in OUTCOMES:
            violations.append(
                f"{where}: outcome {outcome!r} not in {OUTCOMES}"
            )
        else:
            outcome_counts[outcome] += 1
        if outcome == "completed":
            if req.get("finish_reason") not in FINISH_REASONS:
                violations.append(
                    f"{where}: finish_reason {req.get('finish_reason')!r} "
                    f"not in {FINISH_REASONS}"
                )
            if req.get("admit_step") is None:
                violations.append(f"{where}: completed without admit_step")
        elif req.get("finish_reason") is not None:
            violations.append(
                f"{where}: non-completed request carries finish_reason "
                f"{req.get('finish_reason')!r}"
            )
        retries = req.get("retries")
        if isinstance(retries, int) and retries < 0:
            violations.append(f"{where}: retries < 0")
        gen = req.get("generated_tokens")
        if isinstance(gen, int):
            total += gen
            if gen < 0:
                violations.append(f"{where}: generated_tokens < 0")
            if outcome == "rejected" and gen != 0:
                violations.append(
                    f"{where}: rejected request generated {gen} tokens"
                )
        arrival, admit = req.get("arrival_step"), req.get("admit_step")
        first, finish = req.get("first_token_step"), req.get("finish_step")
        if (isinstance(arrival, int) and isinstance(admit, int)
                and admit < arrival):
            violations.append(f"{where}: admit_step < arrival_step")
        if (isinstance(admit, int) and isinstance(first, int)
                and first < admit):
            violations.append(f"{where}: first_token_step < admit_step")
        if (isinstance(admit, int) and isinstance(finish, int)
                and finish < admit):
            violations.append(f"{where}: finish_step < admit_step")
        ttft = req.get("ttft_steps")
        if isinstance(ttft, int) and ttft < 0:
            violations.append(f"{where}: negative ttft_steps")
    if isinstance(agg.get("total_generated_tokens"), int) and (
        agg["total_generated_tokens"] != total
    ):
        violations.append(
            "aggregate.total_generated_tokens "
            f"{agg['total_generated_tokens']} != sum of per-request "
            f"generated_tokens {total} (token conservation)"
        )
    if isinstance(agg.get("outcomes"), dict) and (
        agg["outcomes"] != outcome_counts
    ):
        violations.append(
            f"aggregate.outcomes {agg['outcomes']} != per-request tally "
            f"{outcome_counts}"
        )
    return violations
