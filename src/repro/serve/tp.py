"""Tensor-parallel decode over the ``repro.comm`` backend abstraction.

Decode is the same §2.3 partitioning as training: every rank computes
its heads / MLP shard, forwards all-reduce through the ``g`` operator,
and the output head produces *vocab-sharded* logits.  Sampling needs the
full logit row for one position, so TP decode concatenates the shards
along the vocab axis (each rank owns a contiguous ``[i*V/t, (i+1)*V/t)``
slice, so concatenation *is* the all-gather) and samples with the same
:func:`repro.nn.generate._pick` as the single-rank paths.

The all-reduce changes floating-point summation order, so TP logits
differ from single-rank logits at ulp level -- but the sampled *token
stream* is verified equal record-for-record by ``repro verify --only
serve`` on both the coop oracle and the real-process mp backend.

Decode here is full-recompute (the trusted-oracle shape): KV caching a
sharded model would multiply the surface of the differential tests
without exercising any new communication pattern.
"""

from __future__ import annotations

import numpy as np

from repro.comm import Backend, get_backend
from repro.config import GPTConfig
from repro.nn.generate import _pick
from repro.parallel.tensor_parallel import (
    TensorParallelGPT,
    TensorParallelGroup,
)


class TensorParallelDecoder:
    """A sharded GPT plus the backend its collectives run over.

    ``backend`` may be a spec string (``"coop"``/``"mp"``), a live
    :class:`~repro.comm.Backend`, or ``None`` for the cooperative
    oracle.  A backend created *here* from a spec string is owned by the
    decoder -- ``close()`` it (or use the decoder as a context manager).
    """

    def __init__(
        self,
        config: GPTConfig,
        *,
        world: int = 2,
        seed: int = 0,
        backend: str | Backend | None = None,
    ):
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        self._owned = None
        resolved = None
        if isinstance(backend, str):
            resolved = get_backend(backend)
            if resolved.name == "mp":
                self._owned = resolved
        elif backend is not None:
            resolved = backend
        self.group = TensorParallelGroup(
            ranks=list(range(world)), backend=resolved
        )
        self.model = TensorParallelGPT(config, self.group, seed=seed)
        self.config = config

    def close(self) -> None:
        if self._owned is not None:
            self._owned.close()
            self._owned = None

    def __enter__(self) -> "TensorParallelDecoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- decoding -----------------------------------------------------------
    def logits_for(self, context: np.ndarray) -> np.ndarray:
        """Full last-position logit row: sharded forward + vocab concat."""
        logits_shards, _ = self.model.forward(context, training=False)
        return np.concatenate([ls[0, -1] for ls in logits_shards])

    def generate(
        self,
        prompt_ids,
        max_new_tokens: int,
        *,
        temperature: float = 1.0,
        top_k: int | None = None,
        rng: np.random.Generator | None = None,
        stop_ids=None,
    ) -> np.ndarray:
        """Tensor-parallel mirror of :func:`repro.nn.generate.generate`."""
        prompt_ids = np.asarray(prompt_ids)
        if prompt_ids.ndim != 1 or prompt_ids.size == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D array")
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        if temperature < 0:
            raise ValueError("temperature must be >= 0")
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1")
        vocab = self.config.vocab_size
        if prompt_ids.min() < 0 or prompt_ids.max() >= vocab:
            raise ValueError("prompt token out of range")
        stop = frozenset(int(t) for t in stop_ids) if stop_ids else frozenset()
        if any(t < 0 or t >= vocab for t in stop):
            raise ValueError("stop token out of range")
        rng = rng if rng is not None else np.random.default_rng(0)
        window = self.config.seq_length
        out = [int(t) for t in prompt_ids]
        for _ in range(max_new_tokens):
            context = np.array(out[-window:])[None, :]
            token = _pick(self.logits_for(context), temperature, top_k, rng)
            out.append(token)
            if token in stop:
                break
        return np.array(out, dtype=np.int64)


def tp_generate(
    config: GPTConfig,
    prompt_ids,
    max_new_tokens: int,
    *,
    world: int = 2,
    seed: int = 0,
    backend: str | Backend | None = None,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    stop_ids=None,
) -> np.ndarray:
    """One-shot tensor-parallel decode (builds and closes the decoder)."""
    with TensorParallelDecoder(
        config, world=world, seed=seed, backend=backend
    ) as decoder:
        return decoder.generate(
            prompt_ids, max_new_tokens,
            temperature=temperature, top_k=top_k, rng=rng, stop_ids=stop_ids,
        )
