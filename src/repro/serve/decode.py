"""Incremental decode sessions over the paged KV cache.

A :class:`DecodeSession` owns one request's decoding state: the token
history, the sampling configuration with a *per-request* random
generator, and a :class:`~repro.serve.kv_cache.KVHandle` into the shared
pool.  One :meth:`step` produces one token via
:meth:`repro.nn.transformer.GPTModel.forward_step`, reusing cached
keys/values, and samples with the same :func:`repro.nn.generate._pick`
the full-recompute oracle uses -- so a session's token stream equals
``generate(model, prompt, n, rng=default_rng(seed))`` exactly,
independent of how the engine interleaves or preempts it.

Sliding-window handling: the model uses *learned absolute* position
embeddings, so once the context reaches ``seq_length`` the window slides
and every position's embedding changes each step.  Cached K/V is then
invalid by construction; the session releases its blocks and recomputes
the shifted window per step -- exactly the oracle's computation (and
therefore bit-identical to it on that segment).

Preemption is recompute-style (the vLLM default): ``preempt()`` releases
all blocks; the next ``step`` re-prefills prompt + generated-so-far.
The per-request rng is untouched, so the resumed stream is the one an
uninterrupted run would have produced.
"""

from __future__ import annotations

import numpy as np

from repro.nn.generate import _pick
from repro.nn.transformer import GPTModel

from .kv_cache import PagedKVCache


class DecodeSession:
    """One request's incremental decode over a shared paged cache."""

    def __init__(
        self,
        model: GPTModel,
        cache: PagedKVCache,
        prompt_ids,
        max_new_tokens: int,
        *,
        temperature: float = 1.0,
        top_k: int | None = None,
        rng: np.random.Generator | None = None,
        stop_ids=None,
    ):
        prompt_ids = np.asarray(prompt_ids)
        if prompt_ids.ndim != 1 or prompt_ids.size == 0:
            raise ValueError("prompt_ids must be a non-empty 1-D array")
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        if temperature < 0:
            raise ValueError("temperature must be >= 0")
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1")
        vocab = model.config.vocab_size
        if prompt_ids.min() < 0 or prompt_ids.max() >= vocab:
            raise ValueError("prompt token out of range")
        self.stop_ids = frozenset(int(t) for t in stop_ids) if stop_ids else frozenset()
        if any(t < 0 or t >= vocab for t in self.stop_ids):
            raise ValueError("stop token out of range")
        self.model = model
        self.cache = cache
        self.window = model.config.seq_length
        self.tokens: list[int] = [int(t) for t in prompt_ids]
        self.prompt_len = len(self.tokens)
        self.max_new_tokens = max_new_tokens
        self.temperature = temperature
        self.top_k = top_k
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.generated = 0
        self.preemptions = 0
        self.finish_reason: str | None = (
            "length" if max_new_tokens == 0 else None
        )
        self.handle = None
        self._cached = 0

    # -- state --------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.finish_reason is not None

    @property
    def live_blocks(self) -> int:
        return self.handle.live_blocks if self.handle is not None else 0

    def blocks_for_next_step(self) -> int:
        """Blocks the shared pool must still provide for the next step
        (0 on the sliding-window recompute path)."""
        n = len(self.tokens)
        if n > self.window:
            return 0
        return self.cache.blocks_for(n) - self.live_blocks

    # -- decoding -----------------------------------------------------------
    def step(self) -> int:
        """Generate one token; returns it.  Raises if already done."""
        if self.done:
            raise RuntimeError("session already finished")
        n = len(self.tokens)
        if n > self.window:
            # Sliding window: absolute positions shift every step, so
            # cached K/V can never be reused -- release and recompute
            # the shifted window (the oracle's exact computation).
            self._drop_cache()
            context = np.array(self.tokens[-self.window:])[None, :]
            logits, _ = self.model.forward_step(context)
        else:
            if self.handle is None:
                self.handle = self.cache.create()
            new = np.array(self.tokens[self._cached:])[None, :]
            past = self.cache.gather(self.handle) if self._cached else None
            logits, new_kvs = self.model.forward_step(
                new, past, start=self._cached
            )
            self.cache.append(self.handle, new_kvs)
            self._cached = n
        token = _pick(logits[0, -1], self.temperature, self.top_k, self.rng)
        self.tokens.append(token)
        self.generated += 1
        if token in self.stop_ids:
            self.finish_reason = "stop"
        elif self.generated >= self.max_new_tokens:
            self.finish_reason = "length"
        return token

    # -- lifecycle ----------------------------------------------------------
    def preempt(self) -> None:
        """Release every block; the next step re-prefills prompt +
        generated tokens (recompute-style resume).  The rng is
        untouched, so the resumed stream continues exactly."""
        self._drop_cache()
        self.preemptions += 1

    def recover(self) -> None:
        """Recompute-restart after an injected fault (decode crash or
        KV corruption): drop every cached block so the next step
        re-prefills from scratch.  Unlike :meth:`preempt` this does not
        count as a scheduler preemption -- the engine tracks it as a
        retry.  A fault always fires *before* the sampling rng is
        consumed for the failed step, so the retried stream still
        equals the per-request oracle."""
        self._drop_cache()

    def release(self) -> None:
        """Return all blocks to the pool (request finished)."""
        self._drop_cache()

    def _drop_cache(self) -> None:
        if self.handle is not None:
            self.cache.free(self.handle)
            self.handle = None
        self._cached = 0

    def output(self) -> np.ndarray:
        return np.array(self.tokens, dtype=np.int64)


def cached_generate(
    model: GPTModel,
    prompt_ids,
    max_new_tokens: int,
    *,
    temperature: float = 1.0,
    top_k: int | None = None,
    rng: np.random.Generator | None = None,
    stop_ids=None,
    cache: PagedKVCache | None = None,
    block_size: int = 4,
) -> np.ndarray:
    """Drop-in, KV-cached counterpart of :func:`repro.nn.generate.generate`.

    Runs a single :class:`DecodeSession` to completion (allocating a
    right-sized private pool when ``cache`` is not given) and returns
    the same token stream as the full-recompute oracle.
    """
    own = cache is None
    if own:
        prompt_len = int(np.asarray(prompt_ids).size)
        peak = min(model.config.seq_length, prompt_len + max_new_tokens)
        cache = PagedKVCache.for_model(
            model,
            num_blocks=max(1, -(-peak // block_size)),
            block_size=block_size,
        )
    session = DecodeSession(
        model, cache, prompt_ids, max_new_tokens,
        temperature=temperature, top_k=top_k, rng=rng, stop_ids=stop_ids,
    )
    while not session.done:
        session.step()
    session.release()
    if own:
        cache.assert_empty()
    return session.output()
