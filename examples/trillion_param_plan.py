"""End-to-end plan for the trillion-parameter run (the paper's headline).

Walks through everything §5 reports for the 1T model on 3072 A100s:
the parameter count (eq. 2), FLOPs per iteration (eq. 3), the simulated
iteration and achieved 52%-of-peak throughput (Table 1, last row), the
effective communication bandwidths (§5.9), checkpoint I/O (§5.10), and
the ~3-month training-time estimate (eq. 4).

Run:  python examples/trillion_param_plan.py
"""

from repro.config import ParallelConfig, gpt_1t
from repro.experiments import bisection
from repro.io_sim import checkpoint_size_bytes, load_time, save_time
from repro.perf import memory_footprint, training_time_days
from repro.sim import SimOptions, simulate_iteration


def main() -> None:
    model = gpt_1t()
    parallel = ParallelConfig(
        pipeline_parallel_size=64,
        tensor_parallel_size=8,
        data_parallel_size=6,
        microbatch_size=1,
        global_batch_size=3072,
    )
    print(f"model: {model}")
    print(f"parameters (eq. 2): {model.num_parameters()/1e9:.1f}B")
    print(f"parallelization: {parallel.describe()} on "
          f"{parallel.world_size // 8} DGX A100 nodes")

    flops = model.flops_per_iteration(parallel.global_batch_size)
    print(f"\nFLOPs per iteration (eq. 3): {flops/1e18:.1f} EFLOP")

    res = simulate_iteration(model, parallel, options=SimOptions())
    print(f"simulated iteration: {res.iteration_time:.1f} s")
    print(f"  per-GPU    : {res.tflops_per_gpu:.0f} Tflop/s "
          f"({res.peak_fraction*100:.0f}% of the 312 Tflop/s peak; "
          f"paper: 163 / 52%)")
    print(f"  aggregate  : {res.aggregate_pflops:.0f} Pflop/s (paper: 502)")

    fp = memory_footprint(model, parallel, recompute=True)
    print(f"\nper-GPU memory: {fp.total/1e9:.1f} GB of 80 GB "
          f"(state {fp.model_state/1e9:.0f} + activations "
          f"{(fp.activations + fp.stage_inputs)/1e9:.1f})")

    print("\ncommunication (§5.9):")
    for metric, value, paper in bisection.run().rows:
        paper_s = f"(paper: {paper:g} GB/s)" if paper == paper else ""
        print(f"  {metric}: {value:,.0f} GB/s {paper_s}")

    size = checkpoint_size_bytes(model)
    lt = load_time(model, parallel, 384)
    st = save_time(model, parallel, 384)
    print(f"\ncheckpoint (§5.10): {size/1e12:.1f} TB "
          f"(paper: 13.8); load {lt.duration_seconds:.0f}s at "
          f"{lt.achieved_bandwidth/1e12:.1f} TB/s, save "
          f"{st.duration_seconds:.0f}s at {st.achieved_bandwidth/1e9:.0f} GB/s")

    days = training_time_days(
        model.num_parameters(), 450e9, parallel.world_size,
        res.tflops_per_gpu * 1e12,
    )
    print(f"\nend-to-end training on 450B tokens (eq. 4): {days:.0f} days "
          f"(paper: ~84 days / '~3 months')")


if __name__ == "__main__":
    main()
