"""Schedule explorer: visualize and compare pipeline schedules.

Renders the Figure 3/4 timelines for GPipe, 1F1B, and the interleaved
schedule at a chosen (p, m, v), and tabulates the measured bubble
fraction, the analytical formula (p-1)/(m v), and the activation-memory
footprint of each schedule.

Run:  python examples/schedule_explorer.py [p] [m] [v]
e.g.  python examples/schedule_explorer.py 4 8 2
"""

import sys

from repro.schedule import (
    bubble_overhead,
    gpipe_schedule,
    interleaved_schedule,
    one_f_one_b_schedule,
    render_schedule,
    simulate_times,
)


def main(argv: list[str]) -> None:
    p = int(argv[0]) if len(argv) > 0 else 4
    m = int(argv[1]) if len(argv) > 1 else 8
    v = int(argv[2]) if len(argv) > 2 else 2

    schedules = [
        ("GPipe (all-F then all-B)", gpipe_schedule(p, m), 1),
        ("PipeDream-Flush (1F1B)", one_f_one_b_schedule(p, m), 1),
    ]
    if p >= 2 and m % p == 0 and v > 1:
        schedules.append(
            (f"Interleaved 1F1B (v={v})", interleaved_schedule(p, m, v), v)
        )
    else:
        print(f"(interleaved schedule skipped: needs p >= 2 and m % p == 0)\n")

    print(f"{'schedule':<28} {'makespan':>8} {'bubble':>8} {'formula':>8} "
          f"{'stash(max microbatches)':>24}")
    for name, sched, chunks in schedules:
        tl = simulate_times(sched)
        stash = max(
            sched.max_in_flight_microbatches(r) for r in range(p)
        ) / chunks  # chunk activations -> full-microbatch units
        print(f"{name:<28} {tl.makespan:>8.1f} {tl.bubble_fraction():>8.3f} "
              f"{bubble_overhead(p, m, chunks):>8.3f} {stash:>24.1f}")

    print("\nTimelines (forward = digits, backward = subscripts, ' marks the"
          " second model chunk, . = idle):\n")
    for name, sched, _ in schedules:
        print(f"--- {name} ---")
        print(render_schedule(sched))
        print()


if __name__ == "__main__":
    main(sys.argv[1:])
