"""Verification demo: catch three classic distributed-training bugs.

The correctness-verification subsystem (``repro.verify``) exists because
the failure modes of 3D-parallel training are silent: a schedule that
deadlocks only on real (asynchronous) ranks, two ranks disagreeing on a
collective's shape, a gradient corrupted in one data-parallel replica.
This demo plants each bug on purpose and shows the matching checker
flagging it -- then runs the clean fast suite end to end.

Run:  python examples/verification_demo.py
"""

from dataclasses import replace

import numpy as np

from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer
from repro.schedule import make_schedule
from repro.schedule.ir import OpKind
from repro.verify import (
    CollectiveSanitizer,
    ConformanceCase,
    run_case,
    run_verification,
    validate_schedule,
)


def banner(title: str) -> None:
    print()
    print(f"=== {title} " + "=" * max(0, 60 - len(title)))


def demo_schedule_race() -> None:
    banner("1. schedule validator: backward hoisted before its forward")
    schedule = make_schedule("1f1b", num_stages=4, num_microbatches=4)
    assert not validate_schedule(schedule)
    print("shipped 1f1b(p=4, m=4): clean")

    rank0 = list(schedule.ops[0])
    b = next(i for i, op in enumerate(rank0) if op.kind is OpKind.BACKWARD)
    f = next(i for i, op in enumerate(rank0)
             if op.kind is OpKind.FORWARD
             and op.microbatch == rank0[b].microbatch)
    rank0[f], rank0[b] = rank0[b], rank0[f]
    mutated = replace(schedule, ops=(tuple(rank0),) + schedule.ops[1:])
    for violation in validate_schedule(mutated):
        print(f"mutated: {violation.describe()}")


def demo_collective_mismatch() -> None:
    banner("2. collective sanitizer: one rank posts the wrong shape")
    config = tiny_test_model()
    trainer = PTDTrainer(
        config,
        ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                       data_parallel_size=2, microbatch_size=1,
                       global_batch_size=4),
        seed=0,
    )
    rng = np.random.default_rng(0)
    ids = rng.integers(0, config.vocab_size, size=(4, config.seq_length))
    with CollectiveSanitizer() as sanitizer:
        trainer.train_step(ids, np.roll(ids, -1, axis=1))
        # Plant the bug: rank 0 and rank 1 disagree on the next buffer.
        sanitizer.record_rank_event(0, "all_reduce", (0, 1), (5,), "float64")
        sanitizer.record_rank_event(1, "all_reduce", (0, 1), (4,), "float64")
    print(f"recorded {sanitizer.num_events} collective events "
          f"(p=2, t=2, d=2 train step + 2 injected)")
    for mismatch in sanitizer.check():
        print(mismatch.describe())


def demo_gradient_corruption() -> None:
    banner("3. conformance harness: corrupted gradient in one replica")
    case = ConformanceCase(p=2, d=2, b=1, m=2, seed=5)
    clean = run_case(case)
    print(f"clean run:     {clean.describe()}")
    broken = run_case(case, perturb_gradient=1e-6)
    print(f"perturbed run: {broken.describe()}")


def main() -> None:
    demo_schedule_race()
    demo_collective_mismatch()
    demo_gradient_corruption()

    banner("4. full fast suite (python -m repro verify --fast)")
    report = run_verification(fast=True)
    print(report.describe())
    print()
    print("all three planted bugs were caught; the clean suite passed")


if __name__ == "__main__":
    main()
