"""ZeRO-3 vs PTD-P: which strategy for which scale? (§5.2 / Figure 10)

Sweeps the GPU count for a large GPT at fixed global batch size and
compares the simulated per-GPU throughput of

- PTD-P (tensor parallelism inside nodes, pipeline across, data
  parallelism on top), and
- ZeRO-3 fully-sharded data parallelism without model parallelism,

reproducing the paper's finding: at the minimum GPU count they are
close, but PTD-P scales gracefully while ZeRO-3's cross-node parameter
gathers dominate once compute per rank shrinks.

Run:  python examples/zero3_vs_ptdp.py
"""

from repro.config import ParallelConfig, gpt3_175b
from repro.sim import SimOptions, simulate_iteration, simulate_zero3_iteration


def main() -> None:
    model = gpt3_175b()
    batch = 1536
    t, p = 8, 12  # PTD-P model-parallel shape for 175B (Table 2)

    print(f"model: {model}, global batch {batch}")
    print(f"\n{'GPUs':>6} {'PTD-P Tflop/s':>14} {'ZeRO-3 Tflop/s':>15} "
          f"{'PTD-P advantage':>16}")
    for gpus, zero_b in ((384, 4), (768, 2), (1536, 1)):
        d = gpus // (t * p)
        ptd = simulate_iteration(
            model,
            ParallelConfig(
                pipeline_parallel_size=p, tensor_parallel_size=t,
                data_parallel_size=d, microbatch_size=1,
                global_batch_size=batch,
            ),
            options=SimOptions(schedule_name="1f1b"),
        )
        zero = simulate_zero3_iteration(model, gpus, batch, zero_b)
        adv = ptd.tflops_per_gpu / zero.tflops_per_gpu - 1
        print(f"{gpus:>6} {ptd.tflops_per_gpu:>14.1f} "
              f"{zero.tflops_per_gpu:>15.1f} {adv*100:>15.0f}%")

    print(
        "\nPTD-P holds ~constant per-GPU throughput as GPUs double "
        "(near-linear aggregate scaling); ZeRO-3 halves, because its "
        "parameter all-gathers cross nodes on every iteration and stop "
        "being hidden once per-rank compute shrinks (paper §5.2: ~70% "
        "advantage at doubled GPUs)."
    )


if __name__ == "__main__":
    main()
