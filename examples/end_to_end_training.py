"""End-to-end training run: data pipeline, LR schedule, checkpoint, resume.

Exercises the full production path on a small GPT:

1. build a synthetic corpus and a deterministic sharded batch loader,
2. train with PTD-P (p=2, t=2, d=2), warmup+cosine LR and gradient
   clipping,
3. checkpoint mid-run, "crash", rebuild everything, resume from the
   checkpoint, and verify the resumed trajectory is bit-identical to an
   uninterrupted run.

Run:  python examples/end_to_end_training.py
"""

import shutil
import tempfile

import numpy as np

from repro import GPTConfig, ParallelConfig, PTDTrainer
from repro.data import ShardedBatchLoader, TokenDataset, synthetic_corpus
from repro.nn.lr_scheduler import WarmupCosineSchedule
from repro.parallel.checkpoint import load_checkpoint, save_checkpoint


def make_trainer(model, parallel):
    trainer = PTDTrainer(model, parallel, seed=0, lr=1.0, grad_clip_norm=1.0)
    schedulers = [
        WarmupCosineSchedule(opt, max_lr=3e-3, warmup_iters=4, decay_iters=40)
        for opt in trainer.optimizers
    ]
    return trainer, schedulers


def train(trainer, schedulers, batches, steps, start_batch=0):
    losses = []
    for i in range(start_batch, start_batch + steps):
        ids, targets = batches[i % len(batches)]
        loss = trainer.train_step(ids, targets)
        for s in schedulers:
            lr = s.step()
        losses.append(loss)
        print(f"  step {trainer.iteration:>3}  loss {loss:.4f}  lr {lr:.2e}  "
              f"grad-norm {trainer.last_grad_norm or 0:.3f}")
    return losses


def fast_forward(schedulers, iteration):
    """LR-scheduler state is not in the checkpoint; rebuild it from the
    restored iteration count (schedules are pure functions of it)."""
    for s in schedulers:
        s.iteration = iteration
        s.optimizer.lr = s.lr_at(iteration)


def main() -> None:
    model = GPTConfig(num_layers=4, hidden_size=32, num_attention_heads=4,
                      vocab_size=64, seq_length=16, name="GPT-e2e")
    parallel = ParallelConfig(
        pipeline_parallel_size=2, tensor_parallel_size=2,
        data_parallel_size=2, microbatch_size=1, global_batch_size=8,
    )
    tokens = synthetic_corpus(8 * 16 * 40 + 1, model.vocab_size, seed=1)
    loader = ShardedBatchLoader(
        TokenDataset(tokens, model.seq_length), global_batch_size=8, seed=0,
    )
    # Materialize one epoch: the loader advances its epoch (and shuffle)
    # each time it is iterated, so both runs must see the same batches.
    batches = list(loader)

    ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    try:
        print("phase 1: train 6 steps, checkpoint, train 4 more")
        trainer, scheds = make_trainer(model, parallel)
        train(trainer, scheds, batches, steps=6)
        save_checkpoint(trainer, ckpt_dir)
        reference = train(trainer, scheds, batches, steps=4, start_batch=6)

        print("\nphase 2: 'crash', rebuild, resume from the checkpoint")
        trainer2, scheds2 = make_trainer(model, parallel)
        restored = load_checkpoint(trainer2, ckpt_dir)
        fast_forward(scheds2, trainer2.iteration)
        print(f"  optimizer state restored: {restored}, "
              f"iteration: {trainer2.iteration}")
        resumed = train(trainer2, scheds2, batches, steps=4, start_batch=6)

        exact = all(a == b for a, b in zip(reference, resumed))
        print(f"\nresumed losses identical to uninterrupted run: {exact}")
        assert exact
        print("checkpoint/resume is bit-exact. ✓")
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
