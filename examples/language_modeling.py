"""Character of a real LM workflow, miniaturized: BPE -> train -> sample.

Trains a byte-level BPE tokenizer on a small corpus, tokenizes it,
trains a tiny GPT through the PTD-P engine (p=2, t=2), reports
perplexity before and after, and greedily generates continuations of a
prompt -- demonstrating that models trained through the parallel engine
behave like language models end to end.

Run:  python examples/language_modeling.py
"""

import numpy as np

from repro import GPTConfig, ParallelConfig, PTDTrainer
from repro.data import BPETokenizer, ShardedBatchLoader, TokenDataset
from repro.nn import GPTModel, generate, perplexity

CORPUS = (
    "the pipeline carries microbatches through the stages. "
    "the tensor cores multiply the matrices. "
    "the pipeline and the tensor cores work together. "
    "the stages pass activations forward and gradients backward. "
    "the optimizer steps after the pipeline flush. "
) * 12

SEQ = 16


def main() -> None:
    # 1. Tokenize.
    tok = BPETokenizer.train(CORPUS, vocab_size=320)
    ids = np.array(tok.encode(CORPUS), dtype=np.int32)
    print(f"tokenizer: {tok.vocab_size} tokens; corpus "
          f"{len(CORPUS)} chars -> {ids.size} tokens "
          f"({len(CORPUS) / ids.size:.2f} chars/token)")

    # 2. Model + parallel trainer.
    model_cfg = GPTConfig(num_layers=4, hidden_size=48,
                          num_attention_heads=4, vocab_size=tok.vocab_size,
                          seq_length=SEQ, name="GPT-lm")
    parallel = ParallelConfig(
        pipeline_parallel_size=2, tensor_parallel_size=2,
        data_parallel_size=1, microbatch_size=1, global_batch_size=8,
    )
    trainer = PTDTrainer(model_cfg, parallel, seed=0, lr=3e-3,
                         grad_clip_norm=1.0)
    loader = ShardedBatchLoader(
        TokenDataset(ids, SEQ), global_batch_size=8, seed=0
    )
    batches = list(loader)

    # A serial twin for evaluation/generation (same seed => identical
    # init; we sync weights from the trainer after training).
    eval_model = GPTModel(model_cfg, seed=0)
    val_ids, val_targets = batches[-1]
    print(f"perplexity before training: "
          f"{perplexity(eval_model, val_ids, val_targets):.1f} "
          f"(uniform would be {tok.vocab_size})")

    # 3. Train.
    for epoch in range(14):
        losses = [trainer.train_step(i, t) for i, t in batches[:-1]]
        print(f"epoch {epoch}: mean loss {np.mean(losses):.3f}")

    # 4. Pull the trained weights into the serial model and evaluate.
    state = trainer.gather_state_dict()
    serial_state = eval_model.state_dict()
    for name in serial_state:
        if name in state:
            serial_state[name] = state[name]
    serial_state["head.tied"] = state["embedding.wte.weight"]
    eval_model.load_state_dict(serial_state)
    print(f"perplexity after training:  "
          f"{perplexity(eval_model, val_ids, val_targets):.1f}")

    # 5. Generate.
    prompt = "the pipeline "
    prompt_ids = np.array(tok.encode(prompt))
    out = generate(eval_model, prompt_ids, 24, temperature=0.0)
    print(f"\nprompt:     {prompt!r}")
    print(f"continuation: {tok.decode(list(out))!r}")


if __name__ == "__main__":
    main()
