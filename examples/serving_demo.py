"""Continuous-batching inference, miniaturized: trace -> engine -> SLOs.

Drives a seeded Poisson request trace through the ``repro.serve``
engine on a deliberately scarce paged KV cache, so admission control
and preemption both fire, then

1. checks every finished stream against the slow full-recompute
   ``generate`` oracle (the differential contract of ``repro verify
   --only serve``),
2. re-runs the identical trace to show bit-exact deterministic replay,
3. prints the per-request TTFT/latency table and aggregate SLO metrics.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro.config import tiny_test_model
from repro.nn import GPTModel, generate
from repro.serve import PagedKVCache, ServeEngine, poisson_trace


def run_once(model, trace, *, num_blocks, block_size):
    cache = PagedKVCache.for_model(
        model, num_blocks=num_blocks, block_size=block_size)
    engine = ServeEngine(model, cache)
    report = engine.run(trace)
    cache.assert_empty()  # zero leaked blocks after every run
    return engine, report


def main() -> None:
    config = tiny_test_model()
    model = GPTModel(config, seed=0)

    # Seeded Poisson arrivals; each request carries its own sampling
    # seed, so its stream is independent of scheduling interleavings.
    trace = poisson_trace(8, 0.7, vocab_size=config.vocab_size, seed=3,
                          temperature=1.0, top_k=5)
    print(f"trace: {len(trace)} requests, "
          f"{sum(r.max_new_tokens for r in trace)} tokens requested")

    # A 4-block x 3-position pool holds at most 12 cached positions --
    # far less than the trace wants at once, forcing preemption.
    engine, report = run_once(model, trace, num_blocks=4, block_size=3)

    print("\nrequest    gen  ttft  latency  preempt")
    for r in report.requests:
        print(f"{r.request_id}  {r.generated_tokens:3d}  "
              f"{r.ttft_steps:4d}  {r.latency_steps:7d}  "
              f"{r.preemptions:7d}")
    agg = report.to_dict()["aggregate"]
    print(f"\nsteps={report.steps}  generated={agg['total_generated_tokens']}"
          f"  preemptions={agg['preemptions']}"
          f"  ttft p95={agg['ttft_steps_p95']:.1f}"
          f"  latency p95={agg['latency_steps_p95']:.1f}")

    # 1. Differential check: batching/preemption never changes a stream.
    for req in trace:
        oracle = generate(model, np.array(req.prompt), req.max_new_tokens,
                          temperature=req.temperature, top_k=req.top_k,
                          rng=np.random.default_rng(req.seed))
        assert np.array_equal(oracle, engine.outputs[req.request_id])
    print(f"\nall {len(trace)} streams equal the single-request oracle")

    # 2. Deterministic replay: same trace, fresh engine, same run.
    engine2, report2 = run_once(model, trace, num_blocks=4, block_size=3)
    assert all(np.array_equal(engine.outputs[rid], engine2.outputs[rid])
               for rid in engine.outputs)
    assert (report.to_dict()["requests"] == report2.to_dict()["requests"])
    print("replay is bit-exact (streams and virtual-clock metrics)")


if __name__ == "__main__":
    main()
