"""Quickstart: train a small GPT with composed 3D (PTD-P) parallelism.

Builds a GPT, picks a (p, t, d) parallelization, and runs real training
iterations through the pipeline/tensor/data-parallel engine -- then
verifies the headline property of the paper: the parallel run is
*bit-identical* to serial training (strict optimizer semantics).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GPTConfig, ParallelConfig, PTDTrainer
from repro.nn import Adam, GPTModel


def main() -> None:
    # A toy GPT (the engine is exact at any size; keep it fast to run).
    model = GPTConfig(
        num_layers=4,
        hidden_size=32,
        num_attention_heads=4,
        vocab_size=128,
        seq_length=16,
        name="GPT-toy",
    )
    print(f"model: {model} ({model.num_parameters_exact():,} parameters)")

    # p=2 pipeline stages x t=2 tensor shards x d=2 data replicas = 8 GPUs.
    parallel = ParallelConfig(
        pipeline_parallel_size=2,
        tensor_parallel_size=2,
        data_parallel_size=2,
        microbatch_size=1,
        global_batch_size=8,
    )
    print(f"parallelism: {parallel.describe()}")

    trainer = PTDTrainer(model, parallel, seed=0, lr=1e-2)

    # Synthetic next-token data.
    rng = np.random.default_rng(0)
    ids = rng.integers(0, model.vocab_size, size=(8, model.seq_length))
    targets = np.roll(ids, -1, axis=1)

    # Serial reference model with the same seed and optimizer.
    serial = GPTModel(model, seed=0)
    opt = Adam(serial.parameters(), lr=1e-2)

    print(f"\n{'step':>4}  {'parallel loss':>14}  {'serial loss':>12}  match")
    for step in range(5):
        loss = trainer.train_step(ids, targets)
        serial.zero_grad()
        ref_loss, caches = serial.loss(ids, targets)
        serial.loss_backward(caches)
        opt.step()
        ok = abs(loss - ref_loss) < 1e-9
        print(f"{step:>4}  {loss:>14.6f}  {ref_loss:>12.6f}  {ok}")

    # Weights agree too -- strict optimizer semantics, exactly.
    state = trainer.gather_state_dict()
    ref_state = serial.state_dict()
    max_diff = max(
        float(np.max(np.abs(state[k] - ref_state[k])))
        for k in state
        if k in ref_state
    )
    print(f"\nmax |parallel - serial| over all weights: {max_diff:.2e}")
    assert max_diff < 1e-8
    print("PTD-P training is exactly equivalent to serial training. ✓")


if __name__ == "__main__":
    main()
