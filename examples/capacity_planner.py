"""Capacity planner: "how should I train this model on my cluster?"

The workload the paper's introduction motivates: given a model size, a
GPU budget and a batch size, apply the paper's Takeaways to pick
(t, p, d, b), check the memory footprint, simulate a training iteration
on a Selene-like cluster, and estimate the end-to-end training time with
eq. (4).

Run:  python examples/capacity_planner.py [params_in_billions] [gpus] [batch]
e.g.  python examples/capacity_planner.py 175 1024 1536
"""

import sys

from repro.config import GPTConfig, gpt3_175b
from repro.hardware import a100_80gb, dgx_a100
from repro.perf import (
    fits_in_memory,
    memory_footprint,
    suggest_parallel_config,
    training_time_days,
)
from repro.sim import SimOptions, simulate_iteration


def model_for_params(billions: float) -> GPTConfig:
    """Find a Table-1-style architecture near the requested size."""
    if abs(billions - 175) < 5:
        return gpt3_175b()
    # Scale hidden size with layers (the Table-1 family's trend), keeping
    # heads and layers multiples of 8 so the model partitions cleanly.
    best = None
    for h in range(1024, 32769, 512):
        layers = max(8, min(128, round(h / 128 / 8) * 8))
        heads = max(8, round(h / 128 / 8) * 8)
        if h % heads:
            continue
        cfg = GPTConfig(num_layers=layers, hidden_size=h,
                        num_attention_heads=heads,
                        name=f"GPT-{billions:g}B-candidate")
        err = abs(cfg.num_parameters() - billions * 1e9)
        if best is None or err < best[0]:
            best = (err, cfg)
    return best[1]


def main(argv: list[str]) -> None:
    billions = float(argv[0]) if len(argv) > 0 else 39.0
    gpus = int(argv[1]) if len(argv) > 1 else 512
    batch = int(argv[2]) if len(argv) > 2 else 1536
    tokens = float(argv[3]) * 1e9 if len(argv) > 3 else 300e9

    model = model_for_params(billions)
    P = model.num_parameters()
    print(f"model: {model}  ({P/1e9:.1f}B parameters)")
    print(f"budget: {gpus} GPUs (DGX A100), global batch {batch}\n")

    parallel = suggest_parallel_config(model, gpus, batch)
    print("Takeaway-based configuration:")
    print(f"  tensor-parallel   t = {parallel.t}   (<= node size, Takeaway #1)")
    print(f"  pipeline-parallel p = {parallel.p}")
    print(f"  data-parallel     d = {parallel.d}   (Takeaway #2)")
    print(f"  microbatch        b = {parallel.b}   (eq. (1) sweep, Takeaway #3)")
    print(f"  microbatches/pipeline m = {parallel.num_microbatches}")

    fp = memory_footprint(model, parallel, recompute=True)
    device = a100_80gb()
    print(f"\nper-GPU memory (with activation recomputation):")
    print(f"  model+optimizer state : {fp.model_state/1e9:6.1f} GB")
    print(f"  activation working set: {fp.activations/1e9:6.1f} GB")
    print(f"  stashed stage inputs  : {fp.stage_inputs/1e9:6.1f} GB")
    print(f"  total                 : {fp.total/1e9:6.1f} GB "
          f"(device: {device.memory_capacity/1e9:.0f} GB, "
          f"fits={fits_in_memory(model, parallel, device, recompute=True)})")

    res = simulate_iteration(model, parallel, options=SimOptions(), node=dgx_a100())
    print(f"\nsimulated training iteration:")
    print(f"  iteration time : {res.iteration_time:8.2f} s")
    print(f"  per-GPU        : {res.tflops_per_gpu:8.1f} Tflop/s "
          f"({res.peak_fraction*100:.0f}% of peak)")
    print(f"  aggregate      : {res.aggregate_pflops:8.1f} Pflop/s")
    print(f"  pipeline bubble: {res.bubble_fraction*100:8.1f} %")

    days = training_time_days(P, tokens, gpus, res.tflops_per_gpu * 1e12)
    print(f"\nestimated end-to-end training on {tokens/1e9:.0f}B tokens: "
          f"{days:.0f} days (eq. 4)")


if __name__ == "__main__":
    main(sys.argv[1:])
