"""Figure 12: interleaved vs non-interleaved schedule."""

from repro.experiments import fig12_interleaved


def test_fig12_interleaved(benchmark, show):
    result = benchmark(fig12_interleaved.run)
    show(result)
