"""Figure 16: microbatch size at scale (91B model)."""

from repro.experiments import fig16_microbatch


def test_fig16_microbatch(benchmark, show):
    result = benchmark(fig16_microbatch.run)
    show(result)
