"""Ablation: communication-model design choices in the simulator.

Sensitivity of the headline results to (a) the NCCL-channel cap for
cross-node tensor-parallel collectives, and (b) p2p/compute overlap --
the two modelling choices DESIGN.md calls out beyond the roofline
calibration.
"""

from repro.config import ParallelConfig, fig13_model
from repro.experiments.report import ExperimentResult
from repro.sim import SimOptions, simulate_iteration


def run():
    model = fig13_model()
    result = ExperimentResult(
        experiment_id="ablation_comm",
        title="Comm-model ablation (162B, 64 GPUs, B=32)",
        columns=("variant", "t16_p4_tflops", "t8_p8_tflops", "t16_penalty"),
    )
    for label, channels, overlap in (
        ("tp_channels=1", 1, False),
        ("tp_channels=2 (default)", 2, False),
        ("tp_channels=8", 8, False),
        ("overlap p2p", 2, True),
    ):
        vals = {}
        for t, p in ((16, 4), (8, 8)):
            par = ParallelConfig(
                pipeline_parallel_size=p, tensor_parallel_size=t,
                data_parallel_size=1, microbatch_size=1, global_batch_size=32,
            )
            res = simulate_iteration(
                model, par,
                options=SimOptions(tp_channels=channels, overlap_p2p=overlap),
            )
            vals[(t, p)] = res.tflops_per_gpu
        result.add(
            label,
            round(vals[(16, 4)], 1),
            round(vals[(8, 8)], 1),
            round(1 - vals[(16, 4)] / vals[(8, 8)], 3),
        )
    result.notes = (
        "The Figure-13 crossover (t=8 beats t=16) holds for every channel "
        "cap; the cap only modulates how much cross-node tensor "
        "parallelism loses."
    )
    return result


def test_comm_ablation(benchmark, show):
    result = benchmark(run)
    show(result)
    for row in result.rows:
        assert row[3] > 0  # t=16 always worse than t=8
