"""Table 2 / Figure 10: PTD-P vs ZeRO-3."""

from repro.experiments import table2_zero3


def test_table2_zero3(benchmark, show):
    result = benchmark(table2_zero3.run)
    show(result)
