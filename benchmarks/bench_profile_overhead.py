"""The profiler must be (near) free: post-processing a trace into
self/total attribution and folded stacks costs <5% of the traced
iteration itself, and the telemetry hooks are inert without a tracer.

Three comparisons on a tiny PTD iteration (the observatory contract
from ISSUE 6, the post-processing twin of ``bench_trace_overhead.py``):

- ``profile_tracer`` + ``folded_stacks`` over a full iteration trace
  vs. the iteration's own wall time — analysis must stay a rounding
  error next to the work it analyses;
- the throughput/memory telemetry added to ``train_step`` runs only
  under an active tracer — untraced iterations must not pay for it;
- pytest-benchmark fixtures report the full post-processing
  distributions alongside.

Best-of-N timing keeps the assertions robust against scheduler noise.
"""

import time

import numpy as np

from repro.config import ParallelConfig, tiny_test_model
from repro.obs import trace
from repro.obs.profile import folded_stacks, profile_tracer
from repro.parallel import PTDTrainer

CFG = tiny_test_model(num_layers=4, hidden_size=32, num_attention_heads=4,
                      vocab_size=64, seq_length=16)
PAR = ParallelConfig(
    pipeline_parallel_size=2,
    tensor_parallel_size=1,
    data_parallel_size=2,
    microbatch_size=1,
    global_batch_size=4,
)


def _batch(seed=0):
    r = np.random.default_rng(seed)
    shape = (PAR.global_batch_size, CFG.seq_length)
    return (
        r.integers(0, CFG.vocab_size, size=shape),
        r.integers(0, CFG.vocab_size, size=shape),
    )


def _traced_iteration(repeats: int = 5):
    """Best-of-N traced iteration time plus one captured tracer."""
    ids, targets = _batch()
    best = float("inf")
    tracer = None
    for _ in range(repeats):
        trainer = PTDTrainer(CFG, PAR)
        with trace() as t:
            t0 = time.perf_counter()
            trainer.train_step(ids, targets)
            elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, tracer = elapsed, t
    return best, tracer


def test_profiler_postprocess_under_5_percent():
    _traced_iteration(repeats=1)  # warm caches
    iteration, tracer = _traced_iteration()
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        folded_stacks(profile_tracer(tracer))
        best = min(best, time.perf_counter() - t0)
    overhead = best / iteration
    print(f"\niteration={iteration*1e3:.2f}ms profile={best*1e3:.2f}ms "
          f"ratio={overhead*100:.2f}%")
    assert overhead < 0.05, (
        f"profiler post-processing is {overhead*100:.1f}% of iteration "
        "time, exceeding the 5% budget"
    )


def test_untraced_step_emits_no_telemetry():
    # The telemetry hook must be a single tracer check when tracing is
    # off: no spans, no samples, no metrics registries allocated.
    ids, targets = _batch()
    trainer = PTDTrainer(CFG, PAR)
    trainer.train_step(ids, targets)  # would raise inside obs if active
    with trace() as t:
        pass
    assert not t.spans and not t.samples


def test_profile_postprocess(benchmark):
    _, tracer = _traced_iteration(repeats=1)
    benchmark(profile_tracer, tracer)


def test_folded_stacks(benchmark):
    _, tracer = _traced_iteration(repeats=1)
    report = profile_tracer(tracer)
    benchmark(folded_stacks, report)
