"""§5.10: durable-commit overhead and chaos-recovery cost.

Two questions about the hardened checkpoint writer and the supervised
chaos harness:

1. What does the atomic commit protocol (stage to a temp dir, hash
   every file into the manifest, rename-publish) cost over the legacy
   in-place writer?  The protocol itself must stay **under 10%**; the
   durability fsyncs are priced separately because they buy something
   the legacy writer never provided (the legacy writer leaves the data
   in the page cache, so comparing against it with fsyncs included is
   comparing a durable commit to a lost-on-power-failure one).
2. What does killing and recovering a run cost over the uninterrupted
   run, end to end (restore + replayed iterations included)?
"""

import os
import shutil
import tempfile
import time

from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer
from repro.parallel import checkpoint as cp

CFG = tiny_test_model(num_layers=4, hidden_size=128, num_attention_heads=8,
                      vocab_size=1024, seq_length=32)


def _trainer():
    return PTDTrainer(
        CFG,
        ParallelConfig(microbatch_size=2, global_batch_size=4),
        seed=0,
    )


def _median_save(trainer, *, atomic, repeats=9):
    times = []
    for _ in range(repeats):
        root = tempfile.mkdtemp(prefix="bench-chaos-")
        try:
            t0 = time.perf_counter()
            cp.save_checkpoint(trainer, os.path.join(root, "ckpt"),
                               atomic=atomic)
            times.append(time.perf_counter() - t0)
        finally:
            shutil.rmtree(root)
    times.sort()
    return times[len(times) // 2]


def test_commit_protocol_overhead(benchmark, capsys, monkeypatch):
    """Staging + checksums + rename vs the legacy in-place writer."""
    trainer = _trainer()
    legacy = _median_save(trainer, atomic=False)

    # The protocol alone: durability fsyncs disabled so both writers
    # leave the data in the page cache and the diff is pure protocol.
    monkeypatch.setattr(cp, "_fsync_file", lambda path: None)
    monkeypatch.setattr(cp, "_fsync_dir", lambda path: None)
    protocol = _median_save(trainer, atomic=True)
    monkeypatch.undo()
    durable = _median_save(trainer, atomic=True)

    def run():
        root = tempfile.mkdtemp(prefix="bench-chaos-")
        try:
            return cp.save_checkpoint(trainer, os.path.join(root, "ckpt"))
        finally:
            shutil.rmtree(root)

    meta = benchmark(run)
    assert meta["format_version"] == 2

    protocol_overhead = protocol / legacy - 1.0
    durable_overhead = durable / legacy - 1.0
    benchmark.extra_info["protocol_overhead_pct"] = round(
        100 * protocol_overhead, 2)
    benchmark.extra_info["durable_overhead_pct"] = round(
        100 * durable_overhead, 2)
    with capsys.disabled():
        print()
        print(f"legacy writer            {legacy * 1e3:7.1f} ms")
        print(f"atomic, fsyncs disabled  {protocol * 1e3:7.1f} ms  "
              f"({100 * protocol_overhead:+.1f}% = commit protocol)")
        print(f"atomic, durable          {durable * 1e3:7.1f} ms  "
              f"({100 * durable_overhead:+.1f}% = protocol + fsyncs)")
    # The headline bound: the commit protocol costs < 10%.
    assert protocol_overhead < 0.10


def test_recovery_cost(benchmark, capsys):
    """Kill-at-k run (restore + replay included) vs uninterrupted."""
    from repro.resilience import (
        ChaosHarness,
        ChaosPlan,
        Kill,
        run_baseline,
    )

    config = tiny_test_model(num_layers=2, hidden_size=16,
                             num_attention_heads=4, vocab_size=32,
                             seq_length=8)
    parallel = ParallelConfig(data_parallel_size=2, microbatch_size=1,
                              global_batch_size=4)

    t0 = time.perf_counter()
    base_losses, _ = run_baseline(config, parallel, total_iterations=8,
                                  seed=0)
    base_seconds = time.perf_counter() - t0

    def chaos_run():
        with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
            harness = ChaosHarness(
                config, parallel, tmp,
                plan=ChaosPlan(kills=(Kill(at_iteration=5),)),
                total_iterations=8, checkpoint_every=2, seed=0,
                sleep=lambda s: None,
            )
            return harness.run()

    report = benchmark(chaos_run)
    assert report.restarts == 1
    assert report.losses == base_losses  # still bit-exact while timed
    benchmark.extra_info["uninterrupted_seconds"] = round(base_seconds, 4)
    with capsys.disabled():
        print()
        print(f"uninterrupted run: {base_seconds * 1e3:.1f} ms; chaos run "
              f"adds checkpoints every 2 it + 1 restore + 1 it replayed")
