"""Figure 17: activation recomputation tradeoff."""

from repro.experiments import fig17_recompute


def test_fig17_recompute(benchmark, show):
    result = benchmark(fig17_recompute.run)
    show(result)
