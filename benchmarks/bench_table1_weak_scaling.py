"""Table 1: weak-scaling simulation of all ten configurations."""

from repro.experiments import table1_weak_scaling


def test_table1_weak_scaling(benchmark, show):
    result = benchmark(table1_weak_scaling.run)
    show(result)
