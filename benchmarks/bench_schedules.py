"""Figures 3/4: schedule generation + timeline simulation."""

from repro.experiments import fig03_fig04_schedules
from repro.schedule import interleaved_schedule, simulate_times, validate


def test_fig03_fig04_schedules(benchmark, show):
    result = benchmark(fig03_fig04_schedules.run)
    show(result)


def test_interleaved_schedule_generation_and_validation(benchmark):
    def gen():
        s = interleaved_schedule(8, 64, 4)
        validate(s)
        return s

    benchmark(gen)


def test_timeline_simulation_large(benchmark):
    sched = interleaved_schedule(8, 64, 4)
    benchmark(simulate_times, sched)
