"""Figure 13: tensor vs pipeline parallelism tradeoff."""

from repro.experiments import fig13_tensor_vs_pipeline


def test_fig13_tensor_vs_pipeline(benchmark, show):
    result = benchmark(fig13_tensor_vs_pipeline.run)
    show(result)
