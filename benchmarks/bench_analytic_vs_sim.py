"""Ablation: O(1) closed-form estimator vs the discrete-event simulator.

Validates the §3-derived analytic model against the event simulation on
the Table-1 configurations and reports per-config agreement and the
speed advantage of the closed form.
"""

import time

from repro.config import TABLE1_ROWS
from repro.experiments.report import ExperimentResult
from repro.perf import estimate_iteration
from repro.sim import simulate_iteration


def run():
    result = ExperimentResult(
        experiment_id="ablation_analytic",
        title="Closed-form estimator vs event simulator (Table-1 configs)",
        columns=("params_B", "sim_tflops", "analytic_tflops", "ratio"),
    )
    for row in TABLE1_ROWS[::2] + (TABLE1_ROWS[-1],):
        s = simulate_iteration(row.model, row.parallel)
        a = estimate_iteration(row.model, row.parallel)
        result.add(
            row.reported_params_billion,
            round(s.tflops_per_gpu, 1),
            round(a.tflops_per_gpu, 1),
            round(a.tflops_per_gpu / s.tflops_per_gpu, 3),
        )
    return result


def test_analytic_vs_sim(benchmark, show):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(result)
    for ratio in result.column("ratio"):
        assert 0.94 < ratio < 1.06

    # Demonstrate the speed gap on the largest configuration.
    row = TABLE1_ROWS[-1]
    t0 = time.perf_counter()
    estimate_iteration(row.model, row.parallel)
    t_analytic = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate_iteration(row.model, row.parallel)
    t_sim = time.perf_counter() - t0
    assert t_analytic < t_sim
