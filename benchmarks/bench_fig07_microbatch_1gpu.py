"""Figure 7: single-GPU throughput vs microbatch size."""

from repro.experiments import fig07_microbatch_1gpu


def test_fig07_microbatch(benchmark, show):
    result = benchmark(fig07_microbatch_1gpu.run)
    show(result)
