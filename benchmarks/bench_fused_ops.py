"""§5.8: operator fusion."""

from repro.experiments import fused_ops


def test_fused_ops(benchmark, show):
    result = benchmark(fused_ops.run)
    show(result)
