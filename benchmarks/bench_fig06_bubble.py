"""Figure 6: bubble fraction vs data-parallel size."""

from repro.experiments import fig06_bubble


def test_fig06_bubble(benchmark, show):
    result = benchmark(fig06_bubble.run)
    show(result)
