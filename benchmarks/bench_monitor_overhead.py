"""Run logging must be (near) free: <5% iteration-time overhead when
a run logger is active, and unmeasurable when off.

The mission-control contract from ISSUE 7, the runlog twin of
``bench_trace_overhead.py``:

- ``repro.obs.runlog`` **active** vs. the bare baseline — the
  per-iteration heartbeat + iteration record (JSON encode, write,
  flush) plus the per-replica busy-time clocks must together cost less
  than 5% of iteration time;
- run logging **inactive** — the dormant hook (one
  ``current_run_logger()`` truthiness check per ``train_step``) must
  be indistinguishable from the baseline.

Best-of-N timing keeps the assertion robust against scheduler noise;
the pytest-benchmark fixtures report the full distributions alongside.
"""

import io
import time

import numpy as np

from repro.config import ParallelConfig, tiny_test_model
from repro.obs.runlog import RunLogger, run_logging
from repro.parallel import PTDTrainer

CFG = tiny_test_model(num_layers=4, hidden_size=32, num_attention_heads=4,
                      vocab_size=64, seq_length=16)
PAR = ParallelConfig(
    pipeline_parallel_size=2,
    tensor_parallel_size=1,
    data_parallel_size=2,
    microbatch_size=1,
    global_batch_size=4,
)


def _batch(seed=0):
    r = np.random.default_rng(seed)
    shape = (PAR.global_batch_size, CFG.seq_length)
    return (
        r.integers(0, CFG.vocab_size, size=shape),
        r.integers(0, CFG.vocab_size, size=shape),
    )


def _iteration_time(logged: bool, repeats: int = 5) -> float:
    """Best-of-N wall time of one train_step (fresh trainer per run so
    cached eq. (3) FLOPs never carry across measurements)."""
    ids, targets = _batch()
    best = float("inf")
    for _ in range(repeats):
        trainer = PTDTrainer(CFG, PAR)
        if logged:
            logger = RunLogger(io.StringIO(), "bench")
            logger.start("engine")
            with run_logging(logger):
                t0 = time.perf_counter()
                trainer.train_step(ids, targets)
                elapsed = time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            trainer.train_step(ids, targets)
            elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best


def test_runlog_overhead_under_5_percent():
    _iteration_time(logged=False, repeats=1)  # warm up caches
    baseline = _iteration_time(logged=False)
    logged = _iteration_time(logged=True)
    overhead = logged / baseline - 1.0
    print(f"\nbaseline={baseline*1e3:.2f}ms logged={logged*1e3:.2f}ms "
          f"overhead={overhead*100:+.2f}%")
    assert overhead < 0.05, (
        f"run-logging overhead {overhead*100:.1f}% exceeds the 5% budget"
    )


def test_unlogged_iteration(benchmark):
    ids, targets = _batch()
    trainer = PTDTrainer(CFG, PAR)
    benchmark(trainer.train_step, ids, targets)


def test_logged_iteration(benchmark):
    ids, targets = _batch()

    def step():
        trainer = PTDTrainer(CFG, PAR)
        logger = RunLogger(io.StringIO(), "bench")
        logger.start("engine")
        with run_logging(logger):
            trainer.train_step(ids, targets)

    benchmark(step)
