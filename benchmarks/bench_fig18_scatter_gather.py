"""Figure 18: scatter/gather communication optimization."""

from repro.experiments import fig18_scatter_gather


def test_fig18_scatter_gather(benchmark, show):
    result = benchmark(fig18_scatter_gather.run)
    show(result)
