"""Throughput of the numerical substrate itself (not a paper figure):
how fast the numpy PTD-P engine trains a small GPT, per parallelization.
Useful for tracking regressions in the exact-numerics path.
"""

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer

CFG = tiny_test_model(num_layers=4, hidden_size=32, num_attention_heads=4,
                      vocab_size=64, seq_length=16)


def make_batch(B):
    r = np.random.default_rng(0)
    ids = r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length))
    return ids, np.roll(ids, -1, axis=1)


@pytest.mark.parametrize(
    "p,t,d,v",
    [(1, 1, 1, 1), (2, 1, 1, 1), (1, 2, 1, 1), (2, 2, 2, 1), (2, 1, 1, 2)],
    ids=["serial", "pipeline", "tensor", "ptd-2x2x2", "interleaved"],
)
def test_ptd_train_step(benchmark, p, t, d, v):
    B = 8
    parallel = ParallelConfig(
        pipeline_parallel_size=p, tensor_parallel_size=t,
        data_parallel_size=d, microbatch_size=1, global_batch_size=B,
        num_model_chunks=v,
    )
    trainer = PTDTrainer(
        CFG, parallel, schedule="interleaved" if v > 1 else "1f1b", seed=0
    )
    ids, targets = make_batch(B)
    benchmark(trainer.train_step, ids, targets)
