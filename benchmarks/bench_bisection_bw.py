"""§5.9: effective inter-node bandwidth at 3072 GPUs."""

from repro.experiments import bisection


def test_bisection_bandwidth(benchmark, show):
    result = benchmark(bisection.run)
    show(result)
