"""The backend abstraction must be (near) free, and the mp backend
must actually buy parallel speed where there are cores to spend.

Three guards on the ``repro.comm.backend`` seam from ISSUE 7:

- routing a collective through :class:`~repro.comm.backend.CoopBackend`
  vs. calling the ``repro.comm.primitives`` functions directly costs
  <5% — the dispatch layer is a method lookup, not a runtime tax;
- a data-parallel training step under ``--backend mp`` stays within a
  bounded constant factor of coop even on a single core (the shm ring
  plus 2(d-1)+2 barriers per step must not blow up wall time);
- on hosts with >= 4 usable cores (CI runners qualify; this container
  does not), the d=4 macro workload must run >= 1.5x faster under mp
  than under coop — the headline speedup the PR's BENCH files record.

Best-of-N timing keeps the assertions robust against scheduler noise.
"""

import os
import time

import numpy as np

from repro.comm import TrafficLog
from repro.comm.backend import get_backend
from repro.comm.primitives import ring_all_reduce
from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer

CFG = tiny_test_model(num_layers=4, hidden_size=32, num_attention_heads=4,
                      vocab_size=64, seq_length=16)
PAR_D2 = ParallelConfig(data_parallel_size=2, microbatch_size=1,
                        global_batch_size=4)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _batch(par, cfg=CFG, seed=0):
    r = np.random.default_rng(seed)
    shape = (par.global_batch_size, cfg.seq_length)
    return (
        r.integers(0, cfg.vocab_size, size=shape),
        r.integers(0, cfg.vocab_size, size=shape),
    )


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _step_time(backend: str, par=PAR_D2, cfg=CFG, repeats=5, inner=3) -> float:
    ids, targets = _batch(par, cfg)
    with PTDTrainer(cfg, par, backend=backend) as trainer:
        trainer.train_step(ids, targets)  # warm caches / worker spawn
        return _best_of(
            lambda: [trainer.train_step(ids, targets) for _ in range(inner)],
            repeats=repeats,
        ) / inner


def test_coop_dispatch_under_5_percent():
    rng = np.random.default_rng(0)
    bufs = [rng.standard_normal((64, 64)) for _ in range(4)]
    ranks = [0, 1, 2, 3]
    backend = get_backend("coop")

    def direct():
        ring_all_reduce([b.copy() for b in bufs], ranks, TrafficLog())

    def routed():
        backend.all_reduce([b.copy() for b in bufs], ranks, TrafficLog())

    direct()  # warm
    routed()
    t_direct = _best_of(lambda: [direct() for _ in range(20)], repeats=7)
    t_routed = _best_of(lambda: [routed() for _ in range(20)], repeats=7)
    overhead = t_routed / t_direct - 1.0
    print(f"\ndirect={t_direct*1e3:.2f}ms routed={t_routed*1e3:.2f}ms "
          f"overhead={overhead*100:.2f}%")
    assert overhead < 0.05, (
        f"backend dispatch adds {overhead*100:.1f}% over calling the "
        "primitives directly, exceeding the 5% budget"
    )


def test_mp_step_bounded_on_any_host():
    # Even time-slicing every worker on one core, the shm ring must
    # keep a d=2 step within 2x of the in-process oracle.
    t_coop = _step_time("coop")
    t_mp = _step_time("mp")
    ratio = t_mp / t_coop
    print(f"\ncoop={t_coop*1e3:.2f}ms mp={t_mp*1e3:.2f}ms ratio={ratio:.2f}x")
    assert ratio < 2.0, (
        f"mp step is {ratio:.2f}x the coop step; the shm ring or its "
        "barriers regressed"
    )


def test_mp_speedup_on_multicore():
    # The acceptance gate: with >= 4 cores, four real processes beat
    # the single-process oracle on the d=4 macro workload. Single-core
    # hosts (like the dev container) can only time-slice, so the gate
    # is conditional -- there the bounded-overhead test above applies.
    cores = _usable_cores()
    if cores < 4:
        import pytest
        pytest.skip(f"only {cores} usable core(s); mp cannot beat coop "
                    "without parallel hardware")
    cfg = tiny_test_model(num_layers=4, hidden_size=96,
                          num_attention_heads=4, vocab_size=256,
                          seq_length=64)
    par = ParallelConfig(data_parallel_size=4, microbatch_size=2,
                         global_batch_size=8)
    t_coop = _step_time("coop", par, cfg)
    t_mp = _step_time("mp", par, cfg)
    speedup = t_coop / t_mp
    print(f"\ncoop={t_coop*1e3:.2f}ms mp={t_mp*1e3:.2f}ms "
          f"speedup={speedup:.2f}x on {cores} cores")
    assert speedup >= 1.5, (
        f"mp only reaches {speedup:.2f}x over coop on {cores} cores; "
        "the d=4 workload should parallelize >= 1.5x"
    )


def test_coop_step(benchmark):
    ids, targets = _batch(PAR_D2)
    with PTDTrainer(CFG, PAR_D2, backend="coop") as trainer:
        trainer.train_step(ids, targets)
        benchmark(trainer.train_step, ids, targets)


def test_mp_step(benchmark):
    ids, targets = _batch(PAR_D2)
    with PTDTrainer(CFG, PAR_D2, backend="mp") as trainer:
        trainer.train_step(ids, targets)
        benchmark(trainer.train_step, ids, targets)
