"""Ablation: the paper's Takeaway heuristics vs exhaustive search.

The paper chooses configurations by heuristic rather than search (§1).
This bench runs the exhaustive simulator-backed autotuner and reports
how close the heuristic configuration comes to the true optimum.
"""

from repro.config import fig14_model
from repro.perf import heuristic_gap


def test_heuristic_vs_exhaustive(benchmark, show):
    def run():
        return heuristic_gap(fig14_model(), 32, 64)

    gap, best, heuristic = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.experiments.report import ExperimentResult

    r = ExperimentResult(
        experiment_id="ablation_autotune",
        title="Takeaway heuristic vs exhaustive search (5.9B, 32 GPUs, B=64)",
        columns=("config", "tflops_gpu"),
    )
    r.add("exhaustive best: " + best.parallel.describe(),
          round(best.tflops_per_gpu, 1))
    r.add("heuristic", round(heuristic.tflops_per_gpu, 1))
    r.notes = f"heuristic gap: {gap*100:.1f}% (the Takeaways are near-optimal)"
    show(r)
    assert gap < 0.25
